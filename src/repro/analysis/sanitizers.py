"""Simulated-concurrency sanitizers for the CAB runtime.

The paper's hardware made two invariants cheap: the CAB's single CPU made
interrupt masking a sufficient critical section, and the shared buffer heap
(Sec. 3.3) was managed by one trusted runtime.  Our simulator multiplexes
many logical threads and interrupt handlers over one Python process, so the
same bugs (leaked buffers, inconsistent lock order, unsynchronized access to
shared data memory) are silent until they skew a benchmark.  This module is
the opt-in instrumentation that makes them loud:

* :class:`HeapSanitizer` — allocation-site accounting over
  :class:`~repro.runtime.heap.BufferHeap`: leaks, double frees, overlap,
  use-after-free of freed blocks that are touched through the
  :class:`~repro.hw.memory.MemoryRegion`.
* :class:`LockSanitizer` — a lockdep-style lock-order graph over
  :class:`~repro.runtime.threads.Mutex` with cycle (potential deadlock)
  detection, plus warnings for blocking while holding a lock.
* :class:`RaceSanitizer` — a vector-clock happens-before race detector for
  shared CAB data memory, with synchronization edges derived from mutex
  unlock/lock pairs, mailbox queue/take pairs, and sync write/read pairs.

Everything is reached through one :class:`Sanitizer` facade threaded into
:class:`repro.system.NectarSystem(sanitizer=...)`; hooks in the runtime are
single ``if self.sanitizer is not None`` guards, so the un-instrumented hot
path costs one attribute test.

Determinism: sanitizers observe the simulation, never perturb it — no hook
schedules events or charges CPU time, and reports contain only names, sites
and simulated timestamps, so sanitized runs stay bit-for-bit reproducible.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "HeapSanitizer",
    "LockSanitizer",
    "RaceSanitizer",
    "Sanitizer",
    "SanitizerReport",
]

#: Basenames of instrumented runtime modules skipped when attributing a
#: report to a call site (we want the caller of the runtime, not the
#: runtime's own frame).
_RUNTIME_BASENAMES = (
    "sanitizers.py",
    "heap.py",
    "mailbox.py",
    "threads.py",
    "syncs.py",
    "memory.py",
    "cpu.py",
    "core.py",
    "kernel.py",
    "board.py",
    "primitives.py",
    "packet.py",
)

#: Hard cap on stored reports per kind, so a pathological run cannot grow
#: memory without bound; overflow is counted, not stored.
_MAX_REPORTS_PER_KIND = 200


def _call_site() -> str:
    """``file.py:line (function)`` of the nearest non-runtime caller frame."""
    frame = sys._getframe(1)
    while frame is not None:
        filename = frame.f_code.co_filename
        basename = filename.rsplit("/", 1)[-1]
        if basename not in _RUNTIME_BASENAMES:
            return f"{basename}:{frame.f_lineno} ({frame.f_code.co_name})"
        frame = frame.f_back
    return "<unknown>"


@dataclass
class SanitizerReport:
    """One sanitizer diagnosis."""

    kind: str  # heap-leak | heap-double-free | heap-overlap | heap-use-after-free
    #        | lock-cycle | lock-across-block | memory-race
    severity: str  # "error" or "warning"
    message: str
    site: str
    time_ns: int
    details: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        """One-line human-readable form of this report."""
        return (
            f"[{self.severity}] {self.kind} at t={self.time_ns}ns: "
            f"{self.message} (site: {self.site})"
        )


class _SubSanitizer:
    """Shared report plumbing for the three sanitizers."""

    def __init__(self, parent: "Sanitizer"):
        self.parent = parent

    def _report(self, kind: str, severity: str, message: str,
                site: Optional[str] = None, **details: Any) -> None:
        self.parent._add_report(kind, severity, message,
                                site if site is not None else _call_site(),
                                details)


# ------------------------------------------------------------------- heap


@dataclass
class _LiveAlloc:
    size: int
    site: str
    permanent: bool = False


class HeapSanitizer(_SubSanitizer):
    """Leak / double-free / overlap / use-after-free accounting."""

    def __init__(self, parent: "Sanitizer"):
        super().__init__(parent)
        #: heap name -> addr -> live allocation record.
        self._live: Dict[str, Dict[int, _LiveAlloc]] = {}
        #: heap name -> addr -> (size, alloc site, free site) of freed blocks.
        self._freed: Dict[str, Dict[int, Tuple[int, str, str]]] = {}
        #: region name -> heap (for attributing memory accesses to heaps).
        self._region_heaps: Dict[str, Any] = {}
        #: heap name -> heap object (for the end-of-run leak sweep).
        self._heaps: Dict[str, Any] = {}

    def register(self, heap: Any, region_name: Optional[str] = None) -> None:
        """Bind a heap (and optionally the memory region it carves up)."""
        self._heaps[heap.name] = heap
        self._live.setdefault(heap.name, {})
        self._freed.setdefault(heap.name, {})
        if region_name is not None:
            self._region_heaps[region_name] = heap

    def on_alloc(self, heap: Any, addr: int, size: int) -> None:
        """Record an allocation; report overlap with any live block."""
        site = _call_site()
        live = self._live.setdefault(heap.name, {})
        for other_addr, record in live.items():
            if addr < other_addr + record.size and other_addr < addr + size:
                self._report(
                    "heap-overlap",
                    "error",
                    f"{heap.name}: new block [{addr}, {addr + size}) overlaps "
                    f"live block [{other_addr}, {other_addr + record.size}) "
                    f"allocated at {record.site}",
                    site=site,
                    heap=heap.name,
                    addr=addr,
                    size=size,
                )
        live[addr] = _LiveAlloc(size, site)
        # A recycled address is no longer use-after-free territory.
        self._freed.setdefault(heap.name, {}).pop(addr, None)

    def on_free(self, heap: Any, addr: int, size: int) -> None:
        """Record a successful free (block becomes UAF territory)."""
        site = _call_site()
        live = self._live.setdefault(heap.name, {})
        record = live.pop(addr, None)
        alloc_site = record.site if record is not None else "<untracked>"
        self._freed.setdefault(heap.name, {})[addr] = (size, alloc_site, site)

    def on_bad_free(self, heap: Any, addr: int) -> None:
        """Report a free of a freed (double-free) or unknown address."""
        freed = self._freed.get(heap.name, {})
        if addr in freed:
            _size, alloc_site, free_site = freed[addr]
            self._report(
                "heap-double-free",
                "error",
                f"{heap.name}: double free of {addr} (allocated at "
                f"{alloc_site}, first freed at {free_site})",
                heap=heap.name,
                addr=addr,
            )
        else:
            self._report(
                "heap-invalid-free",
                "error",
                f"{heap.name}: free of address {addr} that was never "
                f"allocated",
                heap=heap.name,
                addr=addr,
            )

    def mark_permanent(self, heap: Any, addr: int) -> None:
        """Exempt a deliberate forever-allocation (mailbox cached buffers)."""
        record = self._live.get(heap.name, {}).get(addr)
        if record is not None:
            record.permanent = True

    def on_view_after_free(self, label: str, size: int) -> None:
        """Report a repro.buf view touching its PacketBuffer after free.

        The buffer plane's refcounted storage lives outside any simulated
        heap, but a stale view is the same bug class as a read of a freed
        heap block, so it reports under the same kind.
        """
        self._report(
            "heap-use-after-free",
            "error",
            f"{label}: {size}-byte view used after its packet buffer was "
            f"freed",
            buffer=label,
            size=size,
        )

    def on_memory_access(self, region: Any, addr: int, size: int, write: bool) -> None:
        """Report reads/writes that touch freed heap blocks (UAF)."""
        heap = self._region_heaps.get(region.name)
        if heap is None:
            return
        freed = self._freed.get(heap.name)
        if not freed:
            return
        for freed_addr, (freed_size, alloc_site, free_site) in freed.items():
            if addr < freed_addr + freed_size and freed_addr < addr + size:
                kind = "write" if write else "read"
                self._report(
                    "heap-use-after-free",
                    "error",
                    f"{region.name}: {kind} [{addr}, {addr + size}) touches "
                    f"freed block [{freed_addr}, {freed_addr + freed_size}) "
                    f"(allocated at {alloc_site}, freed at {free_site})",
                    heap=heap.name,
                    addr=addr,
                    size=size,
                )
                return

    def check(self) -> None:
        """End-of-run leak sweep: every live, non-permanent block leaks."""
        for heap_name, live in self._live.items():
            for addr, record in live.items():
                if record.permanent:
                    continue
                self._report(
                    "heap-leak",
                    "error",
                    f"{heap_name}: {record.size} bytes at {addr} never freed "
                    f"(allocated at {record.site})",
                    site=record.site,
                    heap=heap_name,
                    addr=addr,
                    size=record.size,
                )


# ------------------------------------------------------------------- locks


class LockSanitizer(_SubSanitizer):
    """Lock-order graph with deadlock-cycle detection (lockdep-style)."""

    def __init__(self, parent: "Sanitizer"):
        super().__init__(parent)
        #: id(tcb) -> (tcb name, ordered list of held mutexes).
        self._held: Dict[int, Tuple[str, List[Any]]] = {}
        #: id(mutex) -> {id(mutex) -> site where the edge was first seen}.
        self._edges: Dict[int, Dict[int, str]] = {}
        #: id(mutex) -> display name.
        self._names: Dict[int, str] = {}
        #: edges already reported as cyclic (avoid repeats).
        self._reported_edges: Dict[Tuple[int, int], bool] = {}

    def _held_for(self, tcb: Any) -> List[Any]:
        entry = self._held.get(id(tcb))
        if entry is None:
            entry = (tcb.name, [])
            self._held[id(tcb)] = entry
        return entry[1]

    def _find_path(self, start: int, goal: int) -> Optional[List[int]]:
        """DFS for a path start -> ... -> goal in the lock-order graph."""
        stack = [(start, [start])]
        visited = {start: True}
        while stack:
            node, path = stack.pop()
            if node == goal:
                return path
            for succ in self._edges.get(node, {}):
                if succ not in visited:
                    visited[succ] = True
                    stack.append((succ, path + [succ]))
        return None

    def on_lock(self, cpu: Any, mutex: Any) -> None:
        """Record an acquisition; report a lock-order cycle if one forms."""
        tcb = cpu.current
        if tcb is None:
            return
        site = _call_site()
        self._names[id(mutex)] = mutex.name
        held = self._held_for(tcb)
        for prior in held:
            edges = self._edges.setdefault(id(prior), {})
            if id(mutex) not in edges:
                edges[id(mutex)] = site
            # A path mutex -> ... -> prior plus the new edge prior -> mutex
            # closes a cycle: two threads can acquire in opposite orders.
            key = (id(prior), id(mutex))
            if key in self._reported_edges:
                continue
            path = self._find_path(id(mutex), id(prior))
            if path is not None:
                self._reported_edges[key] = True
                chain = " -> ".join(self._names.get(n, "?") for n in path)
                self._report(
                    "lock-cycle",
                    "error",
                    f"lock-order cycle: thread {tcb.name!r} acquires "
                    f"{mutex.name!r} while holding {prior.name!r}, but the "
                    f"order {chain} -> {mutex.name} was also observed "
                    f"(first at {self._edges[id(prior)][id(mutex)]})",
                    site=site,
                    thread=tcb.name,
                    locks=[self._names.get(n, "?") for n in path],
                )
        held.append(mutex)

    def on_unlock(self, cpu: Any, mutex: Any) -> None:
        """Record a release (lock leaves the holder's held-set)."""
        tcb = cpu.current
        if tcb is None:
            return
        held = self._held_for(tcb)
        if mutex in held:
            held.remove(mutex)

    def on_thread_block(self, cpu: Any, tcb: Any, token: Any) -> None:
        """Warn when a thread blocks while still holding mutexes."""
        # Blocking on a contended mutex is lock-order territory, not a
        # held-across-yield hazard; everything else (sleep, mailbox get,
        # heap wait, condition wait) while holding a lock stalls every
        # other thread needing that lock.
        if token.name.startswith("lock:"):
            return
        entry = self._held.get(id(tcb))
        if entry is None or not entry[1]:
            return
        held_names = ", ".join(m.name for m in entry[1])
        self._report(
            "lock-across-block",
            "warning",
            f"thread {tcb.name!r} blocked on {token.name!r} while holding "
            f"{held_names}",
            thread=tcb.name,
            token=token.name,
            held=[m.name for m in entry[1]],
        )


# ------------------------------------------------------------------- races


@dataclass
class _Access:
    ctx: str
    clock: int
    addr: int
    size: int
    write: bool
    site: str


#: Per-region access history bound (older entries age out of race checks).
_ACCESS_WINDOW = 512


class RaceSanitizer(_SubSanitizer):
    """Happens-before race detection over shared memory regions.

    Each logical execution context (a CAB thread or an interrupt handler)
    carries a vector clock.  Synchronization edges — mutex unlock/lock,
    mailbox queue/take (per message), sync write/read — join clocks.  Two
    accesses to overlapping bytes from different contexts, at least one a
    write, with neither ordered before the other, are a race.
    """

    def __init__(self, parent: "Sanitizer"):
        super().__init__(parent)
        #: ctx label -> vector clock {ctx label -> int}.
        self._clocks: Dict[str, Dict[str, int]] = {}
        #: id(sync object) -> (label, clock snapshot) from the last release.
        self._sync: Dict[int, Tuple[str, Dict[str, int]]] = {}
        #: region name -> bounded access history.
        self._accesses: Dict[str, List[_Access]] = {}
        #: (site, site) pairs already reported (avoid repeats).
        self._reported: Dict[Tuple[str, str], bool] = {}

    def _clock(self, ctx: str) -> Dict[str, int]:
        clock = self._clocks.get(ctx)
        if clock is None:
            clock = {ctx: 0}
            self._clocks[ctx] = clock
        return clock

    def on_release(self, ctx: Optional[str], obj: Any, label: str) -> None:
        """A sync object was released/published by ``ctx`` (send edge)."""
        if ctx is None:
            return
        clock = self._clock(ctx)
        clock[ctx] = clock.get(ctx, 0) + 1
        _old_label, merged = self._sync.get(id(obj), (label, {}))
        for key, value in clock.items():
            if merged.get(key, 0) < value:
                merged[key] = value
        self._sync[id(obj)] = (label, merged)

    def on_acquire(self, ctx: Optional[str], obj: Any, label: str) -> None:
        """A sync object was acquired by ``ctx``; join the sender's clock."""
        if ctx is None:
            return
        clock = self._clock(ctx)
        stored = self._sync.get(id(obj))
        if stored is not None:
            for key, value in stored[1].items():
                if clock.get(key, 0) < value:
                    clock[key] = value
        clock[ctx] = clock.get(ctx, 0) + 1

    def on_fresh_buffer(self, region_name: str, addr: int, size: int) -> None:
        """A buffer was (re)allocated: prior accesses no longer conflict."""
        history = self._accesses.get(region_name)
        if not history:
            return
        self._accesses[region_name] = [
            access
            for access in history
            if not (access.addr < addr + size and addr < access.addr + access.size)
        ]

    def on_memory_access(
        self, region: Any, addr: int, size: int, write: bool, ctx: Optional[str]
    ) -> None:
        """Check an access against unordered prior accesses (races)."""
        if ctx is None or size <= 0:
            return
        site = _call_site()
        clock = self._clock(ctx)
        clock[ctx] = clock.get(ctx, 0) + 1
        history = self._accesses.setdefault(region.name, [])
        for access in history:
            if access.ctx == ctx:
                continue
            if not (access.addr < addr + size and addr < access.addr + access.size):
                continue
            if not (write or access.write):
                continue
            if clock.get(access.ctx, 0) >= access.clock:
                continue  # ordered: the prior access happens-before this one
            key = (access.site, site)
            if key in self._reported:
                continue
            self._reported[key] = True
            this_kind = "write" if write else "read"
            prev_kind = "write" if access.write else "read"
            self._report(
                "memory-race",
                "error",
                f"{region.name}: unsynchronized {this_kind} [{addr}, "
                f"{addr + size}) by {ctx} races {prev_kind} [{access.addr}, "
                f"{access.addr + access.size}) by {access.ctx} at "
                f"{access.site}",
                site=site,
                region=region.name,
                contexts=[access.ctx, ctx],
                sites=[access.site, site],
            )
        history.append(_Access(ctx, clock[ctx], addr, size, write, site))
        if len(history) > _ACCESS_WINDOW:
            del history[: len(history) - _ACCESS_WINDOW]


# ------------------------------------------------------------------ facade


class Sanitizer:
    """Bundle of the three sanitizers, threaded through the runtime.

    Create one, pass it to ``NectarSystem(sanitizer=...)``, run a scenario,
    then call :meth:`check` and inspect :attr:`reports` (or
    :meth:`render`).  Sub-sanitizers can be disabled individually.
    """

    def __init__(self, heap: bool = True, locks: bool = True, races: bool = True,
                 clock=None):
        self.reports: List[SanitizerReport] = []
        self.dropped_reports = 0
        self._kind_counts: Dict[str, int] = {}
        self._clock = clock if clock is not None else (lambda: 0)
        self.heap = HeapSanitizer(self) if heap else None
        self.locks = LockSanitizer(self) if locks else None
        self.races = RaceSanitizer(self) if races else None

    # -- wiring (called by Runtime/NectarSystem) -----------------------------

    def bind_clock(self, clock) -> None:
        """Attach the simulated clock used to timestamp reports."""
        self._clock = clock

    def register_heap(self, heap: Any, region_name: Optional[str] = None) -> None:
        """Track a heap so leaks and UAF can be attributed to it."""
        if self.heap is not None:
            self.heap.register(heap, region_name)

    # -- hook dispatch (called from instrumented runtime code) ---------------

    def on_heap_alloc(self, heap: Any, addr: int, size: int,
                      region_name: Optional[str] = None) -> None:
        """Heap allocation hook (also clears stale race history)."""
        if self.heap is not None:
            self.heap.on_alloc(heap, addr, size)
        if self.races is not None and region_name is not None:
            self.races.on_fresh_buffer(region_name, addr, size)

    def on_heap_free(self, heap: Any, addr: int, size: int) -> None:
        """Heap free hook."""
        if self.heap is not None:
            self.heap.on_free(heap, addr, size)

    def on_heap_bad_free(self, heap: Any, addr: int) -> None:
        """Bad-free hook (double free / never-allocated address)."""
        if self.heap is not None:
            self.heap.on_bad_free(heap, addr)

    def mark_permanent(self, heap: Any, addr: int) -> None:
        """Exempt a deliberate forever-allocation from leak sweeps."""
        if self.heap is not None:
            self.heap.mark_permanent(heap, addr)

    def on_buffer_use_after_free(self, label: str, size: int) -> None:
        """A repro.buf view was used after its PacketBuffer's last release."""
        if self.heap is not None:
            self.heap.on_view_after_free(label, size)

    def on_cached_buffer(self, region_name: str, addr: int, size: int) -> None:
        """A cached (permanent) buffer was recycled: clear race history."""
        if self.races is not None:
            self.races.on_fresh_buffer(region_name, addr, size)

    def on_lock(self, cpu: Any, mutex: Any) -> None:
        """Mutex acquired: feed the lock graph and a happens-before edge."""
        if self.locks is not None:
            self.locks.on_lock(cpu, mutex)
        if self.races is not None:
            self.races.on_acquire(cpu.context_label, mutex, f"mutex:{mutex.name}")

    def on_unlock(self, cpu: Any, mutex: Any) -> None:
        """Mutex released: update the lock graph and publish a clock."""
        if self.races is not None:
            self.races.on_release(cpu.context_label, mutex, f"mutex:{mutex.name}")
        if self.locks is not None:
            self.locks.on_unlock(cpu, mutex)

    def on_thread_block(self, cpu: Any, tcb: Any, token: Any) -> None:
        """Thread blocked: check for locks held across the wait."""
        if self.locks is not None:
            self.locks.on_thread_block(cpu, tcb, token)

    def on_release(self, ctx: Optional[str], obj: Any, label: str) -> None:
        """Generic release (mailbox queue, sync write) happens-before edge."""
        if self.races is not None:
            self.races.on_release(ctx, obj, label)

    def on_acquire(self, ctx: Optional[str], obj: Any, label: str) -> None:
        """Generic acquire (mailbox take, sync read) happens-before edge."""
        if self.races is not None:
            self.races.on_acquire(ctx, obj, label)

    def on_memory_access(self, region: Any, addr: int, size: int, write: bool) -> None:
        """Memory access: route to UAF and race detection."""
        provider = getattr(region, "context_provider", None)
        ctx = provider() if provider is not None else None
        if self.races is not None:
            self.races.on_memory_access(region, addr, size, write, ctx)
        if self.heap is not None:
            self.heap.on_memory_access(region, addr, size, write)

    # -- results --------------------------------------------------------------

    def _add_report(self, kind: str, severity: str, message: str, site: str,
                    details: Dict[str, Any]) -> None:
        count = self._kind_counts.get(kind, 0)
        self._kind_counts[kind] = count + 1
        if count >= _MAX_REPORTS_PER_KIND:
            self.dropped_reports += 1
            return
        self.reports.append(
            SanitizerReport(kind, severity, message, site, int(self._clock()), details)
        )

    def check(self) -> List[SanitizerReport]:
        """Run end-of-run sweeps (heap leaks); returns all reports."""
        if self.heap is not None:
            self.heap.check()
        return self.reports

    @property
    def errors(self) -> List[SanitizerReport]:
        return [report for report in self.reports if report.severity == "error"]

    @property
    def warnings(self) -> List[SanitizerReport]:
        return [report for report in self.reports if report.severity == "warning"]

    def reports_of(self, kind: str) -> List[SanitizerReport]:
        """All reports of one kind (e.g. ``"heap-leak"``)."""
        return [report for report in self.reports if report.kind == kind]

    def render(self) -> str:
        """Render every report, or ``sanitizers: clean``."""
        if not self.reports:
            return "sanitizers: clean"
        lines = [report.render() for report in self.reports]
        if self.dropped_reports:
            lines.append(f"... and {self.dropped_reports} more report(s) dropped")
        lines.append(
            f"sanitizers: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s)"
        )
        return "\n".join(lines)
