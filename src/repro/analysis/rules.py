"""The nectarlint rule framework: registry, findings, suppressions.

Every rule has a stable code (``ND0xx`` for determinism hazards, ``NS1xx``
for simulated-concurrency/sim-safety hazards, ``NB2xx`` for buffer-plane
hazards, ``NP3xx`` for protocol state-machine hazards, ``NL0xx`` for lint
hygiene), a one-line summary, and the paper section whose invariant it
protects.  The per-file AST checks live
in :mod:`repro.analysis.nectarlint` and the whole-program passes
in :mod:`repro.analysis.flow`; this module is pure bookkeeping so the
rule table can be rendered (``--explain``, docs/analysis.md), filtered
(``--select`` / ``--ignore``), and documented without importing the
checkers.

Suppression: a ``# nectarlint: disable=ND004`` comment on the line of the
finding (or ``disable=all``) silences it; ``# nectarlint: disable-file=XXX``
anywhere in a file silences a code for the whole file.  Suppressions must
carry a justifying note — either trailing text on the pragma line
(``disable=ND004 -- why``) or an explanatory comment on one of the three
preceding lines; ``--strict`` reports unjustified suppressions as NL001.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

__all__ = [
    "Finding",
    "Rule",
    "Suppressions",
    "all_rules",
    "get_rule",
    "parse_suppressions",
    "render_markdown_table",
]


@dataclass(frozen=True)
class Rule:
    """One lint rule: stable code, summary, and paper rationale."""

    code: str
    name: str
    summary: str
    #: The paper section / repo promise this rule protects.
    rationale: str


_REGISTRY: Dict[str, Rule] = {}


def _register(code: str, name: str, summary: str, rationale: str) -> Rule:
    if code in _REGISTRY:
        raise ValueError(f"duplicate rule code {code}")
    rule = Rule(code, name, summary, rationale)
    _REGISTRY[code] = rule
    return rule


def all_rules() -> List[Rule]:
    """Every registered rule, in code order."""
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def get_rule(code: str) -> Rule:
    """Look up one rule by code (raises KeyError for unknown codes)."""
    return _REGISTRY[code]


# --------------------------------------------------------------- determinism

ND001 = _register(
    "ND001",
    "wall-clock",
    "wall-clock time source (time.time, datetime.now, ...)",
    "sim/core.py promises bit-for-bit reproducible runs; simulated time is "
    "sim.now, never the host clock",
)
ND002 = _register(
    "ND002",
    "unseeded-random",
    "module-level random.* call or random.Random() without a seed",
    "unseeded RNG state differs between runs; all randomness must flow from "
    "an explicit seed (cf. apps/workloads.py)",
)
ND003 = _register(
    "ND003",
    "os-entropy",
    "os.urandom / uuid.uuid1 / uuid.uuid4 / secrets.* entropy source",
    "OS entropy is unreproducible by construction; derive identifiers from "
    "seeded RNGs or monotonic counters",
)
ND004 = _register(
    "ND004",
    "set-iteration",
    "iteration over a set/frozenset (unordered) in simulation code",
    "set iteration order depends on hash seeding and insertion history; "
    "event ordering derived from it breaks reproducibility (sort first)",
)
ND005 = _register(
    "ND005",
    "float-ns",
    "unwrapped float arithmetic feeding an integer-nanosecond value",
    "costs are integer ns (model/costs.py); float accumulation drifts across "
    "platforms — wrap in int(round(...)) or use integer math",
)

# ---------------------------------------------------------------- sim-safety

NS101 = _register(
    "NS101",
    "discarded-generator",
    "thread-context generator API called as a bare statement (missing "
    "'yield from')",
    "runtime ops (Mutex lock, mailbox begin_put, ...) are generators; a bare "
    "call builds the generator and discards it — the operation never runs "
    "(paper Sec. 3.1 thread context)",
)
NS102 = _register(
    "NS102",
    "blocking-in-handler",
    "blocking thread-context operation inside i-prefixed / *_handler "
    "interrupt-context code",
    "interrupt handlers run masked and may only Compute (paper Sec. 3.1); "
    "blocking corrupts the engine — use the i-prefixed non-blocking variants",
)
NB201 = _register(
    "NB201",
    "payload-materialization",
    "bytes(...)/bytearray(...) materialization of a frame/message payload "
    "in data-path code",
    "the data path passes repro.buf views end to end (docs/buffers.md); "
    "materializing a payload re-introduces the per-layer host copies the "
    "buffer plane exists to eliminate — use .view()/.mv()/BufView slicing, "
    "or suppress with a note at a true process/application boundary",
)

NS103 = _register(
    "NS103",
    "yield-non-event",
    "yield of a plain constant to the simulation kernel",
    "processes yield Events and threads yield ops (Compute/Block/...); a "
    "constant yield is a SimulationError at run time — caught here instead",
)

# ----------------------------------------------- whole-program (nectarflow)

NB210 = _register(
    "NB210",
    "buf-leak",
    "a PacketBuffer/BufView owner can leave the function on some path with "
    "neither release() nor a transfer to an ownership sink",
    "the buffer plane's refcount discipline (docs/buffers.md) requires every "
    "owning reference to end in release() or a hand-off (send_frame, "
    "Handoff, RX DMA, drop injector); a skipped path is a leak the runtime "
    "sanitizer only sees if that path executes — nectarflow proves it over "
    "all paths",
)
NB211 = _register(
    "NB211",
    "buf-double-release",
    "release() reachable twice on one path for the same buffer reference",
    "the second release() throws BufError at run time (refcount underflow) "
    "or, worse, frees storage another owner still views — the static "
    "mirror of the sanitizer's heap-double-free verdict",
)
NB212 = _register(
    "NB212",
    "buf-use-after-release",
    "a buffer view used on a path after its reference was released",
    "a released view's storage may already be freed; touching it raises "
    "BufError in sanitized runs but silently reads recycled storage "
    "semantics otherwise — the static mirror of heap-use-after-free",
)
NS110 = _register(
    "NS110",
    "static-lock-cycle",
    "a cycle in the interprocedural acquires-while-holding mutex graph",
    "two call paths acquiring the same mutexes in opposite orders can "
    "deadlock under some interleaving, even one never observed; subsumes "
    "the runtime LockSanitizer's lock-cycle check without needing the "
    "paths to execute (paper Sec. 3.2)",
)
NS111 = _register(
    "NS111",
    "static-relock",
    "a mutex acquired again on a path that already holds it",
    "Mutex is not reentrant: ThreadOps.lock raises NectarError when the "
    "owner relocks, so any path reaching a second lock() of a held mutex "
    "is a guaranteed run-time failure",
)
NP301 = _register(
    "NP301",
    "fsm-unreachable-state",
    "a protocol state that no transition ever enters",
    "an unreachable state is dead protocol surface: either the transition "
    "code that should reach it is missing (a protocol bug) or the state is "
    "vestigial and belongs out of the machine (paper Sec. 4 state machines)",
)
NP302 = _register(
    "NP302",
    "fsm-no-exit-state",
    "a non-terminal protocol state that is entered but never tested or "
    "exited",
    "a connection parked in a state with no outgoing transition is stuck "
    "forever — the FSM analogue of a leak; every non-terminal state needs "
    "an exit (event, timeout, or error transition)",
)
NP303 = _register(
    "NP303",
    "fsm-unguarded-wait",
    "a waiting state whose only exits fire on packet receipt, with no "
    "timer/retransmit path covering it",
    "a state left only when the peer speaks hangs forever if the packet is "
    "lost; the paper's transports pair every wait with a retransmission "
    "timeout (Sec. 4) — so must every extracted FSM",
)

# ------------------------------------------------------------- lint hygiene

NL001 = _register(
    "NL001",
    "unjustified-suppression",
    "a nectarlint suppression pragma with no justifying note",
    "shipped suppressions must say why the finding is a false positive or "
    "a sanctioned boundary; an unexplained pragma hides bugs from review "
    "(reported under --strict only)",
)


# -------------------------------------------------------------------- output


@dataclass
class Finding:
    """One lint finding, pointing at a file:line:col."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        """``path:line:col: CODE message`` (compiler-style)."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_json(self) -> dict:
        """JSON-serializable dict form of this finding."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "summary": (
                _REGISTRY[self.code].summary
                if self.code in _REGISTRY
                else "unparseable source"
            ),
        }


# -------------------------------------------------------------- suppressions

#: Codes are strict comma-separated tokens; everything after them on the
#: pragma line is the (optional) justification note.
_DISABLE_RE = re.compile(
    r"#\s*nectarlint:\s*disable=((?:[A-Za-z0-9]+\s*,\s*)*[A-Za-z0-9]+)(.*)"
)
_DISABLE_FILE_RE = re.compile(
    r"#\s*nectarlint:\s*disable-file=((?:[A-Za-z0-9]+\s*,\s*)*[A-Za-z0-9]+)(.*)"
)

#: How far above a pragma an explanatory comment still counts as its note.
_NOTE_LOOKBACK_LINES = 3


@dataclass
class Suppressions:
    """Per-file suppression table parsed from source comments."""

    #: line number -> codes disabled on that line ("ALL" disables everything).
    by_line: Dict[int, set] = field(default_factory=dict)
    #: codes disabled for the whole file.
    whole_file: set = field(default_factory=set)
    #: pragma lines with no justification note (for NL001 under --strict).
    unjustified: List[int] = field(default_factory=list)

    def active(self, line: int, code: str) -> bool:
        """Whether ``code`` is suppressed at ``line``."""
        if code in self.whole_file or "ALL" in self.whole_file:
            return True
        codes = self.by_line.get(line)
        if codes is None:
            return False
        return code in codes or "ALL" in codes


def _parse_codes(blob: str) -> set:
    return {part.strip().upper() for part in blob.split(",") if part.strip()}


def _has_note(trailing: str, lines: List[str], lineno: int) -> bool:
    """Whether a pragma at ``lineno`` carries a justification.

    Either trailing text after the code list on the pragma line itself
    (``disable=ND004 -- why``), or a ``#`` comment on one of the
    ``_NOTE_LOOKBACK_LINES`` preceding lines (the repo's established idiom
    is an explanatory comment immediately above the boundary site).
    """
    if trailing.strip():
        return True
    start = max(0, lineno - 1 - _NOTE_LOOKBACK_LINES)
    for text in lines[start : lineno - 1]:
        if "#" in text and "nectarlint:" not in text:
            return True
    return False


def parse_suppressions(source: str) -> Suppressions:
    """Scan source text for nectarlint suppression comments."""
    table = Suppressions()
    lines = source.splitlines()
    for lineno, text in enumerate(lines, start=1):
        match = _DISABLE_FILE_RE.search(text)
        if match:
            table.whole_file |= _parse_codes(match.group(1))
            if not _has_note(match.group(2), lines, lineno):
                table.unjustified.append(lineno)
            continue
        match = _DISABLE_RE.search(text)
        if match:
            table.by_line.setdefault(lineno, set()).update(
                _parse_codes(match.group(1))
            )
            if not _has_note(match.group(2), lines, lineno):
                table.unjustified.append(lineno)
    return table


# ---------------------------------------------------------------- rendering


def render_markdown_table() -> str:
    """The rule registry as a markdown table (docs/analysis.md is generated
    from this; ``tests/test_nectarlint_clean.py`` keeps them in sync)."""
    lines = [
        "| code | name | summary |",
        "| --- | --- | --- |",
    ]
    for rule in all_rules():
        summary = rule.summary.replace("|", "\\|")
        lines.append(f"| {rule.code} | {rule.name} | {summary} |")
    return "\n".join(lines)


def filter_findings(
    findings: Iterable[Finding],
    suppressions: Suppressions,
    select: Optional[set] = None,
    ignore: Optional[set] = None,
) -> List[Finding]:
    """Apply suppression comments and --select/--ignore filters."""
    kept = []
    for finding in findings:
        if suppressions.active(finding.line, finding.code):
            continue
        if select and finding.code not in select:
            continue
        if ignore and finding.code in ignore:
            continue
        kept.append(finding)
    return kept
