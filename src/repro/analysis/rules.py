"""The nectarlint rule framework: registry, findings, suppressions.

Every rule has a stable code (``ND0xx`` for determinism hazards, ``NS1xx``
for simulated-concurrency/sim-safety hazards, ``NB2xx`` for buffer-plane
hazards), a one-line summary, and the paper section whose invariant it
protects.  The AST checks themselves live
in :mod:`repro.analysis.nectarlint`; this module is pure bookkeeping so the
rule table can be rendered (``--explain``), filtered (``--select`` /
``--ignore``), and documented without importing the checker.

Suppression: a ``# nectarlint: disable=ND004`` comment on the line of the
finding (or ``disable=all``) silences it; ``# nectarlint: disable-file=XXX``
anywhere in a file silences a code for the whole file.  Suppressions should
carry a justifying note in the surrounding comment.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

__all__ = [
    "Finding",
    "Rule",
    "Suppressions",
    "all_rules",
    "get_rule",
    "parse_suppressions",
]


@dataclass(frozen=True)
class Rule:
    """One lint rule: stable code, summary, and paper rationale."""

    code: str
    name: str
    summary: str
    #: The paper section / repo promise this rule protects.
    rationale: str


_REGISTRY: Dict[str, Rule] = {}


def _register(code: str, name: str, summary: str, rationale: str) -> Rule:
    if code in _REGISTRY:
        raise ValueError(f"duplicate rule code {code}")
    rule = Rule(code, name, summary, rationale)
    _REGISTRY[code] = rule
    return rule


def all_rules() -> List[Rule]:
    """Every registered rule, in code order."""
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def get_rule(code: str) -> Rule:
    """Look up one rule by code (raises KeyError for unknown codes)."""
    return _REGISTRY[code]


# --------------------------------------------------------------- determinism

ND001 = _register(
    "ND001",
    "wall-clock",
    "wall-clock time source (time.time, datetime.now, ...)",
    "sim/core.py promises bit-for-bit reproducible runs; simulated time is "
    "sim.now, never the host clock",
)
ND002 = _register(
    "ND002",
    "unseeded-random",
    "module-level random.* call or random.Random() without a seed",
    "unseeded RNG state differs between runs; all randomness must flow from "
    "an explicit seed (cf. apps/workloads.py)",
)
ND003 = _register(
    "ND003",
    "os-entropy",
    "os.urandom / uuid.uuid1 / uuid.uuid4 / secrets.* entropy source",
    "OS entropy is unreproducible by construction; derive identifiers from "
    "seeded RNGs or monotonic counters",
)
ND004 = _register(
    "ND004",
    "set-iteration",
    "iteration over a set/frozenset (unordered) in simulation code",
    "set iteration order depends on hash seeding and insertion history; "
    "event ordering derived from it breaks reproducibility (sort first)",
)
ND005 = _register(
    "ND005",
    "float-ns",
    "unwrapped float arithmetic feeding an integer-nanosecond value",
    "costs are integer ns (model/costs.py); float accumulation drifts across "
    "platforms — wrap in int(round(...)) or use integer math",
)

# ---------------------------------------------------------------- sim-safety

NS101 = _register(
    "NS101",
    "discarded-generator",
    "thread-context generator API called as a bare statement (missing "
    "'yield from')",
    "runtime ops (Mutex lock, mailbox begin_put, ...) are generators; a bare "
    "call builds the generator and discards it — the operation never runs "
    "(paper Sec. 3.1 thread context)",
)
NS102 = _register(
    "NS102",
    "blocking-in-handler",
    "blocking thread-context operation inside i-prefixed / *_handler "
    "interrupt-context code",
    "interrupt handlers run masked and may only Compute (paper Sec. 3.1); "
    "blocking corrupts the engine — use the i-prefixed non-blocking variants",
)
NB201 = _register(
    "NB201",
    "payload-materialization",
    "bytes(...)/bytearray(...) materialization of a frame/message payload "
    "in data-path code",
    "the data path passes repro.buf views end to end (docs/buffers.md); "
    "materializing a payload re-introduces the per-layer host copies the "
    "buffer plane exists to eliminate — use .view()/.mv()/BufView slicing, "
    "or suppress with a note at a true process/application boundary",
)

NS103 = _register(
    "NS103",
    "yield-non-event",
    "yield of a plain constant to the simulation kernel",
    "processes yield Events and threads yield ops (Compute/Block/...); a "
    "constant yield is a SimulationError at run time — caught here instead",
)


# -------------------------------------------------------------------- output


@dataclass
class Finding:
    """One lint finding, pointing at a file:line:col."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        """``path:line:col: CODE message`` (compiler-style)."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_json(self) -> dict:
        """JSON-serializable dict form of this finding."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "summary": (
                _REGISTRY[self.code].summary
                if self.code in _REGISTRY
                else "unparseable source"
            ),
        }


# -------------------------------------------------------------- suppressions

_DISABLE_RE = re.compile(r"#\s*nectarlint:\s*disable=([A-Za-z0-9,\s]+)")
_DISABLE_FILE_RE = re.compile(r"#\s*nectarlint:\s*disable-file=([A-Za-z0-9,\s]+)")


@dataclass
class Suppressions:
    """Per-file suppression table parsed from source comments."""

    #: line number -> codes disabled on that line ("ALL" disables everything).
    by_line: Dict[int, set] = field(default_factory=dict)
    #: codes disabled for the whole file.
    whole_file: set = field(default_factory=set)

    def active(self, line: int, code: str) -> bool:
        """Whether ``code`` is suppressed at ``line``."""
        if code in self.whole_file or "ALL" in self.whole_file:
            return True
        codes = self.by_line.get(line)
        if codes is None:
            return False
        return code in codes or "ALL" in codes


def _parse_codes(blob: str) -> set:
    return {part.strip().upper() for part in blob.split(",") if part.strip()}


def parse_suppressions(source: str) -> Suppressions:
    """Scan source text for nectarlint suppression comments."""
    table = Suppressions()
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _DISABLE_FILE_RE.search(text)
        if match:
            table.whole_file |= _parse_codes(match.group(1))
            continue
        match = _DISABLE_RE.search(text)
        if match:
            table.by_line.setdefault(lineno, set()).update(
                _parse_codes(match.group(1))
            )
    return table


def filter_findings(
    findings: Iterable[Finding],
    suppressions: Suppressions,
    select: Optional[set] = None,
    ignore: Optional[set] = None,
) -> List[Finding]:
    """Apply suppression comments and --select/--ignore filters."""
    kept = []
    for finding in findings:
        if suppressions.active(finding.line, finding.code):
            continue
        if select and finding.code not in select:
            continue
        if ignore and finding.code in ignore:
            continue
        kept.append(finding)
    return kept
