"""Dynamic analysis driver: ``python -m repro analyze``.

Runs the Table-1 CAB-to-CAB datagram latency scenario — the repo's
canonical end-to-end workload — under two kinds of scrutiny:

1. **Determinism**: the scenario is executed twice in fresh simulators and
   the full event-trace signatures (every trace record, every latency
   sample, the final simulated clock) must match bit for bit, enforcing the
   reproducibility promise of :mod:`repro.sim.core`.
2. **Sanitizers**: the scenario is executed once more with the full
   :class:`~repro.analysis.sanitizers.Sanitizer` attached (heap accounting,
   lock-order graph, happens-before race detection) and any error report
   fails the run.

Exit status is non-zero on any determinism mismatch or sanitizer error, so
the command can serve as a CI gate alongside ``python -m repro lint``.
"""

from __future__ import annotations

import sys
from typing import List, Optional, Tuple

from repro.analysis.sanitizers import Sanitizer
from repro.apps import latency as lat
from repro.sim.trace import TraceRecorder
from repro.system import NectarSystem

__all__ = ["determinism_check", "main", "run_sanitized_scenario", "trace_signature"]

_DEFAULT_ROUNDS = 12
_DEFAULT_WARMUP = 2


def _build_rig(sanitizer: Optional[Sanitizer] = None):
    """The paper's measurement rig: two CABs through one HUB."""
    system = NectarSystem(sanitizer=sanitizer)
    hub = system.add_hub("hub0")
    node_a = system.add_node("cab-a", hub, 0)
    node_b = system.add_node("cab-b", hub, 1)
    return system, node_a, node_b


def trace_signature(
    rounds: int = _DEFAULT_ROUNDS, warmup: int = _DEFAULT_WARMUP
) -> Tuple:
    """One full run of the datagram RTT scenario, reduced to a signature.

    The signature contains every trace record (timestamp, component,
    label), every recorded latency sample, and the final simulated time —
    enough that any divergence in event ordering or cost accounting between
    two runs changes it.
    """
    system, node_a, node_b = _build_rig()
    recorder = TraceRecorder()
    system.tracer.sink = recorder
    latencies = lat.cab_datagram_rtt(
        system, node_a, node_b, rounds=rounds, warmup=warmup
    )
    system.tracer.sink = None
    events = tuple(
        (event.time_ns, event.component, event.label) for event in recorder.events
    )
    return (events, tuple(latencies.samples_ns), system.now)


def determinism_check(
    rounds: int = _DEFAULT_ROUNDS, warmup: int = _DEFAULT_WARMUP
) -> Tuple[bool, str]:
    """Run the scenario twice; report whether the signatures match."""
    first = trace_signature(rounds=rounds, warmup=warmup)
    second = trace_signature(rounds=rounds, warmup=warmup)
    if first == second:
        return True, (
            f"determinism: OK ({len(first[0])} trace events, "
            f"{len(first[1])} samples, final t={first[2]} ns identical "
            f"across two runs)"
        )
    details: List[str] = ["determinism: MISMATCH between two identical runs"]
    if first[2] != second[2]:
        details.append(f"  final time differs: {first[2]} ns vs {second[2]} ns")
    if first[1] != second[1]:
        details.append(f"  latency samples differ: {first[1]} vs {second[1]}")
    if first[0] != second[0]:
        limit = min(len(first[0]), len(second[0]))
        for index in range(limit):
            if first[0][index] != second[0][index]:
                details.append(
                    f"  first divergent trace event #{index}: "
                    f"{first[0][index]} vs {second[0][index]}"
                )
                break
        else:
            details.append(
                f"  trace lengths differ: {len(first[0])} vs {len(second[0])}"
            )
    return False, "\n".join(details)


def run_sanitized_scenario(
    rounds: int = _DEFAULT_ROUNDS, warmup: int = _DEFAULT_WARMUP
) -> Sanitizer:
    """Run the datagram RTT scenario with all sanitizers attached."""
    sanitizer = Sanitizer()
    system, node_a, node_b = _build_rig(sanitizer=sanitizer)
    lat.cab_datagram_rtt(system, node_a, node_b, rounds=rounds, warmup=warmup)
    sanitizer.check()
    return sanitizer


def main(argv: List[str]) -> int:
    """CLI entry: ``python -m repro analyze [--rounds N] [--skip-races]``."""
    rounds = _DEFAULT_ROUNDS
    skip_races = False
    arguments = list(argv)
    while arguments:
        arg = arguments.pop(0)
        if arg == "--rounds":
            if not arguments or not arguments[0].isdigit():
                print("--rounds requires an integer", file=sys.stderr)
                return 2
            rounds = int(arguments.pop(0))
        elif arg == "--skip-races":
            skip_races = True
        else:
            print(f"unknown option {arg!r}", file=sys.stderr)
            return 2

    ok, message = determinism_check(rounds=rounds)
    print(message)

    if skip_races:
        sanitizer = Sanitizer(races=False)
        system, node_a, node_b = _build_rig(sanitizer=sanitizer)
        lat.cab_datagram_rtt(system, node_a, node_b, rounds=rounds, warmup=_DEFAULT_WARMUP)
        sanitizer.check()
    else:
        sanitizer = run_sanitized_scenario(rounds=rounds)
    print(sanitizer.render())

    if not ok or sanitizer.errors:
        return 1
    return 0
