"""Header codecs: Nectar datalink, IPv4, UDP, TCP, ICMP, Nectar transports.

Every header is packed into real bytes with :mod:`struct` and parsed back;
checksums are real.  Round-tripping is property-tested.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.errors import ProtocolError
from repro.protocols.checksum import checksum_partial, finish_checksum, internet_checksum

__all__ = [
    "DatalinkHeader",
    "ICMPHeader",
    "IPv4Header",
    "NectarTransportHeader",
    "TCPHeader",
    "UDPHeader",
    "pseudo_header_sum",
]

# ---------------------------------------------------------------- datalink

#: Datalink packet types (what the CAB datalink demultiplexes on).
DL_TYPE_IP = 0x0800
DL_TYPE_NECTAR = 0x4E43  # 'NC'

_DL_FMT = ">HHIII"
_DL_MAGIC = 0xCAB5


@dataclass
class DatalinkHeader:
    """The Nectar datalink header (16 bytes on the wire).

    Carries the packet type (demux key), total payload length, and the
    source/destination node identifiers.
    """

    dl_type: int
    length: int
    src_node: int
    dst_node: int

    SIZE = struct.calcsize(_DL_FMT)

    def pack(self) -> bytes:
        """Encode to wire bytes."""
        return struct.pack(
            _DL_FMT, _DL_MAGIC, self.dl_type, self.length, self.src_node, self.dst_node
        )

    @classmethod
    def unpack(cls, data: bytes) -> "DatalinkHeader":
        if len(data) < cls.SIZE:
            raise ProtocolError(f"short datalink header: {len(data)} bytes")
        magic, dl_type, length, src, dst = struct.unpack(_DL_FMT, data[: cls.SIZE])
        if magic != _DL_MAGIC:
            raise ProtocolError(f"bad datalink magic 0x{magic:04x}")
        return cls(dl_type=dl_type, length=length, src_node=src, dst_node=dst)


# ------------------------------------------------------------------- IPv4

IPPROTO_ICMP = 1
IPPROTO_TCP = 6
IPPROTO_UDP = 17

_IP_FMT = ">BBHHHBBHII"

IP_FLAG_DF = 0x2
IP_FLAG_MF = 0x1


@dataclass
class IPv4Header:
    """A real IPv4 header (20 bytes, no options), checksum included."""

    src: int  # 32-bit address
    dst: int
    protocol: int
    total_length: int = 0
    identification: int = 0
    flags: int = 0
    fragment_offset: int = 0  # in 8-byte units
    ttl: int = 16
    tos: int = 0
    checksum: int = 0

    SIZE = struct.calcsize(_IP_FMT)

    def pack(self, fill_checksum: bool = True) -> bytes:
        """Encode to wire bytes, filling the header checksum."""
        version_ihl = (4 << 4) | 5
        flags_frag = (self.flags << 13) | (self.fragment_offset & 0x1FFF)
        header = struct.pack(
            _IP_FMT,
            version_ihl,
            self.tos,
            self.total_length,
            self.identification,
            flags_frag,
            self.ttl,
            self.protocol,
            0,
            self.src,
            self.dst,
        )
        if not fill_checksum:
            return header
        checksum = internet_checksum(header)
        self.checksum = checksum
        return header[:10] + struct.pack(">H", checksum) + header[12:]

    @classmethod
    def unpack(cls, data: bytes) -> "IPv4Header":
        if len(data) < cls.SIZE:
            raise ProtocolError(f"short IP header: {len(data)} bytes")
        (
            version_ihl,
            tos,
            total_length,
            identification,
            flags_frag,
            ttl,
            protocol,
            checksum,
            src,
            dst,
        ) = struct.unpack(_IP_FMT, data[: cls.SIZE])
        if version_ihl >> 4 != 4:
            raise ProtocolError(f"not IPv4 (version {version_ihl >> 4})")
        if (version_ihl & 0xF) != 5:
            raise ProtocolError("IP options are not supported")
        return cls(
            src=src,
            dst=dst,
            protocol=protocol,
            total_length=total_length,
            identification=identification,
            flags=flags_frag >> 13,
            fragment_offset=flags_frag & 0x1FFF,
            ttl=ttl,
            tos=tos,
            checksum=checksum,
        )

    def header_checksum_ok(self, raw: bytes) -> bool:
        """Verify the header checksum over the raw 20 header bytes."""
        return internet_checksum(raw[: self.SIZE]) == 0

    @property
    def more_fragments(self) -> bool:
        return bool(self.flags & IP_FLAG_MF)


def pseudo_header_sum(src: int, dst: int, protocol: int, length: int) -> int:
    """Running sum of the TCP/UDP pseudo-header."""
    pseudo = struct.pack(">IIBBH", src, dst, 0, protocol, length)
    return checksum_partial(pseudo)


# -------------------------------------------------------------------- UDP

_UDP_FMT = ">HHHH"


@dataclass
class UDPHeader:
    """A real UDP header (8 bytes)."""

    src_port: int
    dst_port: int
    length: int = 0
    checksum: int = 0

    SIZE = struct.calcsize(_UDP_FMT)

    def pack(self) -> bytes:
        """Encode to wire bytes."""
        return struct.pack(
            _UDP_FMT, self.src_port, self.dst_port, self.length, self.checksum
        )

    @classmethod
    def unpack(cls, data: bytes) -> "UDPHeader":
        if len(data) < cls.SIZE:
            raise ProtocolError(f"short UDP header: {len(data)} bytes")
        src, dst, length, checksum = struct.unpack(_UDP_FMT, data[: cls.SIZE])
        return cls(src_port=src, dst_port=dst, length=length, checksum=checksum)

    @staticmethod
    def compute_checksum(src_ip: int, dst_ip: int, segment: bytes) -> int:
        partial = pseudo_header_sum(src_ip, dst_ip, IPPROTO_UDP, len(segment))
        partial = checksum_partial(segment, partial)
        value = finish_checksum(partial)
        return value or 0xFFFF  # 0 means "no checksum" in UDP


# -------------------------------------------------------------------- TCP

TCP_FIN = 0x01
TCP_SYN = 0x02
TCP_RST = 0x04
TCP_PSH = 0x08
TCP_ACK = 0x10

_TCP_FMT = ">HHIIBBHHH"


@dataclass
class TCPHeader:
    """A real TCP header (20 bytes, no options)."""

    src_port: int
    dst_port: int
    seq: int
    ack: int
    flags: int
    window: int
    checksum: int = 0
    urgent: int = 0

    SIZE = struct.calcsize(_TCP_FMT)

    def pack(self) -> bytes:
        """Encode to wire bytes."""
        data_offset = (5 << 4)
        return struct.pack(
            _TCP_FMT,
            self.src_port,
            self.dst_port,
            self.seq & 0xFFFFFFFF,
            self.ack & 0xFFFFFFFF,
            data_offset,
            self.flags,
            self.window,
            self.checksum,
            self.urgent,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "TCPHeader":
        if len(data) < cls.SIZE:
            raise ProtocolError(f"short TCP header: {len(data)} bytes")
        (
            src,
            dst,
            seq,
            ack,
            data_offset,
            flags,
            window,
            checksum,
            urgent,
        ) = struct.unpack(_TCP_FMT, data[: cls.SIZE])
        if data_offset >> 4 != 5:
            raise ProtocolError("TCP options are not supported")
        return cls(
            src_port=src,
            dst_port=dst,
            seq=seq,
            ack=ack,
            flags=flags,
            window=window,
            checksum=checksum,
            urgent=urgent,
        )

    @staticmethod
    def compute_checksum(src_ip: int, dst_ip: int, segment: bytes) -> int:
        partial = pseudo_header_sum(src_ip, dst_ip, IPPROTO_TCP, len(segment))
        partial = checksum_partial(segment, partial)
        return finish_checksum(partial)

    @staticmethod
    def verify(src_ip: int, dst_ip: int, segment: bytes) -> bool:
        partial = pseudo_header_sum(src_ip, dst_ip, IPPROTO_TCP, len(segment))
        partial = checksum_partial(segment, partial)
        return finish_checksum(partial) == 0

    def flag_names(self) -> str:
        """Human-readable flag list, e.g. 'SYN|ACK'."""
        names = []
        for bit, name in (
            (TCP_SYN, "SYN"),
            (TCP_ACK, "ACK"),
            (TCP_FIN, "FIN"),
            (TCP_RST, "RST"),
            (TCP_PSH, "PSH"),
        ):
            if self.flags & bit:
                names.append(name)
        return "|".join(names) or "-"


# -------------------------------------------------------------------- ICMP

ICMP_ECHO_REQUEST = 8
ICMP_ECHO_REPLY = 0
ICMP_DEST_UNREACHABLE = 3
ICMP_CODE_PORT_UNREACHABLE = 3

_ICMP_FMT = ">BBHHH"


@dataclass
class ICMPHeader:
    """ICMP echo request/reply header (8 bytes)."""

    icmp_type: int
    code: int = 0
    checksum: int = 0
    identifier: int = 0
    sequence: int = 0

    SIZE = struct.calcsize(_ICMP_FMT)

    def pack(self) -> bytes:
        """Encode to wire bytes."""
        return struct.pack(
            _ICMP_FMT, self.icmp_type, self.code, self.checksum, self.identifier, self.sequence
        )

    @classmethod
    def unpack(cls, data: bytes) -> "ICMPHeader":
        if len(data) < cls.SIZE:
            raise ProtocolError(f"short ICMP header: {len(data)} bytes")
        icmp_type, code, checksum, identifier, sequence = struct.unpack(
            _ICMP_FMT, data[: cls.SIZE]
        )
        return cls(
            icmp_type=icmp_type,
            code=code,
            checksum=checksum,
            identifier=identifier,
            sequence=sequence,
        )

    @staticmethod
    def compute_checksum(message: bytes) -> int:
        return internet_checksum(message)


# ------------------------------------------------------ Nectar transports

NECTAR_PROTO_DATAGRAM = 1
NECTAR_PROTO_RMP = 2
NECTAR_PROTO_REQRESP = 3
NECTAR_PROTO_NMP = 4
NECTAR_PROTO_COLL = 5

NECTAR_KIND_DATA = 0
NECTAR_KIND_ACK = 1
NECTAR_KIND_REQUEST = 2
NECTAR_KIND_RESPONSE = 3
# NMP (NACK-oriented reliable multicast, repro.protocols.nectar.nmp)
NECTAR_KIND_NACK = 4
NECTAR_KIND_REPAIR = 5
NECTAR_KIND_SYNC = 6
NECTAR_KIND_SYNC_ACK = 7
# CAB-resident collectives (repro.protocols.nectar.collective)
NECTAR_KIND_ARRIVE = 8
NECTAR_KIND_RELEASE = 9
NECTAR_KIND_BCAST = 10

_NT_FMT = ">BBHIIIIII"


@dataclass
class NectarTransportHeader:
    """Shared header for the Nectar-specific transport protocols (28 bytes).

    Ports address mailboxes: the Nectar transports deliver directly into a
    mailbox with a network-wide address (paper Sec. 3.3), so the header
    carries full (node, port) pairs for both ends.
    """

    protocol: int
    kind: int
    flags: int = 0
    seq: int = 0
    src_node: int = 0
    src_port: int = 0
    dst_node: int = 0
    dst_port: int = 0
    length: int = 0

    SIZE = struct.calcsize(_NT_FMT)

    def pack(self) -> bytes:
        """Encode to wire bytes."""
        return struct.pack(
            _NT_FMT,
            self.protocol,
            self.kind,
            self.flags,
            self.seq,
            self.src_node,
            self.src_port,
            self.dst_node,
            self.dst_port,
            self.length,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "NectarTransportHeader":
        if len(data) < cls.SIZE:
            raise ProtocolError(f"short Nectar transport header: {len(data)} bytes")
        (
            protocol,
            kind,
            flags,
            seq,
            src_node,
            src_port,
            dst_node,
            dst_port,
            length,
        ) = struct.unpack(_NT_FMT, data[: cls.SIZE])
        return cls(
            protocol=protocol,
            kind=kind,
            flags=flags,
            seq=seq,
            src_node=src_node,
            src_port=src_port,
            dst_node=dst_node,
            dst_port=dst_port,
            length=length,
        )

    def reply_to(self) -> tuple[int, int]:
        """(node, port) to answer this packet's sender."""
        return (self.src_node, self.src_port)
