"""The datalink layer on the CAB (paper Sec. 4.1 mechanism).

Receive side: when a packet starts arriving over the fiber, the datalink
layer (running at interrupt time) reads the datalink header and initiates a
DMA operation placing the packet into the input mailbox of the protocol the
packet belongs to.  After the protocol header has arrived it issues a
*start-of-data* upcall so useful work (e.g. the IP header sanity check) can
overlap the arrival of the rest of the packet; when the whole packet has
landed (and the hardware CRC has been checked) it issues an *end-of-data*
upcall.

Send side: a thread builds a frame (datalink header + packet bytes read from
the mailbox message) and programs the transmit DMA; an optional TX-complete
interrupt frees the send buffer once the frame has left CAB memory.

Zero-copy discipline (docs/buffers.md): the frame buffer is allocated with
``DatalinkHeader.SIZE`` bytes of headroom, the packet bytes are materialized
into it with exactly one counted host copy (the TX DMA draining CAB
memory), and the datalink header is *prepended* into the headroom instead
of rebuilding the payload.  The receive side unpacks headers straight from
frame and message views, with no intermediate ``bytes``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generator, Optional

from repro.buf.packet import PacketBuffer
from repro.cab.board import CAB
from repro.cab.cpu import Compute
from repro.errors import ProtocolError
from repro.hub.network import NectarNetwork
from repro.hw.fiber import Frame
from repro.protocols.addressing import NodeRegistry
from repro.protocols.headers import DatalinkHeader
from repro.runtime.kernel import Runtime
from repro.runtime.mailbox import Mailbox, Message

__all__ = ["Datalink", "ProtocolBinding"]


@dataclass
class ProtocolBinding:
    """How the datalink hands packets of one type to a protocol."""

    #: Mailbox whose buffer space receives packets of this type.
    input_mailbox: Mailbox
    #: Protocol header size past the datalink header; once this much has been
    #: DMA'd to memory, ``on_header`` fires.
    header_bytes: int = 0
    #: Start-of-data upcall (interrupt context): header sanity checks that
    #: overlap the arrival of the packet body.
    on_header: Optional[Callable[[Message, DatalinkHeader], Generator]] = None
    #: End-of-data upcall (interrupt context): must queue or free the message.
    on_packet: Optional[Callable[[Message, DatalinkHeader], Generator]] = None


class Datalink:
    """One CAB's datalink layer."""

    def __init__(
        self,
        runtime: Runtime,
        network: NectarNetwork,
        registry: NodeRegistry,
        mtu: int = 9000,
    ):
        self.runtime = runtime
        self.cab: CAB = runtime.cab
        self.costs = runtime.costs
        self.registry = registry
        self.network = network
        self.node_id = registry.node_id(self.cab.name)
        self.mtu = mtu
        self._bindings: Dict[int, ProtocolBinding] = {}
        self.cab.rx_dispatch = self._sop_handler
        self.stats = runtime.cab.stats

    # --------------------------------------------------------------- binding

    def register(self, dl_type: int, binding: ProtocolBinding) -> None:
        """Bind a protocol to a datalink packet type."""
        if dl_type in self._bindings:
            raise ProtocolError(f"datalink type 0x{dl_type:04x} already bound")
        if binding.on_packet is None:
            # Default delivery: queue the packet in the input mailbox.
            binding.on_packet = self._default_on_packet(binding)
        self._bindings[dl_type] = binding

    @staticmethod
    def _default_on_packet(binding: ProtocolBinding):
        def deliver(msg: Message, header: DatalinkHeader) -> Generator:
            yield from binding.input_mailbox.iend_put(msg)

        return deliver

    # ------------------------------------------------------------------ send

    def _span_track(self) -> str:
        """Trace track for the current execution context (thread or irq)."""
        label = self.runtime.cpu.context_label
        return label if label is not None else f"{self.runtime.cpu.name}/ext"

    def _build_frame_payload(self, header: DatalinkHeader, packet_bytes):
        """One counted copy of the packet into a headroom-reserving buffer.

        Models the TX DMA materializing the frame out of CAB memory: the
        frame gets private refcounted storage (so the mailbox message can
        be freed at TX-complete while the frame is still on the wire) and
        the datalink header is prepended into reserved headroom — no
        header+payload rebuild.
        """
        view = PacketBuffer.alloc(
            len(packet_bytes),
            headroom=DatalinkHeader.SIZE,
            meter=self.cab.copy_meter,
            sanitizer=self.runtime.sanitizer,
            label=f"{self.cab.name}.dl-frame",
        )
        view.fill_from(packet_bytes)
        return view.prepend(header.pack())

    def send_message(
        self,
        dst_node: int,
        dl_type: int,
        msg: Message,
        free_after: bool = True,
    ) -> Generator:
        """Thread-context: frame a mailbox message and start the TX DMA.

        If ``free_after``, the message's buffer is released by the
        TX-complete interrupt once the DMA has drained it (the caller must
        not touch the message again).
        """
        tracer = self.runtime.tracer
        track = self._span_track() if tracer.sink is not None else None
        if track is not None:
            tracer.begin(
                "datalink",
                "send",
                {"dst": dst_node, "bytes": msg.size},
                track=track,
            )
        try:
            yield Compute(self.costs.dl_send_ns)
            header = DatalinkHeader(
                dl_type=dl_type,
                length=msg.size,
                src_node=self.node_id,
                dst_node=dst_node,
            )
            frame = Frame(
                route=self.registry.route_to(self.cab.name, dst_node),
                payload=self._build_frame_payload(header, msg.view()),
                src=self.cab.name,
            )
            if track is not None:
                # Async span spanning the frame's life on the wire; the
                # receiver's end-of-packet upcall (or nobody, for drops)
                # closes it.
                tracer.async_begin(
                    "datalink", "frame", frame.seqno, {"bytes": frame.size}
                )
            if free_after:
                mailbox = msg.mailbox

                def release(_frame: Frame) -> None:
                    mailbox._release_storage(msg)
                    self.runtime.wake_heap_waiters()

                frame.on_dma_done = release
            yield from self.cab.send_frame(frame)
        finally:
            if track is not None:
                tracer.end("datalink", "send", track=track)

    def send_raw(self, dst_node: int, dl_type: int, packet: bytes) -> Generator:
        """Thread/interrupt-context: frame raw bytes (control packets, ACKs).

        Models building the packet in a scratch buffer: charges the memcpy.
        """
        yield Compute(self.costs.dl_send_ns)
        yield Compute(self.costs.cab_memcpy_ns(len(packet)))
        header = DatalinkHeader(
            dl_type=dl_type,
            length=len(packet),
            src_node=self.node_id,
            dst_node=dst_node,
        )
        frame = Frame(
            route=self.registry.route_to(self.cab.name, dst_node),
            payload=self._build_frame_payload(header, packet),
            src=self.cab.name,
        )
        tracer = self.runtime.tracer
        if tracer.sink is not None:
            tracer.async_begin("datalink", "frame", frame.seqno, {"bytes": frame.size})
        yield from self.cab.send_frame(frame)

    # ------------------------------------------------------------------ receive

    def _sop_handler(self, frame: Frame) -> Generator:
        """Start-of-packet interrupt handler."""
        yield Compute(self.costs.dl_sop_handler_ns)
        injector = self.runtime.fault_injector
        if injector is not None and injector.datalink_rx_drop(self.cab.name, frame):
            # Injected software drop: a good frame is discarded before
            # dispatch (interrupt/buffer pressure); transports recover.
            self.stats.add("dl_fault_drops")
            self.cab.discard_rx(frame)
            return
        try:
            header = DatalinkHeader.unpack(frame.payload.mv())
        except ProtocolError:
            self.stats.add("dl_bad_header")
            self.cab.discard_rx(frame)
            return
        binding = self._bindings.get(header.dl_type)
        if binding is None:
            self.stats.add("dl_unknown_type")
            self.cab.discard_rx(frame)
            return
        msg = yield from binding.input_mailbox.ibegin_put(frame.size)
        if msg is None:
            # No buffer space: the packet is dropped (transports recover).
            self.stats.add("dl_no_buffer")
            self.cab.discard_rx(frame)
            return
        self.cab.start_rx_dma(
            frame,
            self.cab.data_mem,
            msg.addr,
            header_bytes=DatalinkHeader.SIZE + binding.header_bytes,
            on_header=self._make_header_upcall(binding, msg, header),
            on_complete=self._make_completion(binding, msg, header),
        )

    def _make_header_upcall(self, binding: ProtocolBinding, msg: Message, header: DatalinkHeader):
        if binding.on_header is None:
            return None

        def upcall(_frame: Frame) -> Generator:
            yield from binding.on_header(msg, header)

        return upcall

    def _make_completion(self, binding: ProtocolBinding, msg: Message, header: DatalinkHeader):
        def complete(_frame: Frame, crc_ok: bool) -> Generator:
            yield Compute(self.costs.dl_eop_handler_ns)
            tracer = self.runtime.tracer
            if tracer.sink is not None:
                # Close the sender-side async span; frames dropped en route
                # simply leave theirs open (visible as unfinished spans).
                tracer.async_end(
                    "datalink", "frame", _frame.seqno, {"crc_ok": crc_ok}
                )
            if not crc_ok:
                self.stats.add("dl_crc_drops")
                yield from binding.input_mailbox.iabort_put(msg)
                return
            msg.trim_front(DatalinkHeader.SIZE)
            yield from binding.on_packet(msg, header)

        return complete
