"""ICMP on the CAB, implemented as a mailbox reader upcall (paper Sec. 4.1).

"In our current system, ICMP is implemented as a mailbox upcall, while UDP
and TCP each have their own server threads."  The upcall fires whenever IP
enqueues an ICMP datagram into the ICMP input mailbox — at interrupt time —
and answers echo requests on the spot.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from repro.cab.cpu import Compute
from repro.errors import ProtocolError
from repro.protocols.headers import (
    ICMP_CODE_PORT_UNREACHABLE,
    ICMP_DEST_UNREACHABLE,
    ICMP_ECHO_REPLY,
    ICMP_ECHO_REQUEST,
    ICMPHeader,
    IPPROTO_ICMP,
    IPv4Header,
)
from repro.protocols.ip import IPProtocol
from repro.runtime.kernel import Runtime
from repro.runtime.mailbox import Mailbox, Message

__all__ = ["ICMPProtocol"]


class ICMPProtocol:
    """Echo (ping) service, processed entirely at interrupt time."""

    def __init__(self, runtime: Runtime, ip: IPProtocol):
        self.runtime = runtime
        self.costs = runtime.costs
        self.ip = ip
        self.input_mailbox = runtime.mailbox("icmp-input")
        self.input_mailbox.reader_upcall = self._upcall
        ip.register_transport(IPPROTO_ICMP, self.input_mailbox)
        self.stats = runtime.stats
        #: Optional hook observing echo replies (used by ping clients).
        self.on_echo_reply: Optional[Callable[[ICMPHeader, bytes], None]] = None
        #: Optional hook observing destination-unreachable errors.
        self.on_unreachable: Optional[Callable[[ICMPHeader, bytes], None]] = None

    # -- sending ---------------------------------------------------------------

    def send_echo_request(
        self, dst_ip: int, identifier: int, sequence: int, payload: bytes = b""
    ) -> Generator:
        """Thread-context: emit one echo request."""
        yield from self._send_echo(
            dst_ip, ICMP_ECHO_REQUEST, identifier, sequence, payload
        )
        self.stats.add("icmp_echo_requests_out")

    def _send_echo(
        self, dst_ip: int, icmp_type: int, identifier: int, sequence: int, payload: bytes
    ) -> Generator:
        size = IPv4Header.SIZE + ICMPHeader.SIZE + len(payload)
        msg = yield from self.input_mailbox.begin_put(size)
        header = ICMPHeader(
            icmp_type=icmp_type, identifier=identifier, sequence=sequence
        )
        body = bytearray(header.pack())
        body.extend(payload)
        checksum = ICMPHeader.compute_checksum(bytes(body))
        body[2:4] = checksum.to_bytes(2, "big")
        yield Compute(self.costs.cab_checksum_ns(len(body)))
        yield Compute(self.costs.cab_memcpy_ns(len(body)))
        msg.write(IPv4Header.SIZE, bytes(body))
        template = IPv4Header(src=0, dst=dst_ip, protocol=IPPROTO_ICMP)
        yield from self.ip.output(template, msg, free_after=True)

    def send_port_unreachable(self, dst_ip: int, original: bytes) -> Generator:
        """ICMP destination unreachable (port), quoting the original
        datagram's IP header + 8 bytes, as RFC 792 prescribes.

        Interrupt-safe (uses only non-blocking operations).
        """
        quote = original[: IPv4Header.SIZE + 8]
        size = IPv4Header.SIZE + ICMPHeader.SIZE + len(quote)
        msg = yield from self.input_mailbox.ibegin_put(size)
        if msg is None:
            self.stats.add("icmp_reply_no_buffer")
            return
        header = ICMPHeader(
            icmp_type=ICMP_DEST_UNREACHABLE, code=ICMP_CODE_PORT_UNREACHABLE
        )
        body = bytearray(header.pack())
        body.extend(quote)
        checksum = ICMPHeader.compute_checksum(bytes(body))
        body[2:4] = checksum.to_bytes(2, "big")
        yield Compute(self.costs.cab_checksum_ns(len(body)))
        yield Compute(self.costs.cab_memcpy_ns(len(body)))
        msg.write(IPv4Header.SIZE, bytes(body))
        template = IPv4Header(src=0, dst=dst_ip, protocol=IPPROTO_ICMP)
        yield from self.ip.output(template, msg, free_after=True)
        self.stats.add("icmp_unreachable_out")

    # -- receiving (interrupt context) -------------------------------------------

    def _upcall(self, mailbox: Mailbox) -> Generator:
        msg = yield from mailbox.ibegin_get()
        if msg is None:
            return
        yield Compute(self.costs.icmp_input_ns)
        if msg.size < IPv4Header.SIZE + ICMPHeader.SIZE:
            self.stats.add("icmp_malformed")
            yield from mailbox.iend_get(msg)
            return
        try:
            ip_header = IPv4Header.unpack(msg.view(0, IPv4Header.SIZE))
            # The body escapes the message's lifetime (echo payloads are
            # re-sent after iend_get frees this buffer): keep the copy.
            body = msg.read(IPv4Header.SIZE)
            icmp = ICMPHeader.unpack(body)
        except ProtocolError:
            self.stats.add("icmp_malformed")
            yield from mailbox.iend_get(msg)
            return
        if ICMPHeader.compute_checksum(body) != 0:
            self.stats.add("icmp_bad_checksum")
            yield from mailbox.iend_get(msg)
            return
        payload = body[ICMPHeader.SIZE :]
        if icmp.icmp_type == ICMP_ECHO_REQUEST:
            self.stats.add("icmp_echo_requests_in")
            yield from self._reply(ip_header.src, icmp, payload)
        elif icmp.icmp_type == ICMP_ECHO_REPLY:
            self.stats.add("icmp_echo_replies_in")
            if self.on_echo_reply is not None:
                self.on_echo_reply(icmp, payload)
        elif icmp.icmp_type == ICMP_DEST_UNREACHABLE:
            self.stats.add("icmp_unreachable_in")
            if self.on_unreachable is not None:
                self.on_unreachable(icmp, payload)
        else:
            self.stats.add("icmp_unknown_type")
        yield from mailbox.iend_get(msg)

    def _reply(self, dst_ip: int, request: ICMPHeader, payload: bytes) -> Generator:
        """Answer an echo request immediately, still at interrupt time."""
        size = IPv4Header.SIZE + ICMPHeader.SIZE + len(payload)
        msg = yield from self.input_mailbox.ibegin_put(size)
        if msg is None:
            self.stats.add("icmp_reply_no_buffer")
            return
        header = ICMPHeader(
            icmp_type=ICMP_ECHO_REPLY,
            identifier=request.identifier,
            sequence=request.sequence,
        )
        body = bytearray(header.pack())
        body.extend(payload)
        checksum = ICMPHeader.compute_checksum(bytes(body))
        body[2:4] = checksum.to_bytes(2, "big")
        yield Compute(self.costs.cab_checksum_ns(len(body)))
        yield Compute(self.costs.cab_memcpy_ns(len(body)))
        msg.write(IPv4Header.SIZE, bytes(body))
        template = IPv4Header(src=0, dst=dst_ip, protocol=IPPROTO_ICMP)
        yield from self.ip.output(template, msg, free_after=True)
        self.stats.add("icmp_echo_replies_out")
