"""UDP on the CAB, with its own server thread (paper Sec. 4.1).

The UDP server thread blocks on a ``Begin_Get`` of its input mailbox (which
IP fills via Enqueue), verifies the real checksum, strips the headers in
place, and transfers the payload to the bound user mailbox — again with
Enqueue, so the data is never copied between receipt and presentation.
"""

from __future__ import annotations

from typing import Dict, Generator

from repro.cab.cpu import Compute
from repro.errors import ProtocolError
from repro.protocols.headers import IPPROTO_UDP, IPv4Header, UDPHeader
from repro.protocols.ip import IPProtocol
from repro.runtime.kernel import Runtime
from repro.runtime.mailbox import Mailbox, Message

__all__ = ["UDPProtocol"]


class UDPProtocol:
    """The UDP layer of one CAB."""

    def __init__(self, runtime: Runtime, ip: IPProtocol, checksums: bool = True):
        self.runtime = runtime
        self.costs = runtime.costs
        self.ip = ip
        self.checksums = checksums
        #: Set by the stack builder so unbound ports answer with ICMP
        #: destination unreachable (RFC 1122 behaviour).
        self.icmp = None
        self.input_mailbox = runtime.mailbox("udp-input")
        ip.register_transport(IPPROTO_UDP, self.input_mailbox)
        self._ports: Dict[int, Mailbox] = {}
        self.stats = runtime.stats
        runtime.fork_system(self._server_thread(), name="udp-input")

    # -- binding -----------------------------------------------------------------

    def bind(self, port: int, mailbox: Mailbox) -> None:
        """Deliver datagrams addressed to ``port`` into ``mailbox``."""
        if not 0 < port <= 0xFFFF:
            raise ProtocolError(f"bad UDP port {port}")
        if port in self._ports:
            raise ProtocolError(f"UDP port {port} already bound")
        self._ports[port] = mailbox

    def unbind(self, port: int) -> None:
        """Stop delivering for ``port``."""
        if port not in self._ports:
            raise ProtocolError(f"UDP port {port} is not bound")
        del self._ports[port]

    # -- sending ---------------------------------------------------------------

    def send(
        self,
        src_port: int,
        dst_ip: int,
        dst_port: int,
        data: bytes,
    ) -> Generator:
        """Thread-context: send one datagram built from ``data``."""
        headers = IPv4Header.SIZE + UDPHeader.SIZE
        msg = yield from self.input_mailbox.begin_put(headers + len(data))
        yield Compute(self.costs.cab_memcpy_ns(len(data)))
        msg.write(headers, data)
        yield from self.send_message(src_port, dst_ip, dst_port, msg)

    def send_message(
        self, src_port: int, dst_ip: int, dst_port: int, msg: Message
    ) -> Generator:
        """Thread-context: send a pre-built message.

        ``msg`` must be laid out as ``[IP room][UDP room][payload]``; the
        payload must already be in place.
        """
        yield Compute(self.costs.udp_output_ns)
        udp_length = msg.size - IPv4Header.SIZE
        header = UDPHeader(
            src_port=src_port, dst_port=dst_port, length=udp_length, checksum=0
        )
        msg.write(IPv4Header.SIZE, header.pack())
        if self.checksums:
            segment = msg.view(IPv4Header.SIZE)
            yield Compute(self.costs.cab_checksum_ns(len(segment)))
            checksum = UDPHeader.compute_checksum(self.ip.address, dst_ip, segment)
            msg.write(IPv4Header.SIZE + 6, checksum.to_bytes(2, "big"))
        template = IPv4Header(src=0, dst=dst_ip, protocol=IPPROTO_UDP)
        self.stats.add("udp_out")
        yield from self.ip.output(template, msg, free_after=True)

    # -- the server thread --------------------------------------------------------

    def _server_thread(self) -> Generator:
        while True:
            msg = yield from self.input_mailbox.begin_get()
            yield from self._input(msg)

    def _input(self, msg: Message) -> Generator:
        yield Compute(self.costs.udp_input_ns)
        if msg.size < IPv4Header.SIZE + UDPHeader.SIZE:
            self.stats.add("udp_malformed")
            yield from self.input_mailbox.end_get(msg)
            return
        try:
            ip_header = IPv4Header.unpack(msg.view(0, IPv4Header.SIZE))
            udp_header = UDPHeader.unpack(
                msg.view(IPv4Header.SIZE, UDPHeader.SIZE)
            )
        except ProtocolError:
            self.stats.add("udp_malformed")
            yield from self.input_mailbox.end_get(msg)
            return
        if udp_header.length != msg.size - IPv4Header.SIZE:
            self.stats.add("udp_bad_length")
            yield from self.input_mailbox.end_get(msg)
            return
        if self.checksums and udp_header.checksum != 0:
            segment = msg.view(IPv4Header.SIZE)
            yield Compute(self.costs.cab_checksum_ns(len(segment)))
            partial = UDPHeader.compute_checksum(ip_header.src, ip_header.dst, segment)
            # Summing a segment with a valid embedded checksum yields 0
            # (0xFFFF before inversion).
            if partial not in (0, 0xFFFF):
                self.stats.add("udp_bad_checksum")
                yield from self.input_mailbox.end_get(msg)
                return
        user_mailbox = self._ports.get(udp_header.dst_port)
        if user_mailbox is None:
            self.stats.add("udp_no_port")
            original = msg.read(0, min(msg.size, IPv4Header.SIZE + 8))
            yield from self.input_mailbox.end_get(msg)
            if self.icmp is not None:
                yield from self.icmp.send_port_unreachable(ip_header.src, original)
            return
        # Strip headers in place and hand the payload over without a copy.
        msg.trim_front(IPv4Header.SIZE + UDPHeader.SIZE)
        self.stats.add("udp_in")
        yield from self.input_mailbox.enqueue(msg, user_mailbox)
