"""Node addressing: names, datalink node ids, IP addresses, routes.

Every CAB gets a small integer *node id* (used in the datalink header) and
an IPv4 address (used by the TCP/IP suite).  The registry is the glue
between protocol addressing and the HUB source routes.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import AddressError
from repro.hub.network import NectarNetwork

__all__ = ["NodeRegistry", "format_ip", "parse_ip"]


def parse_ip(text: str) -> int:
    """Dotted quad -> 32-bit integer."""
    parts = text.split(".")
    if len(parts) != 4:
        raise AddressError(f"bad IPv4 address {text!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise AddressError(f"bad IPv4 octet {part!r} in {text!r}")
        value = (value << 8) | octet
    return value


def format_ip(value: int) -> str:
    """32-bit integer -> dotted quad."""
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


class NodeRegistry:
    """Name / node-id / IP bookkeeping for every CAB on a network."""

    def __init__(self, network: NectarNetwork):
        self.network = network
        self._by_name: Dict[str, int] = {}
        self._by_id: Dict[int, str] = {}
        self._ip_by_id: Dict[int, int] = {}
        self._id_by_ip: Dict[int, int] = {}
        self._next_id = 1

    def register(self, name: str, ip: Optional[str] = None) -> int:
        """Assign a node id (and IP) to a CAB name.  Returns the node id."""
        if name in self._by_name:
            raise AddressError(f"node {name!r} already registered")
        node_id = self._next_id
        self._next_id += 1
        self._by_name[name] = node_id
        self._by_id[node_id] = name
        ip_value = parse_ip(ip) if ip else parse_ip(f"10.0.0.{node_id}")
        if ip_value in self._id_by_ip:
            raise AddressError(f"IP {format_ip(ip_value)} already in use")
        self._ip_by_id[node_id] = ip_value
        self._id_by_ip[ip_value] = node_id
        return node_id

    def node_id(self, name: str) -> int:
        """The node id assigned to a CAB name."""
        if name not in self._by_name:
            raise AddressError(f"unknown node {name!r}")
        return self._by_name[name]

    def name_of(self, node_id: int) -> str:
        """The CAB name behind a node id."""
        if node_id not in self._by_id:
            raise AddressError(f"unknown node id {node_id}")
        return self._by_id[node_id]

    def ip_of(self, node_id: int) -> int:
        """The IPv4 address (as int) of a node id."""
        if node_id not in self._ip_by_id:
            raise AddressError(f"no IP for node id {node_id}")
        return self._ip_by_id[node_id]

    def ip_of_name(self, name: str) -> int:
        """The IPv4 address (as int) of a CAB name."""
        return self.ip_of(self.node_id(name))

    def node_for_ip(self, ip: int) -> int:
        """The node id owning an IPv4 address."""
        if ip not in self._id_by_ip:
            raise AddressError(f"no node with IP {format_ip(ip)}")
        return self._id_by_ip[ip]

    def route_to(self, src_name: str, dst_node_id: int) -> tuple:
        """Source route from a CAB to a node id.

        A group address (see :mod:`repro.hub.groups`) resolves to the
        sender's fan-out tree instead of a flat port list; the fabric
        replicates such frames at the crossbars.
        """
        if self.network.groups.is_group(dst_node_id):
            return self.network.groups.fanout_tree(src_name, dst_node_id)
        return self.network.route_for(src_name, self.name_of(dst_node_id))
