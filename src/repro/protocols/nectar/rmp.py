"""RMP: the Nectar reliable message protocol (a simple stop-and-wait).

One message is outstanding per channel at a time; the receiver acknowledges
each message, and the sender retransmits on timeout.  RMP does no software
checksum — it relies on the CRC implemented by the CAB hardware (corrupted
frames never reach the protocol: the datalink drops them and the sender's
timeout recovers).  That is exactly why RMP reaches ~90 Mbit/s CAB-to-CAB in
Figure 7 while TCP pays a per-byte software checksum cost.

ACK processing happens at interrupt time (it only wakes the waiting sender);
data delivery also happens at interrupt time, straight into the bound user
mailbox.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional, Union

from repro.cab.cpu import Compute
from repro.errors import ProtocolError
from repro.protocols.headers import (
    NECTAR_KIND_ACK,
    NECTAR_KIND_DATA,
    NECTAR_PROTO_RMP,
    NectarTransportHeader,
)
from repro.protocols.nectar.transport import NectarTransportLayer
from repro.runtime.kernel import Runtime
from repro.runtime.mailbox import Mailbox, Message
from repro.units import ms

__all__ = ["RMPChannel", "RMPProtocol"]

#: Retransmission timeout.  The network RTT is tens to hundreds of
#: microseconds, so a couple of milliseconds is generously safe.
RMP_RTO_NS = ms(2)
#: Give up after this many transmissions of one message.
RMP_MAX_TRIES = 10


class RMPChannel:
    """One reliable point-to-point message stream."""

    def __init__(self, rmp: "RMPProtocol", local_port: int, remote_node: int, remote_port: int):
        self.rmp = rmp
        self.local_port = local_port
        self.remote_node = remote_node
        self.remote_port = remote_port
        # Sender state (stop-and-wait: one message outstanding).
        self.send_seq = 0
        self.acked_seq: Optional[int] = None
        self.send_mutex = rmp.runtime.mutex(f"rmp{local_port}-send")
        self.ack_mutex = rmp.runtime.mutex(f"rmp{local_port}-ackwait")
        self.ack_cond = rmp.runtime.condition(f"rmp{local_port}-ack")
        # Receiver state.
        self.recv_seq = 0
        self.deliver_mailbox: Optional[Mailbox] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RMPChannel {self.local_port}->{self.remote_node}:{self.remote_port} "
            f"seq={self.send_seq}>"
        )


class RMPProtocol:
    """The reliable message protocol of one CAB."""

    def __init__(self, transport: NectarTransportLayer):
        self.transport = transport
        self.runtime: Runtime = transport.runtime
        self.costs = self.runtime.costs
        self._channels: Dict[int, RMPChannel] = {}
        self.stats = self.runtime.stats
        transport.register(NECTAR_PROTO_RMP, self._input)

    # -- channel management ------------------------------------------------------

    def open(
        self,
        local_port: int,
        remote_node: int,
        remote_port: int,
        deliver_mailbox: Optional[Mailbox] = None,
    ) -> RMPChannel:
        """Open a channel endpoint.

        ``deliver_mailbox`` receives incoming messages on ``local_port``.
        """
        if local_port in self._channels:
            raise ProtocolError(f"RMP port {local_port} already open")
        channel = RMPChannel(self, local_port, remote_node, remote_port)
        channel.deliver_mailbox = deliver_mailbox
        self._channels[local_port] = channel
        return channel

    def close(self, channel: RMPChannel) -> None:
        """Close a channel endpoint (its port becomes free)."""
        self._channels.pop(channel.local_port, None)

    # -- sending ---------------------------------------------------------------

    def send(
        self,
        channel: RMPChannel,
        data: Union[bytes, Message],
        charge_copy: bool = True,
    ) -> Generator:
        """Thread-context: reliably send one message (blocks until ACKed).

        ``data`` is raw bytes or a Message laid out as
        ``[28-byte header room][payload]``.  ``charge_copy=False`` models a
        sender whose payload already resides in CAB data memory (the
        throughput benchmarks transmit from a resident buffer, as the
        paper's measurements did).
        """
        tracer = self.runtime.tracer
        track = None
        if tracer.sink is not None:
            label = self.runtime.cpu.context_label
            track = label if label is not None else f"{self.runtime.cpu.name}/ext"
            tracer.begin("rmp", "send", {"port": channel.local_port}, track=track)
        try:
            yield from self._send_locked(channel, data, charge_copy)
        finally:
            if track is not None:
                tracer.end("rmp", "send", track=track)

    def _send_locked(
        self,
        channel: RMPChannel,
        data: Union[bytes, Message],
        charge_copy: bool,
    ) -> Generator:
        ops = self.runtime.ops
        yield from ops.lock(channel.send_mutex)
        yield Compute(self.costs.nectar_rmp_ns)
        if isinstance(data, Message):
            msg = data
            payload = None
        else:
            payload = data
            msg = None
        seq = channel.send_seq
        channel.send_seq += 1
        tries = 0
        acked = False
        while tries < RMP_MAX_TRIES and not acked:
            tries += 1
            header = NectarTransportHeader(
                protocol=NECTAR_PROTO_RMP,
                kind=NECTAR_KIND_DATA,
                seq=seq,
                src_port=channel.local_port,
                dst_node=channel.remote_node,
                dst_port=channel.remote_port,
            )
            if msg is not None and tries == 1:
                # Zero-copy path: the message buffer is consumed by the send.
                # Keep the payload bytes for possible retransmission.
                payload = msg.read(NectarTransportHeader.SIZE)
                yield from self.transport.send_message(header, msg)
                msg = None
            else:
                packet = yield from self._build_packet(header, payload, charge_copy)
                yield from self.transport.send_message(header, packet)
            self.stats.add("rmp_data_out")
            if tries > 1:
                self.stats.add("rmp_retransmits")
                tracer = self.runtime.tracer
                if tracer.sink is not None:
                    tracer.emit("rmp", "retransmit", {"seq": seq, "try": tries})
            acked = yield from self._await_ack(channel, seq)
        yield from ops.unlock(channel.send_mutex)
        if not acked:
            raise ProtocolError(
                f"RMP: no ACK for seq {seq} after {RMP_MAX_TRIES} tries"
            )

    def _build_packet(
        self, header: NectarTransportHeader, payload: bytes, charge_copy: bool = True
    ) -> Generator:
        packet = yield from self.transport.input_mailbox.begin_put(
            NectarTransportHeader.SIZE + len(payload)
        )
        if charge_copy:
            yield Compute(self.costs.cab_memcpy_ns(len(payload)))
        packet.write(NectarTransportHeader.SIZE, payload)
        return packet

    def _await_ack(self, channel: RMPChannel, seq: int) -> Generator:
        ops = self.runtime.ops
        mutex = channel.ack_mutex
        yield from ops.lock(mutex)
        while channel.acked_seq is None or channel.acked_seq < seq:
            signalled = yield from ops.timed_wait(channel.ack_cond, mutex, RMP_RTO_NS)
            if not signalled:
                yield from ops.unlock(mutex)
                return False
        yield from ops.unlock(mutex)
        return True

    # -- receiving (interrupt context) -----------------------------------------------

    def _input(self, msg: Message, header: NectarTransportHeader) -> Generator:
        channel = self._channels.get(header.dst_port)
        if channel is None:
            self.stats.add("rmp_no_port")
            yield from self.transport.input_mailbox.iabort_put(msg)
            return
        yield Compute(self.costs.nectar_rmp_ns)
        if header.kind == NECTAR_KIND_ACK:
            yield from self.transport.input_mailbox.iabort_put(msg)
            if channel.acked_seq is None or header.seq > channel.acked_seq:
                channel.acked_seq = header.seq
            self.runtime.ops.signal_nocost(channel.ack_cond)
            self.stats.add("rmp_acks_in")
            return
        if header.kind != NECTAR_KIND_DATA:
            self.stats.add("rmp_malformed")
            yield from self.transport.input_mailbox.iabort_put(msg)
            return
        # Data: ACK everything up to the highest in-order sequence.
        if header.seq == channel.recv_seq:
            channel.recv_seq += 1
            msg.trim_front(NectarTransportHeader.SIZE)
            self.stats.add("rmp_data_in")
            if channel.deliver_mailbox is not None:
                yield from self.transport.input_mailbox.ienqueue(
                    msg, channel.deliver_mailbox
                )
            else:
                yield from self.transport.input_mailbox.iabort_put(msg)
        elif header.seq < channel.recv_seq:
            # Duplicate (our ACK was lost): drop, re-ACK below.
            self.stats.add("rmp_duplicates")
            yield from self.transport.input_mailbox.iabort_put(msg)
        else:
            # Future sequence: a restarted peer or skipped-ahead sender.
            # Stop-and-wait never produces this in normal operation; drop
            # it and, if nothing was ever delivered, stay silent — there
            # is no previous sequence to re-ACK (the header cannot even
            # encode one), and the sender's bounded retry gives up with a
            # ProtocolError rather than retransmitting forever.
            self.stats.add("rmp_out_of_window")
            yield from self.transport.input_mailbox.iabort_put(msg)
            if channel.recv_seq == 0:
                return
        ack = NectarTransportHeader(
            protocol=NECTAR_PROTO_RMP,
            kind=NECTAR_KIND_ACK,
            seq=channel.recv_seq - 1,
            src_port=channel.local_port,
            dst_node=header.src_node,
            dst_port=header.src_port,
        )
        self.stats.add("rmp_acks_out")
        yield from self.transport.send_control(ack)
