"""The Nectar request-response protocol: the transport for client-server RPC.

A client sends a REQUEST and blocks for the matching RESPONSE (retrying on
timeout); a server binds a port to a mailbox, services requests from it, and
answers with :meth:`RequestResponseProtocol.respond`.  Servers keep a small
cache of recent responses so a duplicated request (after a lost response) is
answered without re-executing the handler — the at-most-once behaviour an
RPC layer wants from its transport.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Generator, Optional, Tuple

from repro.cab.cpu import Compute
from repro.errors import ProtocolError
from repro.protocols.headers import (
    NECTAR_KIND_REQUEST,
    NECTAR_KIND_RESPONSE,
    NECTAR_PROTO_REQRESP,
    NectarTransportHeader,
)
from repro.protocols.nectar.transport import NectarTransportLayer
from repro.runtime.kernel import Runtime
from repro.runtime.mailbox import Mailbox, Message
from repro.units import ms

__all__ = ["RequestResponseProtocol"]

RPC_RTO_NS = ms(5)
RPC_MAX_TRIES = 5
#: Responses remembered per server port for duplicate suppression.
RESPONSE_CACHE_SIZE = 64


class _PendingCall:
    """Client-side state for one outstanding request."""

    def __init__(self, runtime: Runtime, seq: int):
        self.seq = seq
        self.response: Optional[bytes] = None
        self.mutex = runtime.mutex(f"rpc-call-{seq}")
        self.cond = runtime.condition(f"rpc-call-{seq}")


class RequestResponseProtocol:
    """The request-response transport of one CAB."""

    def __init__(self, transport: NectarTransportLayer):
        self.transport = transport
        self.runtime: Runtime = transport.runtime
        self.costs = self.runtime.costs
        self.stats = self.runtime.stats
        self._next_seq = 1
        self._next_client_port = 0x4000_0000
        self._pending: Dict[Tuple[int, int], _PendingCall] = {}  # (client_port, seq)
        self._server_ports: Dict[int, Mailbox] = {}
        self._response_cache: Dict[int, OrderedDict] = {}
        transport.register(NECTAR_PROTO_REQRESP, self._input)

    # -- server side ---------------------------------------------------------

    def serve(self, port: int, request_mailbox: Mailbox) -> None:
        """Bind a server port: requests are delivered (with their transport
        header left in place) into ``request_mailbox``."""
        if port in self._server_ports:
            raise ProtocolError(f"request-response port {port} already served")
        self._server_ports[port] = request_mailbox
        self._response_cache[port] = OrderedDict()

    def respond(
        self, request_header: NectarTransportHeader, data: bytes
    ) -> Generator:
        """Thread-context: answer a request (the header names the client)."""
        yield Compute(self.costs.nectar_reqresp_ns)
        port = request_header.dst_port
        cache = self._response_cache.get(port)
        if cache is not None:
            key = (request_header.src_node, request_header.src_port, request_header.seq)
            cache[key] = data
            while len(cache) > RESPONSE_CACHE_SIZE:
                cache.popitem(last=False)
        yield from self._send_response(request_header, data)

    def _send_response(
        self, request_header: NectarTransportHeader, data: bytes
    ) -> Generator:
        msg = yield from self.transport.input_mailbox.begin_put(
            NectarTransportHeader.SIZE + len(data)
        )
        yield Compute(self.costs.cab_memcpy_ns(len(data)))
        msg.write(NectarTransportHeader.SIZE, data)
        header = NectarTransportHeader(
            protocol=NECTAR_PROTO_REQRESP,
            kind=NECTAR_KIND_RESPONSE,
            seq=request_header.seq,
            src_port=request_header.dst_port,
            dst_node=request_header.src_node,
            dst_port=request_header.src_port,
        )
        self.stats.add("rpc_responses_out")
        yield from self.transport.send_message(header, msg)

    # -- client side ----------------------------------------------------------

    def allocate_client_port(self) -> int:
        """A unique reply port for one client."""
        port = self._next_client_port
        self._next_client_port += 1
        return port

    def request(
        self,
        client_port: int,
        dst_node: int,
        dst_port: int,
        data: bytes,
        timeout_ns: int = RPC_RTO_NS,
    ) -> Generator:
        """Thread-context: send a request, block for the response bytes."""
        ops = self.runtime.ops
        yield Compute(self.costs.nectar_reqresp_ns)
        seq = self._next_seq
        self._next_seq += 1
        call = _PendingCall(self.runtime, seq)
        self._pending[(client_port, seq)] = call
        tries = 0
        try:
            while tries < RPC_MAX_TRIES:
                tries += 1
                if tries > 1:
                    self.stats.add("rpc_retries")
                msg = yield from self.transport.input_mailbox.begin_put(
                    NectarTransportHeader.SIZE + len(data)
                )
                yield Compute(self.costs.cab_memcpy_ns(len(data)))
                msg.write(NectarTransportHeader.SIZE, data)
                header = NectarTransportHeader(
                    protocol=NECTAR_PROTO_REQRESP,
                    kind=NECTAR_KIND_REQUEST,
                    seq=seq,
                    src_port=client_port,
                    dst_node=dst_node,
                    dst_port=dst_port,
                )
                self.stats.add("rpc_requests_out")
                yield from self.transport.send_message(header, msg)
                yield from ops.lock(call.mutex)
                while call.response is None:
                    signalled = yield from ops.timed_wait(
                        call.cond, call.mutex, timeout_ns
                    )
                    if not signalled:
                        break
                response = call.response
                yield from ops.unlock(call.mutex)
                if response is not None:
                    return response
            raise ProtocolError(
                f"RPC request to node {dst_node} port {dst_port} timed out "
                f"after {RPC_MAX_TRIES} tries"
            )
        finally:
            del self._pending[(client_port, seq)]

    # -- receive demux (interrupt context) ----------------------------------------

    def _input(self, msg: Message, header: NectarTransportHeader) -> Generator:
        yield Compute(self.costs.nectar_reqresp_ns)
        if header.kind == NECTAR_KIND_REQUEST:
            yield from self._input_request(msg, header)
        elif header.kind == NECTAR_KIND_RESPONSE:
            yield from self._input_response(msg, header)
        else:
            self.stats.add("rpc_malformed")
            yield from self.transport.input_mailbox.iabort_put(msg)

    def _input_request(self, msg: Message, header: NectarTransportHeader) -> Generator:
        mailbox = self._server_ports.get(header.dst_port)
        if mailbox is None:
            self.stats.add("rpc_no_port")
            yield from self.transport.input_mailbox.iabort_put(msg)
            return
        cache = self._response_cache[header.dst_port]
        key = (header.src_node, header.src_port, header.seq)
        if key in cache:
            # Duplicate request: replay the cached response (still at
            # interrupt time) instead of re-running the server.
            self.stats.add("rpc_duplicate_requests")
            yield from self.transport.input_mailbox.iabort_put(msg)
            yield from self._replay_response(header, cache[key])
            return
        self.stats.add("rpc_requests_in")
        # Deliver with the transport header in place so the server can reply.
        yield from self.transport.input_mailbox.ienqueue(msg, mailbox)

    def _replay_response(
        self, request_header: NectarTransportHeader, data: bytes
    ) -> Generator:
        msg = yield from self.transport.input_mailbox.ibegin_put(
            NectarTransportHeader.SIZE + len(data)
        )
        if msg is None:
            return
        yield Compute(self.costs.cab_memcpy_ns(len(data)))
        msg.write(NectarTransportHeader.SIZE, data)
        header = NectarTransportHeader(
            protocol=NECTAR_PROTO_REQRESP,
            kind=NECTAR_KIND_RESPONSE,
            seq=request_header.seq,
            src_port=request_header.dst_port,
            dst_node=request_header.src_node,
            dst_port=request_header.src_port,
        )
        yield from self.transport.send_message(header, msg)

    def _input_response(self, msg: Message, header: NectarTransportHeader) -> Generator:
        call = self._pending.get((header.dst_port, header.seq))
        if call is None:
            self.stats.add("rpc_orphan_responses")
            yield from self.transport.input_mailbox.iabort_put(msg)
            return
        data = msg.read(NectarTransportHeader.SIZE)
        yield from self.transport.input_mailbox.iabort_put(msg)
        call.response = data
        self.stats.add("rpc_responses_in")
        self.runtime.ops.signal_nocost(call.cond)
