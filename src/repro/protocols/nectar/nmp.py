"""NMP: NACK-oriented reliable multicast over the Nectar fabric.

The Nectar Message-multicast Protocol sends sequenced DATA frames to a
*group address* (see :mod:`repro.hub.groups`): the sender emits one frame
and the HUB crossbars replicate it along the group's fan-out tree.  Loss
recovery is receiver-driven in the NORM style (RFC 5740's shape):

* Each receiver delivers in order from ``next_seq`` and parks out-of-order
  arrivals in a bounded reorder window.  A sequence gap arms a *NACK timer*
  whose delay is ``NMP_NACK_BASE_NS + rank * NMP_NACK_STRIDE_NS`` — the
  deterministic analogue of NORM's randomized suppression backoff.  The
  lowest-ranked gapped member NACKs first; the sender's *repair* goes to
  the whole group, so higher-ranked members see the gap close before their
  timers fire and count a suppressed NACK instead of sending one.
* The sender keeps the last :data:`NMP_REPAIR_WINDOW` payloads (the
  half-open repair window ``(send_seq - window, send_seq]``) and answers
  NACKs with multicast REPAIR frames, rate-limited per sequence by a
  holdoff so a synchronized NACK burst triggers one repair, not N.
* Tail loss cannot arm a gap timer, so :meth:`NMPProtocol.flush` closes a
  stream NORM-watermark style: the sender multicasts SYNC carrying the
  highest sequence and retransmits it on timeout until every member has
  unicast a SYNC_ACK at or above the watermark (receivers learn the
  watermark, NACK their missing tail, and ACK once delivery reaches it).

State on both sides is bounded: the sender holds one repair window and a
per-member sync set, the receiver one reorder window; everything else is
counters.  Delivery to each member is exactly-once and in-order by
construction (the ``next_seq``/window dedup), which the 20-seed fault
campaigns assert end to end.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional, Tuple

from repro.cab.cpu import Compute
from repro.errors import ProtocolError
from repro.protocols.headers import (
    NECTAR_KIND_DATA,
    NECTAR_KIND_NACK,
    NECTAR_KIND_REPAIR,
    NECTAR_KIND_SYNC,
    NECTAR_KIND_SYNC_ACK,
    NECTAR_PROTO_NMP,
    NectarTransportHeader,
)
from repro.protocols.nectar.transport import NectarTransportLayer
from repro.runtime.kernel import Runtime
from repro.runtime.mailbox import Mailbox, Message
from repro.units import ms, us

__all__ = ["NMPProtocol", "NMPReceiver", "NMPSender"]

#: Sender repair window: payloads retained for retransmission.
NMP_REPAIR_WINDOW = 64
#: Receiver reorder window: out-of-order frames parked awaiting repair.
NMP_RECV_WINDOW = 64
#: Base NACK-timer delay once a gap is detected.
NMP_NACK_BASE_NS = us(150)
#: Extra delay per member rank: the deterministic suppression stagger.
#: Must exceed one NACK+repair round trip (~350us under load on the
#: reference fabric) plus the spread in gap-detection times across
#: members, so the first NACKer's repair reaches the rest of the group
#: before their timers fire.
NMP_NACK_STRIDE_NS = us(500)
#: Re-NACK a still-open gap after this long.
NMP_NACK_RTO_NS = ms(1)
#: Sender ignores further NACKs for a sequence this soon after repairing
#: it (must stay below NMP_NACK_RTO_NS or lost repairs become permanent).
NMP_REPAIR_HOLDOFF_NS = us(300)
#: SYNC (watermark) retransmission timeout during flush.
NMP_SYNC_RTO_NS = ms(2)
#: Give up flushing after this many SYNC rounds.
NMP_MAX_TRIES = 10


class NMPSender:
    """Sender-side state of one multicast stream (one group port)."""

    def __init__(
        self, nmp: "NMPProtocol", group_id: int, port: int, members: Tuple[int, ...]
    ):
        self.nmp = nmp
        self.group_id = group_id
        self.port = port
        #: Node ids of the group members (the SYNC_ACK roll call).
        self.members = members
        self.send_seq = 0
        #: The half-open repair window: seq -> payload bytes.
        self.window: Dict[int, bytes] = {}
        #: Last repair emission per sequence (NACK-burst holdoff).
        self.repair_at: Dict[int, int] = {}
        #: Flush state: watermark awaiting SYNC_ACKs from ``synced``.
        self.watermark = -1
        self.synced: set = set()
        self.mutex = nmp.runtime.mutex(f"nmp{port}-send")
        self.sync_mutex = nmp.runtime.mutex(f"nmp{port}-syncwait")
        self.sync_cond = nmp.runtime.condition(f"nmp{port}-sync")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<NMPSender port={self.port} group=0x{self.group_id:x} "
            f"seq={self.send_seq}>"
        )


class NMPReceiver:
    """Receiver-side state of one group membership (one group port)."""

    def __init__(
        self,
        nmp: "NMPProtocol",
        group_id: int,
        port: int,
        rank: int,
        deliver_mailbox: Mailbox,
    ):
        self.nmp = nmp
        self.group_id = group_id
        self.port = port
        #: This member's index in the group: its NACK-timer stagger.
        self.rank = rank
        self.deliver_mailbox = deliver_mailbox
        #: Next sequence to deliver (everything below is done).
        self.next_seq = 0
        #: Out-of-order arrivals parked until the gap below them closes.
        self.pending: Dict[int, Message] = {}
        #: Highest sequence known to exist (arrivals and SYNC watermarks).
        self.highest = -1
        #: Sender's flush watermark, and the highest watermark we ACKed.
        self.watermark = -1
        self.acked_watermark = -1
        #: Learned from the first frame; NACK/SYNC_ACK destination.
        self.sender_node: Optional[int] = None
        self.open = True
        self.mutex = nmp.runtime.mutex(f"nmp{port}-recv")
        self.cond = nmp.runtime.condition(f"nmp{port}-gap")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<NMPReceiver port={self.port} group=0x{self.group_id:x} "
            f"rank={self.rank} next={self.next_seq}>"
        )


class NMPProtocol:
    """The NACK-oriented reliable multicast protocol of one CAB."""

    def __init__(self, transport: NectarTransportLayer):
        self.transport = transport
        self.runtime: Runtime = transport.runtime
        self.costs = self.runtime.costs
        self.stats = self.runtime.stats
        self._senders: Dict[int, NMPSender] = {}
        self._receivers: Dict[Tuple[int, int], NMPReceiver] = {}
        transport.register(NECTAR_PROTO_NMP, self._input)

    # -- session management ------------------------------------------------------

    def open_sender(
        self, group_id: int, port: int, members: Tuple[int, ...]
    ) -> NMPSender:
        """Open the sending end of a multicast stream on a group port."""
        if port in self._senders:
            raise ProtocolError(f"NMP sender port {port} already open")
        session = NMPSender(self, group_id, port, tuple(members))
        self._senders[port] = session
        return session

    def join(
        self, group_id: int, port: int, rank: int, deliver_mailbox: Mailbox
    ) -> NMPReceiver:
        """Join a group as receiver ``rank``; starts the gap-repair thread."""
        key = (group_id, port)
        if key in self._receivers:
            raise ProtocolError(
                f"NMP group 0x{group_id:x} port {port} already joined"
            )
        session = NMPReceiver(self, group_id, port, rank, deliver_mailbox)
        self._receivers[key] = session
        self.runtime.fork_system(
            self._repair_loop(session), name=f"nmp-gap:{port}"
        )
        return session

    def leave(self, session: NMPReceiver) -> None:
        """Tear down a receiver membership (frees any parked messages)."""
        session.open = False
        self._receivers.pop((session.group_id, session.port), None)
        self.runtime.ops.signal_nocost(session.cond)

    # -- sending (thread context) ------------------------------------------------

    def send(self, session: NMPSender, data: bytes) -> Generator:
        """Reliably multicast one message (returns once it is on the wire;
        delivery assurance comes from :meth:`flush`)."""
        ops = self.runtime.ops
        yield from ops.lock(session.mutex)
        try:
            yield Compute(self.costs.nectar_nmp_ns)
            seq = session.send_seq
            session.send_seq += 1
            session.window[seq] = data
            session.window.pop(seq - NMP_REPAIR_WINDOW, None)
            session.repair_at.pop(seq - NMP_REPAIR_WINDOW, None)
            header = NectarTransportHeader(
                protocol=NECTAR_PROTO_NMP,
                kind=NECTAR_KIND_DATA,
                seq=seq,
                src_port=session.port,
                dst_node=session.group_id,
                dst_port=session.port,
            )
            packet = yield from self.transport.input_mailbox.begin_put(
                NectarTransportHeader.SIZE + len(data)
            )
            yield Compute(self.costs.cab_memcpy_ns(len(data)))
            packet.write(NectarTransportHeader.SIZE, data)
            yield from self.transport.send_message(header, packet)
            self.stats.add("nmp_data_out")
        finally:
            yield from ops.unlock(session.mutex)

    def flush(self, session: NMPSender) -> Generator:
        """Close the stream's tail: SYNC until every member ACKs the
        watermark (NORM's watermark flush).  Raises ProtocolError when a
        member stays silent for :data:`NMP_MAX_TRIES` rounds."""
        if session.send_seq == 0:
            return
        ops = self.runtime.ops
        watermark = session.send_seq - 1
        yield from ops.lock(session.sync_mutex)
        try:
            if session.watermark != watermark:
                session.watermark = watermark
                session.synced = set()
            tries = 0
            while len(session.synced) < len(session.members):
                if tries >= NMP_MAX_TRIES:
                    missing = len(session.members) - len(session.synced)
                    raise ProtocolError(
                        f"NMP flush: {missing} member(s) never ACKed "
                        f"watermark {watermark} after {NMP_MAX_TRIES} SYNCs"
                    )
                tries += 1
                header = NectarTransportHeader(
                    protocol=NECTAR_PROTO_NMP,
                    kind=NECTAR_KIND_SYNC,
                    seq=watermark,
                    src_port=session.port,
                    dst_node=session.group_id,
                    dst_port=session.port,
                )
                yield from self.transport.send_control(header)
                self.stats.add("nmp_syncs_out")
                deadline = self.runtime.sim.now + NMP_SYNC_RTO_NS
                while len(session.synced) < len(session.members):
                    remaining = deadline - self.runtime.sim.now
                    if remaining <= 0:
                        break
                    yield from ops.timed_wait(
                        session.sync_cond, session.sync_mutex, remaining
                    )
        finally:
            yield from ops.unlock(session.sync_mutex)

    # -- the receiver's gap/NACK timer thread --------------------------------------

    def nack_delay_ns(self, rank: int) -> int:
        """This member's deterministic NACK suppression delay."""
        return NMP_NACK_BASE_NS + rank * NMP_NACK_STRIDE_NS

    def _gap(self, session: NMPReceiver) -> bool:
        return session.open and session.next_seq <= session.highest

    def _repair_loop(self, session: NMPReceiver) -> Generator:
        """System thread: arm NACK timers for gaps, suppress on repair.

        Runs for the life of the membership; parks on the condition when
        delivery is gapless, so an idle group costs no events.
        """
        ops = self.runtime.ops
        sim = self.runtime.sim
        yield from ops.lock(session.mutex)
        while session.open:
            if not self._gap(session):
                yield from ops.wait(session.cond, session.mutex)
                continue
            first = session.next_seq
            deadline = sim.now + self.nack_delay_ns(session.rank)
            while session.open and session.next_seq == first:
                remaining = deadline - sim.now
                if remaining <= 0:
                    break
                yield from ops.timed_wait(
                    session.cond, session.mutex, remaining
                )
            if not session.open:
                break
            if session.next_seq > first:
                # A repair (or the reordered original) closed the head
                # gap before our timer fired: the NACK is suppressed —
                # someone lower-ranked spoke for us.
                self.stats.add("nmp_nacks_suppressed")
                continue
            yield from self._send_nack(session)
            # Holdoff: give the repair a round trip before re-NACKing.
            deadline = sim.now + NMP_NACK_RTO_NS
            while session.open and session.next_seq == first:
                remaining = deadline - sim.now
                if remaining <= 0:
                    break
                yield from ops.timed_wait(
                    session.cond, session.mutex, remaining
                )
        yield from ops.unlock(session.mutex)

    def _send_nack(self, session: NMPReceiver) -> Generator:
        if session.sender_node is None:
            return
        start = session.next_seq
        count = 0
        seq = start
        while (
            seq <= session.highest
            and seq not in session.pending
            and count < NMP_RECV_WINDOW
        ):
            count += 1
            seq += 1
        yield Compute(self.costs.nectar_nmp_ns)
        header = NectarTransportHeader(
            protocol=NECTAR_PROTO_NMP,
            kind=NECTAR_KIND_NACK,
            seq=start,
            flags=count,
            src_port=session.port,
            dst_node=session.sender_node,
            dst_port=session.port,
        )
        yield from self.transport.send_control(header)
        self.stats.add("nmp_nacks_out")

    # -- receiving (interrupt context) ---------------------------------------------

    def _input(self, msg: Message, header: NectarTransportHeader) -> Generator:
        kind = header.kind
        if kind in (NECTAR_KIND_NACK, NECTAR_KIND_SYNC_ACK):
            yield from self._sender_input(msg, header)
            return
        session = self._receivers.get((header.dst_node, header.dst_port))
        if session is None:
            self.stats.add("nmp_no_port")
            yield from self.transport.input_mailbox.iabort_put(msg)
            return
        yield Compute(self.costs.nectar_nmp_ns)
        session.sender_node = header.src_node
        if kind == NECTAR_KIND_SYNC:
            yield from self.transport.input_mailbox.iabort_put(msg)
            yield from self._recv_sync(session, header.seq)
            return
        if kind not in (NECTAR_KIND_DATA, NECTAR_KIND_REPAIR):
            self.stats.add("nmp_malformed")
            yield from self.transport.input_mailbox.iabort_put(msg)
            return
        yield from self._recv_data(session, msg, header)

    def _recv_data(
        self, session: NMPReceiver, msg: Message, header: NectarTransportHeader
    ) -> Generator:
        seq = header.seq
        if seq < session.next_seq or seq in session.pending:
            self.stats.add("nmp_duplicates")
            yield from self.transport.input_mailbox.iabort_put(msg)
            return
        if seq >= session.next_seq + NMP_RECV_WINDOW:
            self.stats.add("nmp_out_of_window")
            yield from self.transport.input_mailbox.iabort_put(msg)
            return
        self.stats.add(
            "nmp_repairs_in" if header.kind == NECTAR_KIND_REPAIR else "nmp_data_in"
        )
        session.highest = max(session.highest, seq)
        msg.trim_front(NectarTransportHeader.SIZE)
        if seq == session.next_seq:
            session.next_seq += 1
            yield from self.transport.input_mailbox.ienqueue(
                msg, session.deliver_mailbox
            )
            while session.next_seq in session.pending:
                parked = session.pending.pop(session.next_seq)
                session.next_seq += 1
                yield from self.transport.input_mailbox.ienqueue(
                    parked, session.deliver_mailbox
                )
        else:
            session.pending[seq] = msg
        # Wake the gap thread: either a new gap just opened or the head
        # advanced (cancelling / rescheduling any armed NACK timer).
        self.runtime.ops.signal_nocost(session.cond)
        if (
            session.watermark >= 0
            and session.next_seq > session.watermark
            and session.acked_watermark < session.watermark
        ):
            yield from self._send_sync_ack(session, session.watermark)

    def _recv_sync(self, session: NMPReceiver, watermark: int) -> Generator:
        self.stats.add("nmp_syncs_in")
        session.watermark = max(session.watermark, watermark)
        session.highest = max(session.highest, watermark)
        if session.next_seq > watermark:
            # Everything at or below the watermark already delivered:
            # (re-)ACK even if we ACKed before — the previous ACK may be
            # the very loss the sender is retrying around.
            yield from self._send_sync_ack(session, watermark)
        else:
            # The watermark proves a tail gap: arm the NACK timer.
            self.runtime.ops.signal_nocost(session.cond)

    def _send_sync_ack(self, session: NMPReceiver, watermark: int) -> Generator:
        if session.sender_node is None:
            return
        session.acked_watermark = max(session.acked_watermark, watermark)
        header = NectarTransportHeader(
            protocol=NECTAR_PROTO_NMP,
            kind=NECTAR_KIND_SYNC_ACK,
            seq=watermark,
            src_port=session.port,
            dst_node=session.sender_node,
            dst_port=session.port,
        )
        yield from self.transport.send_control(header)
        self.stats.add("nmp_sync_acks_out")

    # -- sender-side control input (interrupt context) -------------------------------

    def _sender_input(
        self, msg: Message, header: NectarTransportHeader
    ) -> Generator:
        yield from self.transport.input_mailbox.iabort_put(msg)
        session = self._senders.get(header.dst_port)
        if session is None:
            self.stats.add("nmp_no_port")
            return
        yield Compute(self.costs.nectar_nmp_ns)
        if header.kind == NECTAR_KIND_SYNC_ACK:
            self.stats.add("nmp_sync_acks_in")
            if header.seq >= session.watermark >= 0:
                session.synced.add(header.src_node)
                if len(session.synced) >= len(session.members):
                    self.runtime.ops.signal_nocost(session.sync_cond)
            return
        self.stats.add("nmp_nacks_in")
        start = header.seq
        count = max(1, header.flags)
        now = self.runtime.sim.now
        for seq in range(start, min(start + count, session.send_seq)):
            payload = session.window.get(seq)
            if payload is None:
                # Evicted from the repair window: unrecoverable for this
                # member.  Bounded state has a price; count it honestly.
                self.stats.add("nmp_repair_misses")
                continue
            last = session.repair_at.get(seq)
            if last is not None and now - last < NMP_REPAIR_HOLDOFF_NS:
                # A synchronized NACK burst for the same loss: one repair
                # is already in flight, skip the duplicates.
                self.stats.add("nmp_repairs_skipped")
                continue
            session.repair_at[seq] = now
            repair = NectarTransportHeader(
                protocol=NECTAR_PROTO_NMP,
                kind=NECTAR_KIND_REPAIR,
                seq=seq,
                src_port=session.port,
                dst_node=session.group_id,
                dst_port=session.port,
            )
            yield from self.transport.send_raw_message(repair, payload)
            self.stats.add("nmp_repairs_out")
