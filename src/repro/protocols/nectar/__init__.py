"""The Nectar-specific transport protocols (paper Sec. 4).

"The Nectar-specific protocols provide datagram, reliable message, and
request-response communication.  The reliable message protocol is a simple
stop-and-wait protocol, and the request-response protocol provides the
transport mechanism for client-server RPC calls."

None of them computes a software checksum — they rely on the CRC implemented
by the CAB hardware, which is why RMP outruns TCP in Figure 7.

Two protocols added on top of the paper's three prove its thesis that the
CAB runtime makes transports cheap to add: NMP (NACK-oriented reliable
multicast over HUB crossbar fan-out) and the CAB-resident collective
engine (barrier/broadcast trees run at interrupt time on the NIC).
"""

from repro.protocols.nectar.transport import NectarTransportLayer
from repro.protocols.nectar.collective import CollectiveEngine, CollectiveGroup
from repro.protocols.nectar.datagram import DatagramProtocol
from repro.protocols.nectar.nmp import NMPProtocol, NMPReceiver, NMPSender
from repro.protocols.nectar.rmp import RMPChannel, RMPProtocol
from repro.protocols.nectar.reqresp import RequestResponseProtocol

__all__ = [
    "CollectiveEngine",
    "CollectiveGroup",
    "DatagramProtocol",
    "NMPProtocol",
    "NMPReceiver",
    "NMPSender",
    "NectarTransportLayer",
    "RMPChannel",
    "RMPProtocol",
    "RequestResponseProtocol",
]
