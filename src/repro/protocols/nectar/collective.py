"""CAB-resident collectives: barrier and broadcast run by the NIC.

In the style of NIC-based collective protocols (Quadrics/Myrinet), the
collective state machine lives on the CAB, not the host: ARRIVE and
RELEASE packets are consumed and forwarded *at interrupt time* by the
CAB's protocol engine, and the host thread only sees barrier enter/exit
(a condition wait) or a broadcast payload appearing in a mailbox.

The fan-in/fan-out tree is derived from the group's member order: member
``rank`` has parent ``(rank - 1) // 2`` and children ``2*rank + 1`` /
``2*rank + 2``, a binary tree of depth ``floor(log2 N)`` — so an N-member
barrier completes in O(log N) CAB-local rounds regardless of fleet size.

Barrier protocol, per epoch ``e``:

* A leaf that enters the barrier sends ARRIVE(e) to its parent.  An
  interior member forwards ARRIVE(e) up once its own thread has entered
  *and* both children's ARRIVEs are in — whichever event completes the
  set triggers the send, thread- or interrupt-side.
* The root, complete, multiplies RELEASE(e) down the tree; each member
  forwards RELEASE to its children at interrupt time and wakes its
  blocked host thread.  Epoch bookkeeping is bounded: at most two epochs
  can be live per group (no member can enter ``e+1`` before RELEASE(e)).

Broadcast rides the same tree: the root sends the payload to its
children; each member forwards to its children at interrupt time, then
delivers into the group's broadcast mailbox.  Collectives assume a
fault-free fabric (use NMP when links are lossy).
"""

from __future__ import annotations

from typing import Dict, Generator, Tuple

from repro.cab.cpu import Compute
from repro.errors import ProtocolError
from repro.protocols.headers import (
    NECTAR_KIND_ARRIVE,
    NECTAR_KIND_BCAST,
    NECTAR_KIND_RELEASE,
    NECTAR_PROTO_COLL,
    NectarTransportHeader,
)
from repro.protocols.nectar.transport import NectarTransportLayer
from repro.runtime.kernel import Runtime
from repro.runtime.mailbox import Message

__all__ = ["CollectiveEngine", "CollectiveGroup", "tree_depth"]


def tree_depth(n_members: int) -> int:
    """Depth of the binary fan-in tree (the O(log N) round count)."""
    depth = 0
    rank = n_members - 1
    while rank > 0:
        rank = (rank - 1) // 2
        depth += 1
    return depth


class CollectiveGroup:
    """One CAB's membership in a collective group."""

    def __init__(
        self,
        engine: "CollectiveEngine",
        group_id: int,
        port: int,
        member_ids: Tuple[int, ...],
        rank: int,
    ):
        self.engine = engine
        self.group_id = group_id
        self.port = port
        self.member_ids = member_ids
        self.rank = rank
        self.parent = member_ids[(rank - 1) // 2] if rank > 0 else None
        self.children = tuple(
            member_ids[child]
            for child in (2 * rank + 1, 2 * rank + 2)
            if child < len(member_ids)
        )
        #: Barrier FSM state: local thread's epoch, child arrivals per
        #: epoch, highest epoch forwarded up, highest epoch released.
        self.local_epoch = 0
        self.arrivals: Dict[int, int] = {}
        self.ascended = 0
        self.release_epoch = 0
        self.mutex = engine.runtime.mutex(f"coll{port}-barrier")
        self.cond = engine.runtime.condition(f"coll{port}-release")
        #: Broadcast delivery: payloads land here in root-send order.
        self.bcast_mailbox = engine.runtime.mailbox(f"coll{port}-bcast")
        self.bcast_seq = 0

    @property
    def is_root(self) -> bool:
        return self.rank == 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CollectiveGroup 0x{self.group_id:x} rank={self.rank}/"
            f"{len(self.member_ids)} epoch={self.release_epoch}>"
        )


class CollectiveEngine:
    """The CAB-resident collective protocol engine of one node."""

    def __init__(self, transport: NectarTransportLayer):
        self.transport = transport
        self.runtime: Runtime = transport.runtime
        self.costs = self.runtime.costs
        self.stats = self.runtime.stats
        #: Keyed by group port: collective packets arrive unicast, so the
        #: port is the demux key (one group per port per CAB).
        self._groups: Dict[int, CollectiveGroup] = {}
        transport.register(NECTAR_PROTO_COLL, self._input)

    def create(
        self, group_id: int, port: int, member_ids: Tuple[int, ...], rank: int
    ) -> CollectiveGroup:
        """Declare this CAB's membership (same order on every member)."""
        if port in self._groups:
            raise ProtocolError(
                f"collective group 0x{group_id:x} port {port} already exists"
            )
        if not 0 <= rank < len(member_ids):
            raise ProtocolError(
                f"rank {rank} out of range for {len(member_ids)} members"
            )
        group = CollectiveGroup(self, group_id, port, tuple(member_ids), rank)
        self._groups[port] = group
        return group

    # -- barrier (host thread sees only enter/exit) --------------------------------

    def barrier(self, group: CollectiveGroup) -> Generator:
        """Thread-context: enter the barrier, return when released."""
        ops = self.runtime.ops
        yield Compute(self.costs.nectar_coll_ns)
        yield from ops.lock(group.mutex)
        epoch = group.local_epoch + 1
        group.local_epoch = epoch
        yield from ops.unlock(group.mutex)
        yield from self._try_complete(group, epoch)
        yield from ops.lock(group.mutex)
        while group.release_epoch < epoch:
            yield from ops.wait(group.cond, group.mutex)
        yield from ops.unlock(group.mutex)
        self.stats.add("coll_barriers")

    def _try_complete(self, group: CollectiveGroup, epoch: int) -> Generator:
        """Forward the fan-in once this member's arrival set for ``epoch``
        is complete.  Called from both the entering thread and the ARRIVE
        interrupt handler — whichever completes the set sends."""
        if (
            group.ascended >= epoch
            or group.local_epoch < epoch
            or group.arrivals.get(epoch, 0) < len(group.children)
        ):
            return
        group.ascended = epoch
        group.arrivals.pop(epoch, None)
        if group.is_root:
            yield from self._release(group, epoch)
        else:
            header = self._header(group, NECTAR_KIND_ARRIVE, epoch, group.parent)
            yield from self.transport.send_control(header)
            self.stats.add("coll_arrivals_out")

    def _release(self, group: CollectiveGroup, epoch: int) -> Generator:
        """Fan RELEASE(epoch) out to the children and wake the local thread."""
        group.release_epoch = max(group.release_epoch, epoch)
        for child in group.children:
            header = self._header(group, NECTAR_KIND_RELEASE, epoch, child)
            yield from self.transport.send_control(header)
            self.stats.add("coll_releases_out")
        self.runtime.ops.signal_nocost(group.cond)

    def _header(
        self, group: CollectiveGroup, kind: int, seq: int, dst_node: int
    ) -> NectarTransportHeader:
        return NectarTransportHeader(
            protocol=NECTAR_PROTO_COLL,
            kind=kind,
            seq=seq,
            flags=group.rank,
            src_port=group.port,
            dst_node=dst_node,
            dst_port=group.port,
        )

    # -- broadcast ------------------------------------------------------------------

    def broadcast(self, group: CollectiveGroup, payload: bytes) -> Generator:
        """Thread-context, root only: send one payload down the tree."""
        if not group.is_root:
            raise ProtocolError("only the root may broadcast")
        yield Compute(self.costs.nectar_coll_ns)
        seq = group.bcast_seq
        group.bcast_seq += 1
        for child in group.children:
            header = self._header(group, NECTAR_KIND_BCAST, seq, child)
            yield from self.transport.send_raw_message(header, payload)
            self.stats.add("coll_bcast_out")
        # The root's own copy: one local mailbox delivery.
        msg = yield from group.bcast_mailbox.begin_put(len(payload))
        yield from self.runtime.fill_message(msg, payload)
        yield from group.bcast_mailbox.end_put(msg)

    def receive_broadcast(self, group: CollectiveGroup) -> Generator:
        """Thread-context: block for the next broadcast payload (bytes)."""
        msg = yield from group.bcast_mailbox.begin_get()
        data = msg.read()
        yield Compute(self.costs.cab_memcpy_ns(msg.size))
        yield from group.bcast_mailbox.end_get(msg)
        return data

    # -- receiving (interrupt context) ----------------------------------------------

    def _input(self, msg: Message, header: NectarTransportHeader) -> Generator:
        group = self._groups.get(header.dst_port)
        if group is None:
            self.stats.add("coll_no_group")
            yield from self.transport.input_mailbox.iabort_put(msg)
            return
        yield Compute(self.costs.nectar_coll_ns)
        kind = header.kind
        epoch = header.seq
        if kind == NECTAR_KIND_ARRIVE:
            yield from self.transport.input_mailbox.iabort_put(msg)
            self.stats.add("coll_arrivals_in")
            group.arrivals[epoch] = group.arrivals.get(epoch, 0) + 1
            yield from self._try_complete(group, epoch)
            return
        if kind == NECTAR_KIND_RELEASE:
            yield from self.transport.input_mailbox.iabort_put(msg)
            self.stats.add("coll_releases_in")
            if epoch > group.release_epoch:
                yield from self._release(group, epoch)
            return
        if kind == NECTAR_KIND_BCAST:
            self.stats.add("coll_bcast_in")
            payload = msg.read(NectarTransportHeader.SIZE)
            for child in group.children:
                fwd = self._header(group, NECTAR_KIND_BCAST, epoch, child)
                yield from self.transport.send_raw_message(fwd, payload)
                self.stats.add("coll_bcast_out")
            msg.trim_front(NectarTransportHeader.SIZE)
            yield from self.transport.input_mailbox.ienqueue(
                msg, group.bcast_mailbox
            )
            return
        self.stats.add("coll_malformed")
        yield from self.transport.input_mailbox.iabort_put(msg)
