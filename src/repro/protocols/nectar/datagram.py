"""The Nectar datagram protocol: unreliable, lowest latency (Table 1).

Receive side runs entirely at interrupt time: the demux upcall trims the
transport header in place and enqueues the payload into the mailbox bound to
the destination port — no thread is scheduled on the receive path (which is
why, in the Fig. 6 breakdown, the receiving side is cheaper than the sending
side, where a CAB thread must be woken).

Send side: CAB threads call :meth:`send` directly; host processes place a
pre-framed packet in the send mailbox, whose contents a send thread
transmits (the host wakes it through the CAB signal queue).
"""

from __future__ import annotations

from typing import Dict, Generator, Optional, Union

from repro.cab.cpu import Compute
from repro.errors import ProtocolError
from repro.protocols.headers import (
    NECTAR_KIND_DATA,
    NECTAR_PROTO_DATAGRAM,
    NectarTransportHeader,
)
from repro.protocols.nectar.transport import NectarTransportLayer
from repro.runtime.kernel import Runtime
from repro.runtime.mailbox import Mailbox, Message

__all__ = ["DatagramProtocol"]


class DatagramProtocol:
    """Unreliable datagrams addressed to network-wide mailbox ports."""

    def __init__(self, transport: NectarTransportLayer):
        self.transport = transport
        self.runtime: Runtime = transport.runtime
        self.costs = self.runtime.costs
        self._ports: Dict[int, Mailbox] = {}
        self.stats = self.runtime.stats
        #: Host-facing send mailbox: messages are complete packets
        #: ([28-byte header][payload]) built by the Nectarine library.
        self.send_mailbox = self.runtime.mailbox("datagram-send")
        self.send_pending = self.runtime.condition("datagram-send-pending")
        transport.register(NECTAR_PROTO_DATAGRAM, self._input)
        self.runtime.fork_system(self._send_thread(), name="datagram-send")

    # -- binding -------------------------------------------------------------

    def bind(self, port: int, mailbox: Mailbox) -> None:
        """Deliver datagrams for ``port`` into ``mailbox``."""
        if port in self._ports:
            raise ProtocolError(f"datagram port {port} already bound")
        self._ports[port] = mailbox

    def unbind(self, port: int) -> None:
        """Stop delivering for ``port``."""
        if port not in self._ports:
            raise ProtocolError(f"datagram port {port} is not bound")
        del self._ports[port]

    # -- sending --------------------------------------------------------------

    def send(
        self,
        src_port: int,
        dst_node: int,
        dst_port: int,
        data: Union[bytes, Message],
    ) -> Generator:
        """Thread-context send (CAB-resident senders call this directly).

        ``data`` is either raw bytes (copied into a fresh packet) or a
        Message already laid out as ``[28-byte header room][payload]``.
        """
        yield Compute(self.costs.nectar_datagram_ns)
        if isinstance(data, Message):
            msg = data
        else:
            msg = yield from self.send_mailbox.begin_put(
                NectarTransportHeader.SIZE + len(data)
            )
            yield Compute(self.costs.cab_memcpy_ns(len(data)))
            msg.write(NectarTransportHeader.SIZE, data)
        header = NectarTransportHeader(
            protocol=NECTAR_PROTO_DATAGRAM,
            kind=NECTAR_KIND_DATA,
            src_port=src_port,
            dst_node=dst_node,
            dst_port=dst_port,
        )
        self.stats.add("datagram_out")
        yield from self.transport.send_message(header, msg)

    # -- the send thread (services host writers) -------------------------------

    def _send_thread(self) -> Generator:
        """Transmit packets that host processes queued in the send mailbox.

        The packet header (already written by the host) names the
        destination; this thread only stamps the source node and transmits.
        """
        while True:
            msg = yield from self.send_mailbox.begin_get()
            yield Compute(self.costs.nectar_datagram_ns)
            header = NectarTransportHeader.unpack(
                msg.view(0, NectarTransportHeader.SIZE)
            )
            self.stats.add("datagram_out")
            self.runtime.tracer.emit("datagram", "cab_send_start")
            yield from self.transport.send_message(header, msg)

    # -- receiving (interrupt context) --------------------------------------------

    def _input(self, msg: Message, header: NectarTransportHeader) -> Generator:
        mailbox = self._ports.get(header.dst_port)
        if mailbox is None:
            self.stats.add("datagram_no_port")
            yield from self.transport.input_mailbox.iabort_put(msg)
            return
        yield Compute(self.costs.nectar_datagram_ns)
        msg.trim_front(NectarTransportHeader.SIZE)
        self.stats.add("datagram_in")
        self.runtime.tracer.emit("datagram", "cab_deliver")
        yield from self.transport.input_mailbox.ienqueue(msg, mailbox)
