"""The shared demux layer for the Nectar-specific transports.

One datalink binding (type ``NC``) feeds all three Nectar transports; the
28-byte transport header is parsed at interrupt time and the packet is
handed to the registered sub-protocol, still without copying.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator

from repro.cab.cpu import Compute
from repro.errors import ProtocolError
from repro.protocols.datalink import Datalink, ProtocolBinding
from repro.protocols.headers import DL_TYPE_NECTAR, DatalinkHeader, NectarTransportHeader
from repro.runtime.kernel import Runtime
from repro.runtime.mailbox import Mailbox, Message

__all__ = ["NectarTransportLayer"]

#: Sub-protocol packet handler: (message, transport header) -> generator run
#: at interrupt time.  Must queue or free the message.
PacketHandler = Callable[[Message, NectarTransportHeader], Generator]


class NectarTransportLayer:
    """Demultiplexes Nectar transport packets to sub-protocols."""

    def __init__(self, runtime: Runtime, datalink: Datalink):
        self.runtime = runtime
        self.costs = runtime.costs
        self.datalink = datalink
        self.node_id = datalink.node_id
        self.input_mailbox = runtime.mailbox("nectar-input")
        self._handlers: Dict[int, PacketHandler] = {}
        self.stats = runtime.stats
        datalink.register(
            DL_TYPE_NECTAR,
            ProtocolBinding(
                input_mailbox=self.input_mailbox,
                header_bytes=NectarTransportHeader.SIZE,
                on_packet=self._demux,
            ),
        )

    def register(self, protocol: int, handler: PacketHandler) -> None:
        """Bind a sub-protocol's packet handler."""
        if protocol in self._handlers:
            raise ProtocolError(f"Nectar sub-protocol {protocol} already registered")
        self._handlers[protocol] = handler

    # -- send helpers shared by the sub-protocols ---------------------------------

    def send_message(self, header: NectarTransportHeader, msg: Message) -> Generator:
        """Thread-context: write the header into the message and transmit.

        ``msg`` is laid out as ``[28-byte header room][payload]``.
        """
        header.src_node = self.node_id
        header.length = msg.size - NectarTransportHeader.SIZE
        msg.write(0, header.pack())
        yield from self.datalink.send_message(
            header.dst_node, DL_TYPE_NECTAR, msg, free_after=True
        )

    def send_control(self, header: NectarTransportHeader) -> Generator:
        """Thread- or interrupt-context: transmit a header-only packet (ACKs)."""
        header.src_node = self.node_id
        header.length = 0
        yield from self.datalink.send_raw(
            header.dst_node, DL_TYPE_NECTAR, header.pack()
        )

    def send_raw_message(
        self, header: NectarTransportHeader, payload: bytes
    ) -> Generator:
        """Thread- or interrupt-context: transmit a header plus raw payload.

        The repair path: NMP repair retransmissions and collective
        broadcast forwards fire from interrupt handlers, where a mailbox
        allocation could block — so the payload rides as already-held raw
        bytes through :meth:`Datalink.send_raw` (one counted copy).
        """
        header.src_node = self.node_id
        header.length = len(payload)
        yield from self.datalink.send_raw(
            header.dst_node, DL_TYPE_NECTAR, header.pack() + payload
        )

    # -- receive demux (interrupt context) -------------------------------------------

    def _demux(self, msg: Message, dl_header: DatalinkHeader) -> Generator:
        if msg.size < NectarTransportHeader.SIZE:
            self.stats.add("nectar_malformed")
            yield from self.input_mailbox.iabort_put(msg)
            return
        try:
            header = NectarTransportHeader.unpack(
                msg.view(0, NectarTransportHeader.SIZE)
            )
        except ProtocolError:
            self.stats.add("nectar_malformed")
            yield from self.input_mailbox.iabort_put(msg)
            return
        handler = self._handlers.get(header.protocol)
        if handler is None:
            self.stats.add("nectar_unknown_protocol")
            yield from self.input_mailbox.iabort_put(msg)
            return
        yield from handler(msg, header)
