"""The Internet checksum (RFC 1071), computed for real.

TCP and UDP on the CAB compute this in software — the per-byte CPU cost is
the dominant difference between TCP/IP and the Nectar reliable message
protocol in Figure 7 ("The performance difference between TCP/IP and RMP is
mostly due to the cost of doing TCP checksums in software").  The *time* is
charged by the cost model; the *value* is computed here so corruption is
genuinely detected end-to-end.
"""

from __future__ import annotations

__all__ = ["internet_checksum", "ones_complement_add", "verify_checksum"]


def ones_complement_add(a: int, b: int) -> int:
    """16-bit one's-complement addition."""
    total = a + b
    return (total & 0xFFFF) + (total >> 16)


def internet_checksum(data: bytes, initial: int = 0) -> int:
    """RFC 1071 checksum of ``data`` (16-bit one's-complement sum, inverted).

    ``initial`` allows incremental computation over pseudo-header + payload.
    """
    total = initial
    length = len(data)
    # Sum 16-bit big-endian words.
    for index in range(0, length - 1, 2):
        total += (data[index] << 8) | data[index + 1]
    if length % 2:
        total += data[-1] << 8
    # Fold carries.
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def checksum_partial(data: bytes, initial: int = 0) -> int:
    """Raw (un-inverted) running sum, for multi-piece checksums."""
    total = initial
    length = len(data)
    for index in range(0, length - 1, 2):
        total += (data[index] << 8) | data[index + 1]
    if length % 2:
        total += data[-1] << 8
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total


def finish_checksum(partial: int) -> int:
    """Invert a running sum into the transmitted checksum value."""
    while partial >> 16:
        partial = (partial & 0xFFFF) + (partial >> 16)
    return (~partial) & 0xFFFF


def verify_checksum(data: bytes) -> bool:
    """True when ``data`` (with its checksum field in place) sums correctly.

    Per RFC 1071, summing a block that embeds a correct checksum yields
    0xFFFF (i.e. the inverted sum is zero).
    """
    return internet_checksum(data) == 0
