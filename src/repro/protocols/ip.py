"""IP on the CAB (paper Sec. 4.1).

Input processing happens at interrupt time.  The start-of-data upcall
performs the header sanity check (including the real header checksum) while
the rest of the packet is still arriving; the end-of-data upcall queues
fragments for reassembly and transfers complete datagrams to the input
mailbox of the appropriate higher-level protocol using the mailbox
``Enqueue`` operation, so no data is copied.

Output: higher protocols call :meth:`IPProtocol.output` with a header
*template* (a partially filled IP header), the message to send (laid out as
``[20 bytes of IP header space][transport header + payload]``), and a flag
saying whether the data area should be freed once sent.  IP fills in the
remaining header fields and hands the packet to the datalink layer,
fragmenting if it exceeds the MTU.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, Optional

from repro.cab.cpu import Compute
from repro.errors import ProtocolError
from repro.protocols.addressing import NodeRegistry
from repro.protocols.datalink import Datalink, ProtocolBinding
from repro.protocols.headers import DL_TYPE_IP, DatalinkHeader, IPv4Header, IP_FLAG_MF
from repro.runtime.kernel import Runtime
from repro.runtime.mailbox import Mailbox, Message
from repro.units import ms, seconds

__all__ = ["IPProtocol"]

#: How long a partially reassembled datagram may wait for its fragments.
REASSEMBLY_TIMEOUT_NS = seconds(5)
#: Period of the IP slow timer that purges stale reassembly state.
SLOW_TIMER_PERIOD_NS = ms(500)


@dataclass
class _ReassemblyEntry:
    """Fragments of one datagram, keyed by (src, identification)."""

    fragments: list[tuple[int, Message, IPv4Header]] = field(default_factory=list)
    total_payload: Optional[int] = None
    arrived: int = 0
    started_ns: int = 0


#: IP input processing placement (the experiment proposed in paper Sec. 3.1:
#: "We will experiment with moving portions of it into high-priority
#: threads.  Although this will introduce additional context switching, the
#: CAB will spend less time with interrupts disabled").
INPUT_AT_INTERRUPT = "interrupt"
INPUT_IN_THREAD = "thread"


class IPProtocol:
    """The IP layer of one CAB."""

    def __init__(
        self,
        runtime: Runtime,
        datalink: Datalink,
        registry: NodeRegistry,
        input_mode: str = INPUT_AT_INTERRUPT,
    ):
        if input_mode not in (INPUT_AT_INTERRUPT, INPUT_IN_THREAD):
            raise ProtocolError(f"unknown IP input mode {input_mode!r}")
        self.input_mode = input_mode
        self.runtime = runtime
        self.costs = runtime.costs
        self.datalink = datalink
        self.registry = registry
        self.node_id = datalink.node_id
        self.address = registry.ip_of(self.node_id)
        self.input_mailbox = runtime.mailbox("ip-input")
        self._transports: Dict[int, Mailbox] = {}
        self._reassembly: Dict[tuple[int, int], _ReassemblyEntry] = {}
        self._reassembly_pending = runtime.condition("ip-reassembly-pending")
        self._reassembly_mutex = runtime.mutex("ip-reassembly")
        self._next_ident = 1
        self.stats = runtime.stats
        datalink.register(
            DL_TYPE_IP,
            ProtocolBinding(
                input_mailbox=self.input_mailbox,
                header_bytes=IPv4Header.SIZE,
                on_header=self._start_of_data,
                on_packet=self._end_of_data,
            ),
        )
        runtime.fork_system(self._slow_timer(), name="ip-slow-timer")
        if input_mode == INPUT_IN_THREAD:
            runtime.fork_system(self._input_thread(), name="ip-input")

    # ------------------------------------------------------------ registration

    def register_transport(self, protocol: int, mailbox: Mailbox) -> None:
        """Higher-level protocols provide an input mailbox to IP.

        That mailbox constitutes the entire receive interface between IP and
        the higher protocol (paper Sec. 4.1).
        """
        if protocol in self._transports:
            raise ProtocolError(f"IP protocol {protocol} already registered")
        self._transports[protocol] = mailbox

    # ------------------------------------------------------------------ output

    def output(
        self,
        template: IPv4Header,
        msg: Message,
        free_after: bool = True,
    ) -> Generator:
        """Thread-context IP_Output.

        ``msg`` must start with 20 bytes of IP header space.  The template's
        ``src``/``dst``/``protocol`` must be filled; IP completes the rest.
        """
        if msg.size < IPv4Header.SIZE:
            raise ProtocolError(f"message of {msg.size} bytes has no IP header room")
        yield Compute(self.costs.ip_output_ns)
        if template.src == 0:
            template.src = self.address
        template.identification = self._next_ident
        self._next_ident = (self._next_ident + 1) & 0xFFFF
        dst_node = self.registry.node_for_ip(template.dst)

        payload_room = self.datalink.mtu - IPv4Header.SIZE
        payload_room -= payload_room % 8  # fragment offsets are 8-byte units
        payload_size = msg.size - IPv4Header.SIZE
        if msg.size <= self.datalink.mtu:
            template.total_length = msg.size
            template.flags = 0
            template.fragment_offset = 0
            msg.write(0, template.pack())
            self.stats.add("ip_packets_out")
            yield from self.datalink.send_message(dst_node, DL_TYPE_IP, msg, free_after)
            return
        yield from self._send_fragments(
            template, msg, dst_node, payload_room, payload_size, free_after
        )

    def _send_fragments(
        self,
        template: IPv4Header,
        msg: Message,
        dst_node: int,
        payload_room: int,
        payload_size: int,
        free_after: bool,
    ) -> Generator:
        """Split an oversized datagram into MTU-sized fragments."""
        offset = 0
        while offset < payload_size:
            piece = min(payload_room, payload_size - offset)
            last = offset + piece >= payload_size
            frag = yield from self.input_mailbox.begin_put(IPv4Header.SIZE + piece)
            data = msg.view(IPv4Header.SIZE + offset, piece)
            yield Compute(self.costs.cab_memcpy_ns(piece))
            frag.write(IPv4Header.SIZE, data)
            header = IPv4Header(
                src=template.src,
                dst=template.dst,
                protocol=template.protocol,
                total_length=IPv4Header.SIZE + piece,
                identification=template.identification,
                flags=0 if last else IP_FLAG_MF,
                fragment_offset=offset // 8,
                ttl=template.ttl,
            )
            frag.write(0, header.pack())
            self.stats.add("ip_fragments_out")
            yield from self.datalink.send_message(dst_node, DL_TYPE_IP, frag, True)
            offset += piece
        if free_after:
            msg.mailbox._release_storage(msg)
            self.runtime.wake_heap_waiters()

    # ------------------------------------------------------------------- input

    def _start_of_data(self, msg: Message, dl_header: DatalinkHeader) -> Generator:
        """Start-of-data upcall: sanity-check the IP header while the body
        is still streaming in (paper Sec. 4.1)."""
        yield Compute(self.costs.ip_input_ns)
        if msg.size < DatalinkHeader.SIZE + IPv4Header.SIZE:
            self.stats.add("ip_bad_header")
            return
        raw = msg.view(DatalinkHeader.SIZE, IPv4Header.SIZE)
        try:
            header = IPv4Header.unpack(raw)
        except ProtocolError:
            self.stats.add("ip_bad_header")
            return
        if not header.header_checksum_ok(raw):
            self.stats.add("ip_bad_checksum")

    def _end_of_data(self, msg: Message, dl_header: DatalinkHeader) -> Generator:
        """End-of-data upcall: reassemble and dispatch (interrupt time)."""
        if msg.size < IPv4Header.SIZE:
            self.stats.add("ip_bad_header")
            yield from self.input_mailbox.iabort_put(msg)
            return
        raw = msg.view(0, IPv4Header.SIZE)
        try:
            header = IPv4Header.unpack(raw)
        except ProtocolError:
            self.stats.add("ip_bad_header")
            yield from self.input_mailbox.iabort_put(msg)
            return
        if not header.header_checksum_ok(raw):
            self.stats.add("ip_bad_checksum")
            yield from self.input_mailbox.iabort_put(msg)
            return
        if header.dst != self.address:
            self.stats.add("ip_not_ours")
            yield from self.input_mailbox.iabort_put(msg)
            return
        if self.input_mode == INPUT_IN_THREAD:
            # The Sec. 3.1 experiment: hand the packet to the IP input
            # thread instead of finishing at interrupt time.  Costs an
            # extra wakeup + context switch per packet but shortens the
            # interrupt-masked window.
            yield from self.input_mailbox.iend_put(msg)
            return
        if header.fragment_offset or header.more_fragments:
            yield from self._handle_fragment(msg, header)
            return
        self.stats.add("ip_packets_in")
        yield from self._dispatch(msg, header)

    def _input_thread(self) -> Generator:
        """Thread-mode IP input processing (Sec. 3.1 experiment)."""
        while True:
            msg = yield from self.input_mailbox.begin_get()
            raw = msg.view(0, IPv4Header.SIZE)
            header = IPv4Header.unpack(raw)
            if header.fragment_offset or header.more_fragments:
                yield from self._handle_fragment(msg, header)
                continue
            self.stats.add("ip_packets_in")
            yield from self._dispatch(msg, header)

    def _dispatch(self, msg: Message, header: IPv4Header) -> Generator:
        mailbox = self._transports.get(header.protocol)
        if mailbox is None:
            self.stats.add("ip_no_transport")
            yield from self.input_mailbox.iabort_put(msg)
            return
        # The datagram (IP header included) moves without copying.
        yield from self.input_mailbox.ienqueue(msg, mailbox)

    # ------------------------------------------------------------- reassembly

    def _handle_fragment(self, msg: Message, header: IPv4Header) -> Generator:
        yield Compute(self.costs.ip_reassembly_ns)
        self.stats.add("ip_fragments_in")
        key = (header.src, header.identification)
        entry = self._reassembly.get(key)
        if entry is None:
            entry = _ReassemblyEntry(started_ns=self.runtime.sim.now)
            self._reassembly[key] = entry
            # Arm the slow timer (it parks while there is nothing to purge).
            self.runtime.ops.signal_nocost(self._reassembly_pending)
        payload_offset = header.fragment_offset * 8
        payload_len = header.total_length - IPv4Header.SIZE
        entry.fragments.append((payload_offset, msg, header))
        entry.arrived += payload_len
        if not header.more_fragments:
            entry.total_payload = payload_offset + payload_len
        if entry.total_payload is None or entry.arrived < entry.total_payload:
            return
        # All fragments are here: rebuild the datagram in a fresh buffer.
        del self._reassembly[key]
        total = IPv4Header.SIZE + entry.total_payload
        whole = yield from self.input_mailbox.ibegin_put(total)
        if whole is None:
            self.stats.add("ip_reassembly_no_buffer")
            for _offset, frag, _header in entry.fragments:
                yield from self.input_mailbox.iabort_put(frag)
            return
        yield Compute(self.costs.cab_memcpy_ns(entry.total_payload))
        for offset, frag, _frag_header in entry.fragments:
            frag_payload = frag.view(IPv4Header.SIZE)
            whole.write(IPv4Header.SIZE + offset, frag_payload)
            yield from self.input_mailbox.iabort_put(frag)
        rebuilt = IPv4Header(
            src=header.src,
            dst=header.dst,
            protocol=header.protocol,
            total_length=total,
            identification=header.identification,
            ttl=header.ttl,
        )
        whole.write(0, rebuilt.pack())
        self.stats.add("ip_reassembled")
        self.stats.add("ip_packets_in")
        yield from self._dispatch(whole, rebuilt)

    def _slow_timer(self) -> Generator:
        """Purge reassembly state that has waited too long for fragments.

        Parks on a condition while there is no reassembly in progress, so an
        idle CAB schedules no timer events at all.
        """
        ops = self.runtime.ops
        while True:
            if not self._reassembly:
                yield from ops.lock(self._reassembly_mutex)
                while not self._reassembly:
                    yield from ops.wait(self._reassembly_pending, self._reassembly_mutex)
                yield from ops.unlock(self._reassembly_mutex)
            yield from ops.sleep(SLOW_TIMER_PERIOD_NS)
            now = self.runtime.sim.now
            stale = [
                key
                for key, entry in self._reassembly.items()
                if now - entry.started_ns > REASSEMBLY_TIMEOUT_NS
            ]
            for key in stale:
                entry = self._reassembly.pop(key)
                self.stats.add("ip_reassembly_timeouts")
                for _offset, frag, _header in entry.fragments:
                    frag.mailbox._release_storage(frag)
                self.runtime.wake_heap_waiters()
