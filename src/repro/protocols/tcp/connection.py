"""TCP connection state: the TCB, sequence arithmetic, unacked segments."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.units import ms

__all__ = [
    "SEQ_MOD",
    "TCPConnection",
    "TCPState",
    "UnackedSegment",
    "seq_add",
    "seq_ge",
    "seq_gt",
    "seq_le",
    "seq_lt",
]

SEQ_MOD = 1 << 32


def seq_add(seq: int, delta: int) -> int:
    """Sequence-space addition (mod 2^32)."""
    return (seq + delta) % SEQ_MOD


def seq_lt(a: int, b: int) -> bool:
    """a < b in 32-bit sequence space (RFC 793 wraparound comparison)."""
    return ((a - b) % SEQ_MOD) > (SEQ_MOD >> 1)


def seq_le(a: int, b: int) -> bool:
    """a <= b in sequence space."""
    return a == b or seq_lt(a, b)


def seq_gt(a: int, b: int) -> bool:
    """a > b in sequence space."""
    return seq_lt(b, a)


def seq_ge(a: int, b: int) -> bool:
    """a >= b in sequence space."""
    return a == b or seq_lt(b, a)


class TCPState(enum.Enum):
    CLOSED = "CLOSED"
    # Passive open is modeled by separate Listener objects (tcp.py), so no
    # connection ever sits in LISTEN; the member stays for RFC fidelity.
    LISTEN = "LISTEN"  # nectarlint: disable=NP301
    SYN_SENT = "SYN_SENT"
    SYN_RCVD = "SYN_RCVD"
    ESTABLISHED = "ESTABLISHED"
    FIN_WAIT_1 = "FIN_WAIT_1"
    FIN_WAIT_2 = "FIN_WAIT_2"
    CLOSE_WAIT = "CLOSE_WAIT"
    CLOSING = "CLOSING"
    LAST_ACK = "LAST_ACK"
    TIME_WAIT = "TIME_WAIT"


@dataclass
class UnackedSegment:
    """One in-flight segment kept for possible retransmission."""

    seq: int
    length: int  # payload bytes (SYN/FIN occupy sequence space but carry 0)
    data: bytes
    flags: int
    sent_ns: int
    retransmits: int = 0
    rtt_eligible: bool = True  # Karn: retransmitted segments don't update RTT


#: Default receive window we advertise (bytes).
DEFAULT_RCV_WND = 32 * 1024
#: Send buffer limit: senders block above this much unsent+unacked data.
DEFAULT_SND_BUF = 64 * 1024
#: Initial retransmission timeout and its bounds.
INITIAL_RTO_NS = ms(50)
MIN_RTO_NS = ms(10)
MAX_RTO_NS = ms(2_000)
#: Give up after this many retransmissions of one segment.
MAX_RETRANSMITS = 8
#: Give up after this many consecutive unanswered zero-window probes.  Any
#: ACK from the peer resets the count, so a live-but-slow receiver is never
#: aborted — only a peer that has gone completely silent.
MAX_WINDOW_PROBES = 12
#: TIME_WAIT duration (2*MSL, scaled for a LAN simulation).
TIME_WAIT_NS = ms(100)


class TCPConnection:
    """The TCB plus user-facing send/receive plumbing.

    All fields are protected by the owning TCPProtocol's lock; user-facing
    methods live on :class:`~repro.protocols.tcp.tcp.TCPProtocol`.
    """

    _next_id = 1

    def __init__(
        self,
        tcp,
        local_port: int,
        remote_ip: int,
        remote_port: int,
        receive_mailbox,
    ):
        self.tcp = tcp
        self.conn_id = TCPConnection._next_id
        TCPConnection._next_id += 1
        self.local_port = local_port
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.receive_mailbox = receive_mailbox
        self.state = TCPState.CLOSED

        # Send side.
        self.iss = (0x1000 * self.conn_id) % SEQ_MOD
        self.snd_una = self.iss
        self.snd_nxt = self.iss
        self.snd_wnd = DEFAULT_RCV_WND
        self.send_buffer = bytearray()  # data not yet put on the wire
        self.unacked: list[UnackedSegment] = []
        self.fin_pending = False  # user closed; FIN still to be sent
        self.fin_sent = False

        # Receive side.
        self.irs = 0
        self.rcv_nxt = 0
        self.rcv_wnd = DEFAULT_RCV_WND
        self.out_of_order: list[tuple[int, bytes]] = []
        self.fin_received = False

        # RTT estimation (RFC 793 style smoothed RTT + Jacobson variance).
        self.srtt_ns: Optional[int] = None
        self.rttvar_ns: int = 0
        self.rto_ns = INITIAL_RTO_NS
        self.rto_deadline_ns: Optional[int] = None
        # Consecutive zero-window probes sent without hearing any ACK back.
        self.window_probes = 0

        # Congestion control (Tahoe-style, 1988-era; enabled per protocol).
        # cwnd/ssthresh are in bytes; inactive unless tcp.congestion_control.
        self.cwnd = 0  # set by the protocol once the MSS is known
        self.ssthresh = DEFAULT_RCV_WND

        # Synchronization (created by the protocol, which owns the runtime).
        ops = tcp.runtime
        self.established_cond = ops.condition(f"tcp{self.conn_id}-established")
        self.closed_cond = ops.condition(f"tcp{self.conn_id}-closed")
        self.send_space_cond = ops.condition(f"tcp{self.conn_id}-sndspace")
        self.error: Optional[str] = None

    # -- derived quantities --------------------------------------------------

    @property
    def four_tuple(self) -> tuple[int, int, int]:
        return (self.local_port, self.remote_ip, self.remote_port)

    @property
    def bytes_in_flight(self) -> int:
        return (self.snd_nxt - self.snd_una) % SEQ_MOD

    @property
    def effective_window(self) -> int:
        """Peer window, clipped by cwnd when congestion control is on."""
        if self.cwnd:
            return min(self.snd_wnd, self.cwnd)
        return self.snd_wnd

    @property
    def send_window_avail(self) -> int:
        return max(0, self.effective_window - self.bytes_in_flight)

    # -- congestion control (Tahoe) ----------------------------------------------

    def congestion_ack(self, acked_bytes: int, mss: int) -> None:
        """Grow cwnd on new data acked: slow start, then linear avoidance."""
        if not self.cwnd:
            return
        if self.cwnd < self.ssthresh:
            self.cwnd += min(acked_bytes, mss)  # slow start: ~double per RTT
        else:
            self.cwnd += max(1, mss * mss // self.cwnd)  # congestion avoidance

    def congestion_timeout(self, mss: int) -> None:
        """On retransmission timeout: halve the threshold, restart from 1 MSS."""
        if not self.cwnd:
            return
        self.ssthresh = max(2 * mss, self.effective_window // 2)
        self.cwnd = mss

    @property
    def send_buffer_full(self) -> bool:
        return len(self.send_buffer) + self.bytes_in_flight >= DEFAULT_SND_BUF

    def advertised_window(self) -> int:
        """Receive window: capacity minus what the user has not consumed."""
        queued = sum(m.size for m in self.receive_mailbox.queue)
        return max(0, min(0xFFFF, self.rcv_wnd - queued))

    # -- RTT / RTO ------------------------------------------------------------

    def record_rtt(self, sample_ns: int) -> None:
        """Jacobson/Karels RTO update."""
        if self.srtt_ns is None:
            self.srtt_ns = sample_ns
            self.rttvar_ns = sample_ns // 2
        else:
            delta = sample_ns - self.srtt_ns
            self.srtt_ns += delta // 8
            self.rttvar_ns += (abs(delta) - self.rttvar_ns) // 4
        rto = self.srtt_ns + 4 * self.rttvar_ns
        self.rto_ns = max(MIN_RTO_NS, min(MAX_RTO_NS, rto))

    def backoff_rto(self) -> None:
        """Exponential RTO backoff (capped)."""
        self.rto_ns = min(MAX_RTO_NS, self.rto_ns * 2)

    # -- out-of-order reassembly --------------------------------------------------

    def stash_out_of_order(self, seq: int, data: bytes) -> None:
        """Keep an out-of-order byte range (sorted, naive overlap handling)."""
        self.out_of_order.append((seq, data))
        self.out_of_order.sort(key=lambda item: (item[0] - self.rcv_nxt) % SEQ_MOD)

    def drain_in_order(self) -> bytes:
        """Pull now-contiguous bytes from the out-of-order store."""
        delivered = bytearray()
        while self.out_of_order:
            seq, data = self.out_of_order[0]
            if seq_gt(seq, self.rcv_nxt):
                break
            self.out_of_order.pop(0)
            offset = (self.rcv_nxt - seq) % SEQ_MOD
            if offset >= len(data):
                continue  # entirely duplicate
            chunk = data[offset:]
            delivered.extend(chunk)
            self.rcv_nxt = seq_add(self.rcv_nxt, len(chunk))
        return bytes(delivered)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TCPConnection #{self.conn_id} {self.state.value} "
            f"lport={self.local_port} rport={self.remote_port}>"
        )
