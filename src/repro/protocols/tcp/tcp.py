"""The TCP protocol engine: input thread, send thread, timer thread.

Structure follows paper Sec. 4.2:

* All input processing happens in the **TCP input thread**, which blocks on
  a Begin_Get of the TCP input mailbox until IP enqueues a segment, then
  checksums the entire packet (in software — the cost that separates TCP
  from RMP in Fig. 7) and runs standard TCP input processing.  Data reaches
  the user by deleting the headers in place and Enqueue-ing the packet into
  the user's receive mailbox.
* Users send by placing a request in the **send-request mailbox**, serviced
  by the TCP send thread; CAB-resident senders may call the output routine
  directly without involving the send thread.
* Shared connection state is protected by a mutex, not by disabling
  interrupts — possible precisely because TCP runs in threads.

The state machine covers the full RFC 793 lifecycle (LISTEN through
TIME_WAIT), retransmission with Jacobson RTO estimation and Karn's rule,
out-of-order reassembly, flow control from the peer's advertised window,
and zero-window probing.
"""

from __future__ import annotations

import struct
from typing import Dict, Generator, Optional

from repro.cab.cpu import Compute
from repro.errors import ProtocolError
from repro.protocols.headers import (
    IPPROTO_TCP,
    IPv4Header,
    TCP_ACK,
    TCP_FIN,
    TCP_PSH,
    TCP_RST,
    TCP_SYN,
    TCPHeader,
)
from repro.protocols.ip import IPProtocol
from repro.protocols.tcp.connection import (
    MAX_RETRANSMITS,
    MAX_WINDOW_PROBES,
    TCPConnection,
    TCPState,
    TIME_WAIT_NS,
    UnackedSegment,
    seq_add,
    seq_ge,
    seq_gt,
    seq_le,
    seq_lt,
)
from repro.runtime.kernel import Runtime
from repro.runtime.mailbox import Mailbox, Message
from repro.units import ms

__all__ = ["Listener", "TCPProtocol"]

#: Timer thread tick.
TIMER_TICK_NS = ms(10)
#: Maximum segment size (payload bytes per segment).
DEFAULT_MSS = 1460

_SEND_REQUEST_FMT = ">II"  # conn_id, length


class Listener:
    """A passive open: accepts connections on a local port."""

    def __init__(self, tcp: "TCPProtocol", port: int, mailbox_factory):
        self.tcp = tcp
        self.port = port
        self.mailbox_factory = mailbox_factory
        self.accepted: list[TCPConnection] = []
        self.accept_cond = tcp.runtime.condition(f"tcp-listen-{port}")


class TCPProtocol:
    """The TCP layer of one CAB."""

    def __init__(
        self,
        runtime: Runtime,
        ip: IPProtocol,
        checksums: bool = True,
        mss: int = DEFAULT_MSS,
        congestion_control: bool = False,
    ):
        self.runtime = runtime
        self.costs = runtime.costs
        self.ip = ip
        self.checksums = checksums
        self.mss = mss
        #: Tahoe-style slow start / congestion avoidance.  Off by default:
        #: the paper's 1990 implementation predates its deployment on
        #: Nectar, and the evaluation workloads run on an uncongested LAN.
        self.congestion_control = congestion_control
        self.input_mailbox = runtime.mailbox("tcp-input")
        self.send_request_mailbox = runtime.mailbox("tcp-send-request")
        ip.register_transport(IPPROTO_TCP, self.input_mailbox)

        self.lock = runtime.mutex("tcp-lock")
        self.connections: Dict[tuple[int, int, int], TCPConnection] = {}
        self.by_id: Dict[int, TCPConnection] = {}
        self.listeners: Dict[int, Listener] = {}
        self._timer_work = runtime.condition("tcp-timer-work")
        self._time_wait_deadlines: Dict[int, int] = {}
        self._zero_window_probes: Dict[int, int] = {}
        self.stats = runtime.stats

        runtime.fork_system(self._input_thread(), name="tcp-input")
        runtime.fork_system(self._send_thread(), name="tcp-send")
        runtime.fork_system(self._timer_thread(), name="tcp-timer")

    # ==================================================================== API

    def connect(
        self,
        local_port: int,
        remote_ip: int,
        remote_port: int,
        receive_mailbox: Mailbox,
    ) -> Generator:
        """Active open.  Blocks until ESTABLISHED; returns the connection."""
        ops = self.runtime.ops
        yield from ops.lock(self.lock)
        conn = TCPConnection(self, local_port, remote_ip, remote_port, receive_mailbox)
        if self.congestion_control:
            conn.cwnd = self.mss
        key = conn.four_tuple
        if key in self.connections:
            yield from ops.unlock(self.lock)
            raise ProtocolError(f"connection {key} already exists")
        self.connections[key] = conn
        self.by_id[conn.conn_id] = conn
        conn.state = TCPState.SYN_SENT
        yield from self._send_segment(conn, conn.snd_nxt, b"", TCP_SYN, ack=False)
        conn.snd_nxt = seq_add(conn.snd_nxt, 1)
        self._arm_retransmit(conn)
        while conn.state not in (TCPState.ESTABLISHED, TCPState.CLOSED):
            yield from ops.wait(conn.established_cond, self.lock)
        failed = conn.error
        yield from ops.unlock(self.lock)
        if failed:
            raise ProtocolError(f"connect failed: {failed}")
        return conn

    def listen(self, port: int, mailbox_factory) -> Listener:
        """Passive open.  ``mailbox_factory(conn)`` makes the receive mailbox."""
        if port in self.listeners:
            raise ProtocolError(f"TCP port {port} already listening")
        listener = Listener(self, port, mailbox_factory)
        self.listeners[port] = listener
        return listener

    def accept(self, listener: Listener) -> Generator:
        """Block until a connection reaches ESTABLISHED; return it."""
        ops = self.runtime.ops
        yield from ops.lock(self.lock)
        while not listener.accepted:
            yield from ops.wait(listener.accept_cond, self.lock)
        conn = listener.accepted.pop(0)
        yield from ops.unlock(self.lock)
        return conn

    def send(self, conn: TCPConnection, data: bytes) -> Generator:
        """Send through the send-request mailbox (paper's standard path).

        Blocks while the connection's send buffer is full (flow control all
        the way back to the sender).
        """
        ops = self.runtime.ops
        tracer = self.runtime.tracer
        track = self._span_track() if tracer.sink is not None else None
        if track is not None:
            tracer.begin("tcp", "send", {"bytes": len(data)}, track=track)
        try:
            yield from ops.lock(self.lock)
            self._check_sendable(conn)
            while conn.send_buffer_full:
                yield from ops.wait(conn.send_space_cond, self.lock)
                self._check_sendable(conn)
            yield from ops.unlock(self.lock)
            request = yield from self.send_request_mailbox.begin_put(
                struct.calcsize(_SEND_REQUEST_FMT) + len(data)
            )
            yield Compute(self.costs.cab_memcpy_ns(len(data)))
            request.write(0, struct.pack(_SEND_REQUEST_FMT, conn.conn_id, len(data)))
            request.write(struct.calcsize(_SEND_REQUEST_FMT), data)
            yield from self.send_request_mailbox.end_put(request)
        finally:
            if track is not None:
                tracer.end("tcp", "send", track=track)

    def send_direct(self, conn: TCPConnection, data: bytes) -> Generator:
        """CAB-resident fast path: append to the send queue and run output
        directly, without involving the send thread (paper Sec. 4.2)."""
        ops = self.runtime.ops
        tracer = self.runtime.tracer
        track = self._span_track() if tracer.sink is not None else None
        if track is not None:
            tracer.begin("tcp", "send", {"bytes": len(data)}, track=track)
        try:
            yield from ops.lock(self.lock)
            self._check_sendable(conn)
            while conn.send_buffer_full:
                yield from ops.wait(conn.send_space_cond, self.lock)
                self._check_sendable(conn)
            conn.send_buffer.extend(data)
            yield from self._output(conn)
            yield from ops.unlock(self.lock)
        finally:
            if track is not None:
                tracer.end("tcp", "send", track=track)

    def _span_track(self) -> str:
        """Trace track for the current execution context (thread or irq)."""
        label = self.runtime.cpu.context_label
        return label if label is not None else f"{self.runtime.cpu.name}/ext"

    def close(self, conn: TCPConnection) -> Generator:
        """Begin an orderly close; returns once the FIN is queued."""
        ops = self.runtime.ops
        yield from ops.lock(self.lock)
        if conn.state is TCPState.ESTABLISHED:
            conn.state = TCPState.FIN_WAIT_1
            conn.fin_pending = True
            yield from self._output(conn)
        elif conn.state is TCPState.CLOSE_WAIT:
            conn.state = TCPState.LAST_ACK
            conn.fin_pending = True
            yield from self._output(conn)
        elif conn.state in (TCPState.SYN_SENT, TCPState.CLOSED):
            self._destroy(conn)
        yield from ops.unlock(self.lock)

    def wait_closed(self, conn: TCPConnection) -> Generator:
        """Block until the connection is fully closed."""
        ops = self.runtime.ops
        yield from ops.lock(self.lock)
        while conn.state is not TCPState.CLOSED:
            yield from ops.wait(conn.closed_cond, self.lock)
        yield from ops.unlock(self.lock)

    def _check_sendable(self, conn: TCPConnection) -> None:
        if conn.error:
            raise ProtocolError(f"connection error: {conn.error}")
        if conn.state not in (TCPState.ESTABLISHED, TCPState.CLOSE_WAIT):
            raise ProtocolError(f"cannot send in state {conn.state.value}")

    # ============================================================ send thread

    def _send_thread(self) -> Generator:
        ops = self.runtime.ops
        header_size = struct.calcsize(_SEND_REQUEST_FMT)
        while True:
            request = yield from self.send_request_mailbox.begin_get()
            conn_id, length = struct.unpack(
                _SEND_REQUEST_FMT, request.view(0, header_size)
            )
            # The data outlives end_get below (it lands in send_buffer after
            # the request message is freed): keep the copy.
            data = request.read(header_size, length)
            yield from self.send_request_mailbox.end_get(request)
            yield from ops.lock(self.lock)
            conn = self.by_id.get(conn_id)
            if conn is not None and conn.state in (
                TCPState.ESTABLISHED,
                TCPState.CLOSE_WAIT,
            ):
                conn.send_buffer.extend(data)
                yield from self._output(conn)
            yield from ops.unlock(self.lock)

    # ============================================================== output

    def _output(self, conn: TCPConnection) -> Generator:
        """Push as much queued data as the send window allows (lock held)."""
        while conn.send_buffer:
            window = conn.send_window_avail
            if window == 0:
                self._note_zero_window(conn)
                return
            chunk = min(self.mss, window, len(conn.send_buffer))
            data = bytes(conn.send_buffer[:chunk])
            del conn.send_buffer[:chunk]
            flags = TCP_ACK | TCP_PSH
            yield from self._send_segment(conn, conn.snd_nxt, data, flags)
            conn.snd_nxt = seq_add(conn.snd_nxt, chunk)
            self._arm_retransmit(conn)
        if conn.fin_pending and not conn.fin_sent and not conn.send_buffer:
            yield from self._send_segment(conn, conn.snd_nxt, b"", TCP_FIN | TCP_ACK)
            conn.snd_nxt = seq_add(conn.snd_nxt, 1)
            conn.fin_sent = True
            self._arm_retransmit(conn)

    def _send_segment(
        self,
        conn: TCPConnection,
        seq: int,
        data: bytes,
        flags: int,
        ack: bool = True,
        track: bool = True,
    ) -> Generator:
        """Build and transmit one segment (lock held)."""
        yield Compute(self.costs.tcp_output_ns)
        header = TCPHeader(
            src_port=conn.local_port,
            dst_port=conn.remote_port,
            seq=seq,
            ack=conn.rcv_nxt if ack else 0,
            flags=flags,
            window=conn.advertised_window(),
        )
        segment = bytearray(header.pack())
        segment.extend(data)
        if self.checksums:
            yield Compute(self.costs.cab_checksum_ns(len(segment)))
            checksum = TCPHeader.compute_checksum(
                self.ip.address, conn.remote_ip, bytes(segment)
            )
            segment[16:18] = checksum.to_bytes(2, "big")
        # Record the segment for retransmission BEFORE trying to allocate a
        # transmit buffer: if the heap is exhausted the send degrades into a
        # lost segment that the retransmission timer recovers — the payload
        # lives on in the UnackedSegment.
        if track and (data or flags & (TCP_SYN | TCP_FIN)):
            conn.unacked.append(
                UnackedSegment(
                    seq=seq,
                    length=len(data),
                    data=data,
                    flags=flags,
                    sent_ns=self.runtime.sim.now,
                )
            )
        msg = yield from self.input_mailbox.ibegin_put(IPv4Header.SIZE + len(segment))
        if msg is None:
            self.stats.add("tcp_out_no_buffer")
            self._arm_retransmit(conn)
            return
        yield Compute(self.costs.cab_memcpy_ns(len(data)))
        msg.write(IPv4Header.SIZE, bytes(segment))
        template = IPv4Header(src=0, dst=conn.remote_ip, protocol=IPPROTO_TCP)
        self.stats.add("tcp_segments_out")
        yield from self.ip.output(template, msg, free_after=True)

    def _send_ack(self, conn: TCPConnection) -> Generator:
        yield from self._send_segment(conn, conn.snd_nxt, b"", TCP_ACK, track=False)

    def _arm_retransmit(self, conn: TCPConnection) -> None:
        if conn.unacked and conn.rto_deadline_ns is None:
            conn.rto_deadline_ns = self.runtime.sim.now + conn.rto_ns
        self.runtime.ops.signal_nocost(self._timer_work)

    def _note_zero_window(self, conn: TCPConnection) -> None:
        if conn.snd_wnd == 0 and conn.conn_id not in self._zero_window_probes:
            self._zero_window_probes[conn.conn_id] = (
                self.runtime.sim.now + conn.rto_ns
            )
            self.runtime.ops.signal_nocost(self._timer_work)

    # ============================================================ input thread

    def _input_thread(self) -> Generator:
        ops = self.runtime.ops
        while True:
            msg = yield from self.input_mailbox.begin_get()
            yield Compute(self.costs.tcp_input_ns)
            if msg.size < IPv4Header.SIZE + TCPHeader.SIZE:
                self.stats.add("tcp_malformed")
                yield from self.input_mailbox.end_get(msg)
                continue
            try:
                ip_header = IPv4Header.unpack(msg.view(0, IPv4Header.SIZE))
                segment = msg.view(IPv4Header.SIZE)
                tcp_header = TCPHeader.unpack(segment)
            except ProtocolError:
                self.stats.add("tcp_malformed")
                yield from self.input_mailbox.end_get(msg)
                continue
            if self.checksums and tcp_header.checksum != 0:
                yield Compute(self.costs.cab_checksum_ns(len(segment)))
                if not TCPHeader.verify(ip_header.src, ip_header.dst, segment):
                    self.stats.add("tcp_bad_checksum")
                    yield from self.input_mailbox.end_get(msg)
                    continue
            self.stats.add("tcp_segments_in")
            yield from ops.lock(self.lock)
            yield from self._segment_arrives(msg, ip_header, tcp_header, len(segment))
            yield from ops.unlock(self.lock)

    def _segment_arrives(
        self,
        msg: Message,
        ip_header: IPv4Header,
        header: TCPHeader,
        segment_len: int,
    ) -> Generator:
        """RFC 793 segment processing (lock held).  Consumes ``msg``."""
        key = (header.dst_port, ip_header.src, header.src_port)
        conn = self.connections.get(key)
        payload_len = segment_len - TCPHeader.SIZE

        if conn is None:
            listener = self.listeners.get(header.dst_port)
            if (
                listener is not None
                and header.flags & TCP_SYN
                and not header.flags & TCP_ACK
            ):
                yield from self._passive_open(listener, ip_header, header)
            elif not header.flags & TCP_RST:
                yield from self._send_rst(ip_header, header, segment_len)
            yield from self.input_mailbox.end_get(msg)
            return

        if header.flags & TCP_RST:
            self._abort(conn, "connection reset by peer")
            yield from self.input_mailbox.end_get(msg)
            return

        # --- ACK processing -------------------------------------------------
        if header.flags & TCP_ACK:
            yield from self._process_ack(conn, header)

        # --- SYN handling for the active opener ------------------------------
        if header.flags & TCP_SYN and conn.state is TCPState.SYN_SENT:
            conn.irs = header.seq
            conn.rcv_nxt = seq_add(header.seq, 1)
            if seq_gt(conn.snd_una, conn.iss):
                conn.state = TCPState.ESTABLISHED
                conn.snd_wnd = header.window
                yield from self._send_ack(conn)
                yield from self.runtime.ops.broadcast(conn.established_cond)
            yield from self.input_mailbox.end_get(msg)
            return

        # --- data and FIN ------------------------------------------------------
        if payload_len > 0 or header.flags & TCP_FIN:
            yield from self._process_data(conn, header, msg, payload_len)
        else:
            yield from self.input_mailbox.end_get(msg)

    def _passive_open(
        self, listener: Listener, ip_header: IPv4Header, header: TCPHeader
    ) -> Generator:
        conn = TCPConnection(
            self,
            header.dst_port,
            ip_header.src,
            header.src_port,
            receive_mailbox=None,
        )
        conn.receive_mailbox = listener.mailbox_factory(conn)
        if self.congestion_control:
            conn.cwnd = self.mss
        conn.state = TCPState.SYN_RCVD
        conn.irs = header.seq
        conn.rcv_nxt = seq_add(header.seq, 1)
        conn.snd_wnd = header.window
        conn._listener = listener
        self.connections[conn.four_tuple] = conn
        self.by_id[conn.conn_id] = conn
        yield from self._send_segment(conn, conn.snd_nxt, b"", TCP_SYN | TCP_ACK)
        conn.snd_nxt = seq_add(conn.snd_nxt, 1)
        self._arm_retransmit(conn)
        self.stats.add("tcp_passive_opens")

    def _process_ack(self, conn: TCPConnection, header: TCPHeader) -> Generator:
        ack = header.ack
        conn.snd_wnd = header.window
        conn.window_probes = 0  # any ACK proves the peer is alive
        if conn.snd_wnd > 0:
            self._zero_window_probes.pop(conn.conn_id, None)
        if not seq_gt(ack, conn.snd_una):
            return
        if seq_gt(ack, conn.snd_nxt):
            # Acking the future: ignore (stale/corrupt).
            return
        now = self.runtime.sim.now
        acked_bytes = (ack - conn.snd_una) % (1 << 32)
        conn.congestion_ack(acked_bytes, self.mss)
        remaining = []
        for segment in conn.unacked:
            span = segment.length + (1 if segment.flags & (TCP_SYN | TCP_FIN) else 0)
            end = seq_add(segment.seq, span)
            if seq_le(end, ack):
                if segment.rtt_eligible:
                    conn.record_rtt(now - segment.sent_ns)
            else:
                remaining.append(segment)
        conn.unacked = remaining
        conn.snd_una = ack
        conn.rto_deadline_ns = (
            None if not conn.unacked else now + conn.rto_ns
        )
        yield from self.runtime.ops.broadcast(conn.send_space_cond)

        # State transitions driven by our data being acknowledged.
        if conn.state is TCPState.SYN_RCVD and seq_gt(ack, conn.iss):
            conn.state = TCPState.ESTABLISHED
            listener = getattr(conn, "_listener", None)
            if listener is not None:
                listener.accepted.append(conn)
                yield from self.runtime.ops.broadcast(listener.accept_cond)
            yield from self.runtime.ops.broadcast(conn.established_cond)
        fin_acked = conn.fin_sent and conn.snd_una == conn.snd_nxt
        if conn.state is TCPState.FIN_WAIT_1 and fin_acked:
            conn.state = TCPState.FIN_WAIT_2
        elif conn.state is TCPState.CLOSING and fin_acked:
            self._enter_time_wait(conn)
        elif conn.state is TCPState.LAST_ACK and fin_acked:
            self._finish_close(conn)
        # More room may have opened: push queued data.
        if conn.send_buffer or (conn.fin_pending and not conn.fin_sent):
            yield from self._output(conn)

    def _process_data(
        self,
        conn: TCPConnection,
        header: TCPHeader,
        msg: Message,
        payload_len: int,
    ) -> Generator:
        seq = header.seq
        if conn.state not in (
            TCPState.ESTABLISHED,
            TCPState.FIN_WAIT_1,
            TCPState.FIN_WAIT_2,
        ):
            if conn.state is TCPState.TIME_WAIT and header.flags & TCP_FIN:
                # RFC 1122 4.2.2.13: a retransmitted FIN (our final ACK was
                # lost) restarts the 2MSL clock; the ACK below re-answers it.
                self._time_wait_deadlines[conn.conn_id] = (
                    self.runtime.sim.now + TIME_WAIT_NS
                )
            yield from self.input_mailbox.end_get(msg)
            yield from self._send_ack(conn)
            return

        if payload_len > 0:
            if seq == conn.rcv_nxt:
                # Fast path: in-order segment, delivered without a copy.
                conn.rcv_nxt = seq_add(conn.rcv_nxt, payload_len)
                msg.trim_front(IPv4Header.SIZE + TCPHeader.SIZE)
                yield from self.input_mailbox.enqueue(msg, conn.receive_mailbox)
                self.stats.add("tcp_bytes_in", payload_len)
                yield from self._deliver_drained(conn)
            elif seq_gt(seq, conn.rcv_nxt):
                # Out of order: stash a copy, dup-ACK.
                self.stats.add("tcp_out_of_order")
                data = msg.read(IPv4Header.SIZE + TCPHeader.SIZE, payload_len)
                yield Compute(self.costs.cab_memcpy_ns(payload_len))
                conn.stash_out_of_order(seq, data)
                yield from self.input_mailbox.end_get(msg)
            else:
                # Overlapping or duplicate.
                offset = (conn.rcv_nxt - seq) % (1 << 32)
                if offset < payload_len:
                    fresh = payload_len - offset
                    conn.rcv_nxt = seq_add(conn.rcv_nxt, fresh)
                    msg.trim_front(IPv4Header.SIZE + TCPHeader.SIZE + offset)
                    yield from self.input_mailbox.enqueue(msg, conn.receive_mailbox)
                    self.stats.add("tcp_bytes_in", fresh)
                    yield from self._deliver_drained(conn)
                else:
                    self.stats.add("tcp_duplicates")
                    yield from self.input_mailbox.end_get(msg)
        else:
            yield from self.input_mailbox.end_get(msg)

        # FIN processing: the FIN occupies the sequence slot after the data.
        if header.flags & TCP_FIN:
            fin_seq = seq_add(seq, payload_len)
            if fin_seq == conn.rcv_nxt and not conn.fin_received:
                conn.fin_received = True
                conn.rcv_nxt = seq_add(conn.rcv_nxt, 1)
                if conn.state is TCPState.ESTABLISHED:
                    conn.state = TCPState.CLOSE_WAIT
                elif conn.state is TCPState.FIN_WAIT_1:
                    # Our FIN not yet acked: simultaneous close.
                    if conn.fin_sent and conn.snd_una == conn.snd_nxt:
                        self._enter_time_wait(conn)
                    else:
                        conn.state = TCPState.CLOSING
                elif conn.state is TCPState.FIN_WAIT_2:
                    self._enter_time_wait(conn)
        yield from self._send_ack(conn)

    def _deliver_drained(self, conn: TCPConnection) -> Generator:
        """Deliver bytes that out-of-order stashes made contiguous."""
        drained = conn.drain_in_order()
        if not drained:
            return
        copy = yield from self.input_mailbox.ibegin_put(len(drained))
        if copy is None:
            # No buffer: pretend the bytes never arrived; peer retransmits.
            conn.rcv_nxt = (conn.rcv_nxt - len(drained)) % (1 << 32)
            conn.stash_out_of_order(conn.rcv_nxt, drained)
            return
        yield Compute(self.costs.cab_memcpy_ns(len(drained)))
        copy.write(0, drained)
        yield from self.input_mailbox.ienqueue(copy, conn.receive_mailbox)
        self.stats.add("tcp_bytes_in", len(drained))

    # ============================================================ timer thread

    def _timer_thread(self) -> Generator:
        ops = self.runtime.ops
        while True:
            yield from ops.lock(self.lock)
            while not self._timer_has_work():
                yield from ops.wait(self._timer_work, self.lock)
            yield from ops.unlock(self.lock)
            yield from ops.sleep(TIMER_TICK_NS)
            yield from ops.lock(self.lock)
            yield from self._timer_scan()
            yield from ops.unlock(self.lock)

    def _timer_has_work(self) -> bool:
        if self._time_wait_deadlines or self._zero_window_probes:
            return True
        return any(conn.unacked for conn in self.by_id.values())

    def _timer_scan(self) -> Generator:
        now = self.runtime.sim.now
        for conn in list(self.by_id.values()):
            if (
                conn.unacked
                and conn.rto_deadline_ns is not None
                and now >= conn.rto_deadline_ns
            ):
                yield from self._retransmit(conn)
            probe_at = self._zero_window_probes.get(conn.conn_id)
            if probe_at is not None and now >= probe_at:
                yield from self._window_probe(conn)
        for conn_id, deadline in list(self._time_wait_deadlines.items()):
            if now >= deadline:
                del self._time_wait_deadlines[conn_id]
                conn = self.by_id.get(conn_id)
                if conn is not None:
                    self._finish_close(conn)

    def _retransmit(self, conn: TCPConnection) -> Generator:
        segment = conn.unacked[0]
        if segment.retransmits >= MAX_RETRANSMITS:
            self._abort(conn, "retransmission limit reached")
            return
        segment.retransmits += 1
        segment.rtt_eligible = False  # Karn's rule
        conn.congestion_timeout(self.mss)
        conn.backoff_rto()
        conn.rto_deadline_ns = self.runtime.sim.now + conn.rto_ns
        self.stats.add("tcp_retransmits")
        tracer = self.runtime.tracer
        if tracer.sink is not None:
            tracer.emit("tcp", "retransmit", {"seq": segment.seq})
        yield from self._send_segment(
            conn, segment.seq, segment.data, segment.flags, track=False
        )

    def _window_probe(self, conn: TCPConnection) -> Generator:
        """Persist timer: poke a zero-window peer with one byte.

        Two escape hatches keep this from probing a dead peer forever:
        with nothing left to push the probe cycle simply stops (sending
        re-arms it), and after ``MAX_WINDOW_PROBES`` consecutive probes
        without hearing *any* ACK back the connection is aborted.
        """
        if conn.snd_wnd > 0 or conn.conn_id not in self._zero_window_probes:
            self._zero_window_probes.pop(conn.conn_id, None)
            conn.window_probes = 0
            return
        if not conn.send_buffer and not conn.unacked and not conn.fin_pending:
            # Nothing to push and nothing outstanding: probing serves no
            # purpose; stop instead of pinging a possibly-dead peer forever.
            del self._zero_window_probes[conn.conn_id]
            conn.window_probes = 0
            return
        conn.window_probes += 1
        if conn.window_probes > MAX_WINDOW_PROBES:
            self._abort(conn, "zero-window probe limit reached")
            return
        self._zero_window_probes[conn.conn_id] = (
            self.runtime.sim.now + conn.rto_ns
        )
        self.stats.add("tcp_window_probes")
        if conn.send_buffer:
            data = bytes(conn.send_buffer[:1])
            del conn.send_buffer[:1]
            yield from self._send_segment(conn, conn.snd_nxt, data, TCP_ACK | TCP_PSH)
            conn.snd_nxt = seq_add(conn.snd_nxt, 1)
            self._arm_retransmit(conn)
        else:
            yield from self._send_ack(conn)

    # ============================================================ teardown

    def _enter_time_wait(self, conn: TCPConnection) -> None:
        conn.state = TCPState.TIME_WAIT
        self._time_wait_deadlines[conn.conn_id] = self.runtime.sim.now + TIME_WAIT_NS
        self.runtime.ops.signal_nocost(self._timer_work)

    def _finish_close(self, conn: TCPConnection) -> None:
        conn.state = TCPState.CLOSED
        self._destroy(conn)

    def _abort(self, conn: TCPConnection, reason: str) -> None:
        self.stats.add("tcp_aborts")
        conn.error = reason
        conn.state = TCPState.CLOSED
        self._destroy(conn)

    def _destroy(self, conn: TCPConnection) -> None:
        self.connections.pop(conn.four_tuple, None)
        self.by_id.pop(conn.conn_id, None)
        self._time_wait_deadlines.pop(conn.conn_id, None)
        self._zero_window_probes.pop(conn.conn_id, None)
        conn.state = TCPState.CLOSED
        ops = self.runtime.ops
        ops.signal_nocost(conn.established_cond)
        ops.signal_nocost(conn.closed_cond)
        ops.signal_nocost(conn.send_space_cond)

    def _send_rst(
        self, ip_header: IPv4Header, header: TCPHeader, segment_len: int
    ) -> Generator:
        """Refuse a segment for which no connection exists."""
        self.stats.add("tcp_rsts_out")
        payload_len = segment_len - TCPHeader.SIZE
        ack = seq_add(header.seq, max(payload_len, 1))
        rst = TCPHeader(
            src_port=header.dst_port,
            dst_port=header.src_port,
            seq=header.ack if header.flags & TCP_ACK else 0,
            ack=ack,
            flags=TCP_RST | TCP_ACK,
            window=0,
        )
        segment = bytearray(rst.pack())
        if self.checksums:
            yield Compute(self.costs.cab_checksum_ns(len(segment)))
            checksum = TCPHeader.compute_checksum(
                self.ip.address, ip_header.src, bytes(segment)
            )
            segment[16:18] = checksum.to_bytes(2, "big")
        msg = yield from self.input_mailbox.ibegin_put(IPv4Header.SIZE + len(segment))
        if msg is None:
            return
        msg.write(IPv4Header.SIZE, bytes(segment))
        template = IPv4Header(src=0, dst=ip_header.src, protocol=IPPROTO_TCP)
        yield from self.ip.output(template, msg, free_after=True)
