"""TCP on the CAB (paper Sec. 4.2).

The Nectar TCP implementation runs almost entirely in system threads rather
than at interrupt time, which lets shared state be protected with mutual
exclusion locks instead of by disabling interrupts.  Three threads per CAB:

* the **input thread** blocks on Begin_Get of the TCP input mailbox, then
  checksums and processes each segment;
* the **send thread** services the send-request mailbox (CAB-resident
  senders may bypass it and call the output routine directly);
* the **timer thread** drives retransmission and TIME_WAIT expiry.
"""

from repro.protocols.tcp.connection import (
    TCPConnection,
    TCPState,
    seq_ge,
    seq_gt,
    seq_le,
    seq_lt,
)
from repro.protocols.tcp.tcp import TCPProtocol

__all__ = [
    "TCPConnection",
    "TCPProtocol",
    "TCPState",
    "seq_ge",
    "seq_gt",
    "seq_le",
    "seq_lt",
]
