"""Protocol implementations on the CAB (paper Sec. 4).

The datalink layer, IP (with fragmentation/reassembly), ICMP, UDP, TCP, and
the Nectar-specific transports (datagram, reliable message, request-response)
all run on the CAB runtime, structured exactly as the paper describes:
time-critical functions in interrupt handlers and mailbox upcalls, the rest
in system threads, with mailboxes managing all data areas so nothing is
copied between receipt and presentation to the user.
"""

from repro.protocols.checksum import internet_checksum, verify_checksum
from repro.protocols.datalink import Datalink
from repro.protocols.ip import IPProtocol

__all__ = [
    "Datalink",
    "IPProtocol",
    "internet_checksum",
    "verify_checksum",
]
