"""A single-producer / single-consumer byte ring for cluster hand-offs.

Process-mode shards used to pickle every :class:`~repro.hub.network.Handoff`
across the conductor pipe.  The ring replaces that with a fixed shared-memory
byte buffer (a ``multiprocessing`` ``RawArray`` in production, any mutable
buffer in tests): the producer encodes hand-off records — length-prefixed,
fixed little-endian layout, no pickle — directly into the ring storage, and
the consumer decodes them out.  A :class:`~repro.buf.packet.BufView` payload
is copied straight from its backing storage into the ring (the ring *is* the
serialization boundary) and the view's reference is consumed, preserving the
buffer plane's ownership discipline: a successful ``push`` owns the bytes,
the pushed-from view is dead.

Synchronization is external by design.  The cluster's conductor/worker pair
strictly alternates (request over the pipe, response back), so the pipe
messages carry the record count and provide the happens-before edge; the
ring itself needs no locks.  ``head``/``tail`` are monotonically increasing
byte offsets held in caller-provided one-element index objects (shared
``RawValue('Q')`` cells in production) so both processes see the same
positions.

A full ring never blocks and never corrupts: ``push`` returns ``False``
(backpressure) and the caller falls back to the pipe — Dagger's idiom of
specializing the common case and keeping a fallback for the rest.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple

from repro.buf.packet import BufView
from repro.errors import BufError
from repro.hub.groups import is_fanout_tree
from repro.hub.network import Handoff

__all__ = ["HandoffRing", "RingIndex"]

#: fire_ns, created_ns, seqno (int64) + crc (uint32) + key port / key seq
#: (int32) + payload length (uint32) + hub/dst/src name lengths + remaining
#: hop count (uint8).
_FIXED = struct.Struct("<qqqIiiIBBBB")
_HOP = struct.Struct("<H")
_LEN = struct.Struct("<I")
_BRANCHES = struct.Struct("<B")
#: The hop-count byte cannot be 0xFF for a flat route; that value flags a
#: multicast fan-out *tree* encoding (branch count + port + subtree,
#: recursively) in the hop area instead of a flat hop list.
_TREE_SENTINEL = 0xFF


class RingIndex:
    """A one-element mutable cell for a ring position.

    The in-process stand-in for a shared ``multiprocessing.RawValue('Q')``
    (which exposes the same ``.value`` attribute); tests and inline use
    need no multiprocessing import.
    """

    __slots__ = ("value",)

    def __init__(self, value: int = 0):
        self.value = value


class HandoffRing:
    """SPSC ring of encoded :class:`Handoff` records over shared bytes."""

    def __init__(
        self,
        storage,
        head: Optional[RingIndex] = None,
        tail: Optional[RingIndex] = None,
        label: str = "handoff-ring",
    ):
        self.storage = memoryview(storage).cast("B")
        self.capacity = len(self.storage)
        if self.capacity < _LEN.size + _FIXED.size:
            raise BufError(
                f"{label}: capacity {self.capacity} cannot hold one record"
            )
        self.head = head if head is not None else RingIndex()
        self.tail = tail if tail is not None else RingIndex()
        self.label = label
        #: Bytes accepted through the ring (producer side, monotonic).
        self.pushed_bytes = 0
        #: Records accepted (producer side, monotonic).
        self.pushed_records = 0

    # -- geometry -------------------------------------------------------------

    def __len__(self) -> int:
        """Bytes currently enqueued."""
        return self.tail.value - self.head.value

    def free_bytes(self) -> int:
        """Bytes of ring capacity not currently holding enqueued records."""
        return self.capacity - len(self)

    def _write(self, position: int, data) -> None:
        """Copy ``data`` into the ring at absolute offset ``position``."""
        start = position % self.capacity
        nbytes = len(data)
        first = min(nbytes, self.capacity - start)
        self.storage[start : start + first] = data[:first]
        if first < nbytes:
            self.storage[0 : nbytes - first] = data[first:]

    def _read(self, position: int, nbytes: int) -> bytes:
        """Materialize ``nbytes`` from absolute offset ``position``.

        The ring is the wire: decoding a record off shared storage is a
        process-boundary copy, exactly like reading from the pipe.
        """
        start = position % self.capacity
        first = min(nbytes, self.capacity - start)
        # Decoding off the shared ring is the one sanctioned copy on this
        # path: the bytes leave shared storage here, nowhere else.
        data = bytes(self.storage[start : start + first])  # nectarlint: disable=NB201
        if first < nbytes:
            # Wrapped tail of the same process-boundary copy.
            data += bytes(self.storage[0 : nbytes - first])  # nectarlint: disable=NB201
        return data

    # -- encoding -------------------------------------------------------------

    @staticmethod
    def _pack_tree(tree) -> bytes:
        """Recursive fan-out tree encoding: branch count, then per branch
        the egress port and its (possibly empty) subtree."""
        if len(tree) >= _TREE_SENTINEL:
            raise BufError("fan-out tree too wide for the ring encoding")
        parts = [_BRANCHES.pack(len(tree))]
        for port, subtree in tree:
            parts.append(_HOP.pack(port))
            parts.append(HandoffRing._pack_tree(subtree))
        return b"".join(parts)

    @staticmethod
    def _unpack_tree(body: bytes, cursor: int):
        """Inverse of :meth:`_pack_tree`; returns ``(tree, cursor)``."""
        (count,) = _BRANCHES.unpack_from(body, cursor)
        cursor += _BRANCHES.size
        branches = []
        for _ in range(count):
            (port,) = _HOP.unpack_from(body, cursor)
            cursor += _HOP.size
            subtree, cursor = HandoffRing._unpack_tree(body, cursor)
            branches.append((port, subtree))
        return tuple(branches), cursor

    @staticmethod
    def _encode(handoff: Handoff) -> Tuple[bytes, object]:
        """The record body (sans payload) and the payload's byte source."""
        key_hub, key_port, key_seq = handoff.key
        payload = handoff.payload
        source = payload.mv() if isinstance(payload, BufView) else payload
        hub_b = key_hub.encode()
        dst_b = handoff.dst_hub.encode()
        src_b = handoff.src.encode()
        remaining = handoff.remaining
        if is_fanout_tree(remaining):
            hop_count = _TREE_SENTINEL
            hop_area = HandoffRing._pack_tree(remaining)
        else:
            if len(remaining) >= _TREE_SENTINEL:
                raise BufError(
                    "hand-off route too long for the ring encoding"
                )
            hop_count = len(remaining)
            hop_area = b"".join(_HOP.pack(hop) for hop in remaining)
        if max(len(hub_b), len(dst_b), len(src_b)) > 0xFF:
            raise BufError(
                f"hand-off record fields too large for the ring encoding"
            )
        body = _FIXED.pack(
            handoff.fire_ns,
            handoff.created_ns,
            handoff.seqno,
            handoff.crc & 0xFFFFFFFF,
            key_port,
            key_seq,
            len(source),
            len(hub_b),
            len(dst_b),
            len(src_b),
            hop_count,
        )
        body += hub_b + dst_b + src_b + hop_area
        return body, source

    def push(self, handoff: Handoff) -> bool:
        """Encode one hand-off into the ring.

        Returns ``False`` (and consumes nothing) when the ring lacks space;
        on ``True`` a ``BufView`` payload has been copied into the ring and
        its reference released — the ring owns the bytes now.
        """
        body, source = self._encode(handoff)
        record = _LEN.size + len(body) + len(source)
        if record > self.free_bytes():
            return False
        position = self.tail.value
        self._write(position, _LEN.pack(len(body) + len(source)))
        self._write(position + _LEN.size, body)
        self._write(position + _LEN.size + len(body), source)
        self.tail.value = position + record
        self.pushed_bytes += record
        self.pushed_records += 1
        if isinstance(handoff.payload, BufView):
            handoff.payload.release()
        return True

    def pop(self) -> Handoff:
        """Decode the oldest record; payload comes out as ``bytes``."""
        if len(self) == 0:
            raise BufError(f"{self.label}: pop from an empty ring")
        position = self.head.value
        (body_len,) = _LEN.unpack(self._read(position, _LEN.size))
        body = self._read(position + _LEN.size, body_len)
        (
            fire_ns,
            created_ns,
            seqno,
            crc,
            key_port,
            key_seq,
            payload_len,
            hub_len,
            dst_len,
            src_len,
            n_hops,
        ) = _FIXED.unpack_from(body)
        cursor = _FIXED.size
        key_hub = body[cursor : cursor + hub_len].decode()
        cursor += hub_len
        dst_hub = body[cursor : cursor + dst_len].decode()
        cursor += dst_len
        src = body[cursor : cursor + src_len].decode()
        cursor += src_len
        if n_hops == _TREE_SENTINEL:
            remaining, cursor = self._unpack_tree(body, cursor)
        else:
            remaining = tuple(
                _HOP.unpack_from(body, cursor + _HOP.size * i)[0]
                for i in range(n_hops)
            )
            cursor += _HOP.size * n_hops
        payload = body[cursor : cursor + payload_len]
        self.head.value = position + _LEN.size + body_len
        return Handoff(
            fire_ns=fire_ns,
            key=(key_hub, key_port, key_seq),
            dst_hub=dst_hub,
            remaining=remaining,
            payload=payload,
            src=src,
            crc=crc,
            seqno=seqno,
            created_ns=created_ns,
        )

    def pop_many(self, count: int) -> List[Handoff]:
        """Decode ``count`` records in FIFO order."""
        return [self.pop() for _ in range(count)]
