"""The ``python -m repro bench buf`` benchmark behind ``BENCH_buf.json``.

Measures the buffer plane three ways, with the same deterministic/measured
split as the scale bench (``repro.cluster.bench``):

* a **microbench** exercising the :class:`~repro.buf.PacketBuffer` /
  :class:`~repro.buf.BufView` op set (alloc, fill, prepend, strip, slice,
  tobytes) with a private :class:`~repro.buf.CopyMeter` — its counters are
  a pure function of the op sequence;
* the **rmp-stream** observe workload, whose ``host.memcpy_bytes`` /
  ``host.memcpy_calls`` counters are the headline number of the zero-copy
  refactor, gated against both the committed baseline and the recorded
  pre-refactor measurement;
* a small **scale** reference fleet (the unsharded ``repro scale``
  workload), recording its copy counters and wall-clock.

``deterministic`` sections are byte-identical across runs and machines;
``measured`` holds wall-clock only and is recorded, never gated.

``--check`` recomputes the deterministic sections and fails when the tree
regresses above the committed ``BENCH_buf.json`` (the tier-1 tripwire);
``--write`` refreshes the committed file after a deliberate change.
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import List

from repro.buf.accounting import CopyMeter
from repro.buf.packet import PacketBuffer

__all__ = [
    "check_against_baseline",
    "default_baseline_path",
    "main",
    "render_bench_json",
    "run_buf_bench",
]

#: Microbench shape: enough rounds to dominate interpreter noise in the
#: measured section while the counters stay trivially auditable.
MICRO_ROUNDS = 256
MICRO_PAYLOAD_BYTES = 1024
MICRO_HEADROOM = 16

#: host.* counters of the rmp-stream observe workload measured on the tree
#: immediately before the zero-copy refactor (per-layer materialization:
#: frame build, seal, crc_ok, chunk_bytes, and every demux read copied).
RMP_STREAM_PRE_REFACTOR = {"memcpy_bytes": 44736, "memcpy_calls": 432}

#: The acceptance floor: the refactored data path must stay at or below
#: half the pre-refactor byte count on rmp-stream.
RMP_STREAM_MAX_FRACTION = 0.5


def _wall_ns() -> int:
    # Wall-clock is quarantined in the "measured" section — the bench's
    # whole point is real elapsed time, never simulated time.
    return time.perf_counter_ns()  # nectarlint: disable=ND001


def _run_microbench() -> dict:
    """The fixed op sequence; returns its meter snapshot + wall-clock."""
    meter = CopyMeter()
    header = bytes(range(MICRO_HEADROOM))
    payload = bytes(index & 0xFF for index in range(MICRO_PAYLOAD_BYTES))
    start = _wall_ns()
    for _round in range(MICRO_ROUNDS):
        view = PacketBuffer.alloc(
            MICRO_PAYLOAD_BYTES,
            headroom=MICRO_HEADROOM,
            meter=meter,
            label="bench",
        )
        view.fill_from(payload)  # the one send-path copy in
        framed = view.prepend(header)  # headroom write, no payload copy
        stripped = framed.strip(MICRO_HEADROOM)  # zero-copy
        window = stripped.slice(64, 256)  # zero-copy
        window.tobytes()  # the one boundary copy out
        framed.release()
    wall_ns = max(1, _wall_ns() - start)
    return {"counters": meter.snapshot(), "wall_ns": wall_ns}


def _run_rmp_stream() -> dict:
    """The headline workload; returns host counters + wall-clock."""
    from repro.telemetry.observe import run_observe

    start = _wall_ns()
    result = run_observe("rmp-stream")
    wall_ns = max(1, _wall_ns() - start)
    return {"counters": result.system.copy_meter.snapshot(), "wall_ns": wall_ns}


def _run_scale_reference() -> dict:
    """An unsharded small-fleet scale run; counters + events + wall-clock."""
    from repro.cluster.fleet import build_fleet_system, line_fleet
    from repro.cluster.workload import Workload, WorkloadSpec

    fleet = line_fleet(3, 2, hub_ports=8)
    spec = WorkloadSpec(
        seed=4, rmp_flows=2, rpc_flows=1, tcp_flows=1, tcp_bytes=1024
    )
    start = _wall_ns()
    system = build_fleet_system(fleet)
    workload = Workload(spec, fleet)
    workload.install(system)
    system.run()
    wall_ns = max(1, _wall_ns() - start)
    counters = dict(system.copy_meter.snapshot())
    counters["events"] = system.sim._seq
    counters["sim_ns"] = system.sim.now
    return {"counters": counters, "wall_ns": wall_ns}


def _reduction_pct(now: int, before: int) -> float:
    return round(100.0 * (before - now) / before, 1) if before else 0.0


def run_buf_bench() -> dict:
    """Run all three legs and assemble the bench report."""
    micro = _run_microbench()
    rmp = _run_rmp_stream()
    scale = _run_scale_reference()
    rmp_counters = rmp["counters"]
    deterministic = {
        "microbench": micro["counters"],
        "rmp_stream": rmp_counters,
        "rmp_stream_pre_refactor": dict(RMP_STREAM_PRE_REFACTOR),
        "rmp_stream_reduction_pct": {
            "memcpy_bytes": _reduction_pct(
                rmp_counters["memcpy_bytes"],
                RMP_STREAM_PRE_REFACTOR["memcpy_bytes"],
            ),
            "memcpy_calls": _reduction_pct(
                rmp_counters["memcpy_calls"],
                RMP_STREAM_PRE_REFACTOR["memcpy_calls"],
            ),
        },
        "scale": scale["counters"],
    }
    measured = {
        "microbench": {"wall_ns": micro["wall_ns"]},
        "rmp_stream": {"wall_ns": rmp["wall_ns"]},
        "scale": {"wall_ns": scale["wall_ns"]},
    }
    return {
        "bench": "buf",
        "config": {
            "micro_rounds": MICRO_ROUNDS,
            "micro_payload_bytes": MICRO_PAYLOAD_BYTES,
            "micro_headroom": MICRO_HEADROOM,
            "rmp_stream_max_fraction": RMP_STREAM_MAX_FRACTION,
            "scale": {"shape": "line", "hubs": 3, "cabs_per_hub": 2, "seed": 4},
        },
        "deterministic": deterministic,
        "measured": measured,
    }


def render_bench_json(report: dict) -> str:
    """Byte-stable serialization (sorted keys, fixed separators, newline)."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"


def default_baseline_path() -> pathlib.Path:
    """``BENCH_buf.json`` at the repo root (next to ``BENCH_scale.json``)."""
    return pathlib.Path(__file__).resolve().parents[3] / "BENCH_buf.json"


def check_against_baseline(committed: dict, fresh: dict) -> List[str]:
    """Regression verdicts: empty means the tree holds the baseline.

    The deterministic microbench and scale counters must match exactly
    (they are pure functions of the op sequence / fleet); the rmp-stream
    copy counters must not *exceed* the committed baseline, must stay
    within ``RMP_STREAM_MAX_FRACTION`` of the pre-refactor measurement,
    and every leg must free every buffer it allocated.
    """
    errors: List[str] = []
    committed_det = committed.get("deterministic", {})
    fresh_det = fresh["deterministic"]
    for leg in ("microbench", "scale"):
        if fresh_det[leg] != committed_det.get(leg):
            errors.append(
                f"{leg} counters diverged from the committed baseline: "
                f"{fresh_det[leg]} != {committed_det.get(leg)}"
            )
    committed_rmp = committed_det.get("rmp_stream", {})
    fresh_rmp = fresh_det["rmp_stream"]
    for key in ("memcpy_bytes", "memcpy_calls"):
        if fresh_rmp[key] > committed_rmp.get(key, 0):
            errors.append(
                f"rmp-stream host.{key} regressed: {fresh_rmp[key]} > "
                f"committed {committed_rmp.get(key, 0)}"
            )
    ceiling = int(
        RMP_STREAM_PRE_REFACTOR["memcpy_bytes"] * RMP_STREAM_MAX_FRACTION
    )
    if fresh_rmp["memcpy_bytes"] > ceiling:
        errors.append(
            f"rmp-stream host.memcpy_bytes {fresh_rmp['memcpy_bytes']} is "
            f"above {ceiling} ({RMP_STREAM_MAX_FRACTION:.0%} of the "
            f"pre-refactor {RMP_STREAM_PRE_REFACTOR['memcpy_bytes']})"
        )
    for leg in ("microbench", "rmp_stream", "scale"):
        counters = fresh_det[leg]
        if counters["buffers_allocated"] != counters["buffers_freed"]:
            errors.append(
                f"{leg} leaked buffers: allocated "
                f"{counters['buffers_allocated']}, freed "
                f"{counters['buffers_freed']}"
            )
    return errors


def main(argv: List[str]) -> int:
    """CLI entry: ``python -m repro bench buf [--check | --write] [--json F]``."""
    import sys

    check = write = False
    json_path: pathlib.Path = default_baseline_path()
    arguments = list(argv)
    while arguments:
        arg = arguments.pop(0)
        if arg == "--check":
            check = True
        elif arg == "--write":
            write = True
        elif arg == "--json":
            if not arguments:
                print("--json requires a path", file=sys.stderr)
                return 2
            json_path = pathlib.Path(arguments.pop(0))
        else:
            print(f"unknown option {arg!r}", file=sys.stderr)
            return 2
    if check and json_path == default_baseline_path():
        # Deprecation shim: the unified scenario gate owns this check now.
        from repro.scenario.gate import run_gate
        from repro.scenario.model import load_scenario

        print(
            "note: `bench buf --check` delegates to the unified gate; prefer "
            "`python -m repro bench buf --check`",
            file=sys.stderr,
        )
        try:
            scenario = load_scenario("buf")
        except FileNotFoundError:
            print("no committed scenarios/buf.toml", file=sys.stderr)
            return 2
        result = run_gate(scenario)
        if not result.report:
            for error in result.errors:
                print(error, file=sys.stderr)
            return 2
        for error in result.errors:
            print(f"REGRESSION: {error}")
        fresh = result.report["deterministic"]
        print(
            f"bench buf: rmp-stream host.memcpy_bytes "
            f"{fresh['rmp_stream']['memcpy_bytes']} "
            f"({fresh['rmp_stream_reduction_pct']['memcpy_bytes']}% below "
            f"pre-refactor) — {'FAIL' if result.errors else 'OK'}"
        )
        return 1 if result.errors else 0
    report = run_buf_bench()
    if check:
        try:
            committed = json.loads(json_path.read_text())
        except FileNotFoundError:
            print(f"no committed baseline at {json_path}", file=sys.stderr)
            return 2
        errors = check_against_baseline(committed, report)
        for error in errors:
            print(f"REGRESSION: {error}")
        reduction = report["deterministic"]["rmp_stream_reduction_pct"]
        print(
            f"bench buf: rmp-stream host.memcpy_bytes "
            f"{report['deterministic']['rmp_stream']['memcpy_bytes']} "
            f"({reduction['memcpy_bytes']}% below pre-refactor) — "
            f"{'FAIL' if errors else 'OK'}"
        )
        return 1 if errors else 0
    if write:
        json_path.write_text(render_bench_json(report))
        print(f"wrote {json_path}")
        return 0
    print(render_bench_json(report), end="")
    return 0
