"""repro.buf: the zero-copy buffer plane (paper Sec. 3.3, host side).

:class:`PacketBuffer` + :class:`BufView` carry packet bytes through the
data path as refcounted views instead of materialized byte strings;
:class:`CopyMeter` makes the host copies that remain measurable
(``host.memcpy_bytes`` in the telemetry plane).  See docs/buffers.md.
"""

from repro.buf.accounting import CopyMeter
from repro.buf.packet import BufView, PacketBuffer

__all__ = ["BufView", "CopyMeter", "PacketBuffer"]
