"""Refcounted packet buffers and zero-copy views (paper Sec. 3.3 discipline).

The paper's buffer management avoids data copies end to end: messages are
adjusted in place, headers are stripped and prepended "without copying",
and buffer ownership moves between layers by reference.  This module is
the host-side analogue for the reproduction's own hot path:

* :class:`PacketBuffer` — one contiguous backing store with refcounted
  ownership.  Allocation reserves *headroom* (and optionally tailroom)
  around the payload window so lower layers can prepend their headers
  into memory that already exists.
* :class:`BufView` — an (offset, length) window over a buffer.  ``prepend``
  / ``strip`` / ``slice`` return new windows over the *same* storage;
  ``mv()`` exposes the window as a :class:`memoryview` for checksum and
  CRC code, ``struct.unpack``, FIFO chunking, and region writes — none of
  which need a materialized ``bytes``.

Ownership: a view handed across a layer boundary carries one reference.
``retain()`` adds a reference (e.g. exporting a payload into a cluster
:class:`~repro.hub.network.Handoff` while the local frame is released);
``release()`` drops one, and the last release frees the storage.  Views
used after the last release raise :class:`~repro.errors.BufError` *and*
report through the heap sanitizer's use-after-free machinery when one is
attached, so aliasing bugs are loud in sanitized runs.

Host copies that do happen (``fill_from``, ``prepend``, ``tobytes``) are
counted on the owning system's :class:`~repro.buf.accounting.CopyMeter`;
see docs/buffers.md for the simulated-cost vs. host-copy distinction.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.errors import BufError

__all__ = ["BufView", "PacketBuffer"]

#: What PacketBuffer.wrap adopts without copying.
_WRAPPABLE = (bytearray, bytes, memoryview)


class PacketBuffer:
    """Refcounted backing storage for one packet's bytes."""

    __slots__ = ("storage", "refcount", "meter", "sanitizer", "label")

    def __init__(self, storage, meter=None, sanitizer=None, label: str = "buf"):
        self.storage = storage
        self.refcount = 1
        #: Optional repro.buf.accounting.CopyMeter; one attribute test when
        #: detached (matching the sanitizer/tracer wiring convention).
        self.meter = meter
        #: Optional repro.analysis.sanitizers.Sanitizer for UAF reporting.
        self.sanitizer = sanitizer
        self.label = label
        if meter is not None:
            meter.on_buffer_alloc()

    # -- construction --------------------------------------------------------

    @classmethod
    def alloc(
        cls,
        size: int,
        headroom: int = 0,
        tailroom: int = 0,
        meter=None,
        sanitizer=None,
        label: str = "buf",
    ) -> "BufView":
        """Fresh zeroed storage with reserved headroom; returns the payload view.

        The view covers ``[headroom, headroom + size)`` so ``prepend`` can
        grow the window leftward into memory that already exists instead of
        reallocating and copying.
        """
        if size < 0 or headroom < 0 or tailroom < 0:
            raise BufError(
                f"{label}: bad alloc (size={size}, headroom={headroom}, "
                f"tailroom={tailroom})"
            )
        storage = bytearray(headroom + size + tailroom)
        buffer = cls(storage, meter=meter, sanitizer=sanitizer, label=label)
        return BufView(buffer, headroom, size)

    @classmethod
    def wrap(
        cls, data, meter=None, sanitizer=None, label: str = "buf"
    ) -> "BufView":
        """Adopt existing bytes-like storage without copying; view the whole."""
        if not isinstance(data, _WRAPPABLE):
            raise BufError(f"{label}: cannot wrap {type(data).__name__}")
        buffer = cls(data, meter=meter, sanitizer=sanitizer, label=label)
        return BufView(buffer, 0, len(data))

    # -- ownership -----------------------------------------------------------

    @property
    def freed(self) -> bool:
        return self.refcount <= 0

    def retain(self) -> None:
        """Add one reference (the caller now co-owns the storage)."""
        if self.refcount <= 0:
            raise BufError(f"{self.label}: retain after free")
        self.refcount += 1

    def release(self) -> None:
        """Drop one reference; the last release frees the storage."""
        if self.refcount <= 0:
            raise BufError(f"{self.label}: release after free (double free)")
        self.refcount -= 1
        if self.refcount == 0:
            self.storage = None
            if self.meter is not None:
                self.meter.on_buffer_free()

    def _live_storage(self, view_length: int):
        """The storage, or a loud use-after-free (sanitizer report + raise)."""
        if self.refcount <= 0 or self.storage is None:
            if self.sanitizer is not None:
                self.sanitizer.on_buffer_use_after_free(self.label, view_length)
            raise BufError(
                f"{self.label}: view of {view_length} bytes used after the "
                f"buffer was freed"
            )
        return self.storage

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        size = len(self.storage) if self.storage is not None else 0
        return f"<PacketBuffer {self.label!r} {size}B refs={self.refcount}>"


class BufView:
    """A zero-copy (offset, length) window over a :class:`PacketBuffer`."""

    __slots__ = ("buffer", "offset", "length")

    def __init__(self, buffer: PacketBuffer, offset: int, length: int):
        self.buffer = buffer
        self.offset = offset
        self.length = length

    # -- the memoryview surface ----------------------------------------------

    def mv(self) -> memoryview:
        """The window as a memoryview (CRC, checksums, struct, writes)."""
        storage = self.buffer._live_storage(self.length)
        return memoryview(storage)[self.offset : self.offset + self.length]

    def tobytes(self) -> bytes:
        """Materialize the window (one counted host copy).

        This is the *only* sanctioned way to turn a view back into bytes —
        reserved for true process boundaries (cluster hand-off pickling).
        """
        # The buffer plane's single materialization primitive: every bytes()
        # here is deliberate, counted, and a process-boundary copy.
        data = bytes(self.mv())  # nectarlint: disable=NB201
        meter = self.buffer.meter
        if meter is not None:
            meter.count(self.length)
        return data

    # -- zero-copy window algebra ---------------------------------------------

    def prepend(self, data) -> "BufView":
        """Grow the window leftward into headroom and write ``data`` there.

        Raises :class:`BufError` when the headroom cannot hold ``data`` —
        never silently reallocates or copies the payload.
        """
        nbytes = len(data)
        storage = self.buffer._live_storage(self.length)
        if nbytes > self.offset:
            raise BufError(
                f"{self.buffer.label}: prepend of {nbytes} bytes exceeds the "
                f"{self.offset} bytes of reserved headroom"
            )
        start = self.offset - nbytes
        storage[start : self.offset] = data
        meter = self.buffer.meter
        if meter is not None:
            meter.count(nbytes)
        return BufView(self.buffer, start, self.length + nbytes)

    def strip(self, nbytes: int) -> "BufView":
        """Drop ``nbytes`` of prefix (header stripping) without copying."""
        if nbytes < 0 or nbytes > self.length:
            raise BufError(
                f"{self.buffer.label}: strip of {nbytes} on a "
                f"{self.length}-byte view"
            )
        return BufView(self.buffer, self.offset + nbytes, self.length - nbytes)

    def strip_back(self, nbytes: int) -> "BufView":
        """Drop ``nbytes`` of suffix without copying."""
        if nbytes < 0 or nbytes > self.length:
            raise BufError(
                f"{self.buffer.label}: strip_back of {nbytes} on a "
                f"{self.length}-byte view"
            )
        return BufView(self.buffer, self.offset, self.length - nbytes)

    def slice(self, offset: int, length: Optional[int] = None) -> "BufView":
        """A sub-window ``[offset, offset + length)`` of this view."""
        if length is None:
            length = self.length - offset
        if offset < 0 or length < 0 or offset + length > self.length:
            raise BufError(
                f"{self.buffer.label}: slice [{offset}, {offset + length}) "
                f"outside a {self.length}-byte view"
            )
        return BufView(self.buffer, self.offset + offset, length)

    # -- the one deliberate copy in ------------------------------------------

    def fill_from(self, data, at: int = 0) -> "BufView":
        """Copy ``data`` into the window at ``at`` (one counted host copy).

        This is the materialization point of the send path: the TX DMA
        moving payload bytes out of CAB memory into the frame.
        """
        nbytes = len(data)
        if at < 0 or at + nbytes > self.length:
            raise BufError(
                f"{self.buffer.label}: fill [{at}, {at + nbytes}) outside a "
                f"{self.length}-byte view"
            )
        storage = self.buffer._live_storage(self.length)
        start = self.offset + at
        storage[start : start + nbytes] = data
        meter = self.buffer.meter
        if meter is not None:
            meter.count(nbytes)
        return self

    # -- ownership (delegates to the buffer) ----------------------------------

    def retain(self) -> "BufView":
        """Add a reference for a new co-owner; returns this view."""
        self.buffer.retain()
        return self

    def release(self) -> None:
        """Drop this owner's reference (the last release frees storage)."""
        self.buffer.release()

    # -- sequence protocol (payload[i], len, iteration) ------------------------

    def _index(self, index: int) -> int:
        if index < 0:
            index += self.length
        if not 0 <= index < self.length:
            raise IndexError(
                f"index {index} outside {self.length}-byte view"
            )
        return self.offset + index

    def __len__(self) -> int:
        return self.length

    def __getitem__(self, key) -> Union[int, memoryview]:
        if isinstance(key, slice):
            return self.mv()[key]
        storage = self.buffer._live_storage(self.length)
        return storage[self._index(key)]

    def __setitem__(self, key, value) -> None:
        if isinstance(key, slice):
            raise BufError(
                f"{self.buffer.label}: slice assignment through a view; use "
                f"fill_from for counted copies"
            )
        storage = self.buffer._live_storage(self.length)
        storage[self._index(key)] = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<BufView [{self.offset}, {self.offset + self.length}) of "
            f"{self.buffer!r}>"
        )
