"""Host-level copy accounting for the zero-copy buffer plane.

A :class:`CopyMeter` counts *host* ``memcpy`` traffic — the Python-side
byte copies our implementation performs while simulating the CAB — as
opposed to the *simulated* memcpy cost the cost model charges in
nanoseconds.  The two planes are deliberately distinct: the paper's claim
is about avoided copies on the CAB, ours is about the reproduction itself
not copying payload bytes at every layer boundary (docs/buffers.md).

One meter hangs off each :class:`~repro.system.NectarSystem`
(``system.copy_meter``) and is threaded into the memory regions, the
datalink frame builder, and every :class:`~repro.buf.packet.PacketBuffer`
allocated on that system, so ``host.memcpy_bytes`` in the telemetry plane
measures exactly one simulation's copies.  All counts derive from
simulated traffic, so they are byte-stable across repeated runs with the
same seed — which is what lets ``python -m repro bench buf --check`` gate
on them.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["CopyMeter"]


class CopyMeter:
    """Counts host-level byte copies and packet-buffer lifetimes."""

    __slots__ = (
        "memcpy_bytes",
        "memcpy_calls",
        "buffers_allocated",
        "buffers_freed",
    )

    def __init__(self):
        self.memcpy_bytes = 0
        self.memcpy_calls = 0
        self.buffers_allocated = 0
        self.buffers_freed = 0

    # -- counting hooks (single attribute test when detached) ----------------

    def count(self, nbytes: int) -> None:
        """Record one host copy of ``nbytes`` bytes."""
        self.memcpy_bytes += nbytes
        self.memcpy_calls += 1

    def on_buffer_alloc(self) -> None:
        """A :class:`PacketBuffer` came to life."""
        self.buffers_allocated += 1

    def on_buffer_free(self) -> None:
        """A :class:`PacketBuffer`'s refcount reached zero."""
        self.buffers_freed += 1

    # -- reading -------------------------------------------------------------

    @property
    def live_buffers(self) -> int:
        """Buffers allocated but not yet freed (should be 0 after a run)."""
        return self.buffers_allocated - self.buffers_freed

    def snapshot(self) -> Dict[str, int]:
        """Counter name -> value, in sorted-key order (byte-stable)."""
        return {
            "buffers_allocated": self.buffers_allocated,
            "buffers_freed": self.buffers_freed,
            "memcpy_bytes": self.memcpy_bytes,
            "memcpy_calls": self.memcpy_calls,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CopyMeter {self.memcpy_bytes}B/{self.memcpy_calls} copies, "
            f"{self.live_buffers} live buffers>"
        )
