"""Exception hierarchy for the Nectar reproduction."""

from __future__ import annotations

__all__ = [
    "AddressError",
    "BufError",
    "CABError",
    "ConfigurationError",
    "HeapExhausted",
    "HubError",
    "MailboxError",
    "MemoryFault",
    "NectarError",
    "ProtocolError",
    "RouteError",
    "SyncError",
]


class NectarError(Exception):
    """Base class for all library-specific errors."""


class ConfigurationError(NectarError):
    """Invalid system construction (bad topology, bad parameters)."""


class MemoryFault(NectarError):
    """Access outside a memory region or denied by the protection domain."""


class HeapExhausted(NectarError):
    """The CAB buffer heap cannot satisfy an allocation."""


class MailboxError(NectarError):
    """Misuse of the mailbox interface."""


class SyncError(NectarError):
    """Misuse of the sync (lightweight synchronization) interface."""


class CABError(NectarError):
    """CAB board-level error."""


class HubError(NectarError):
    """HUB crossbar error (bad port, conflicting connection)."""


class RouteError(NectarError):
    """No route, or a malformed source route."""


class AddressError(NectarError):
    """Unknown Nectar node or mailbox address."""


class ProtocolError(NectarError):
    """Malformed packet or protocol state violation."""


class BufError(NectarError):
    """Misuse of the zero-copy buffer plane (repro.buf).

    Raised for view access after the backing :class:`~repro.buf.PacketBuffer`
    was released, ``prepend`` beyond the reserved headroom, out-of-window
    slicing, and refcount over-release.
    """
