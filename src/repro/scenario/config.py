"""A line-tracking parser for the scenario files' TOML subset.

Scenario files are plain TOML restricted to the constructs the schema
needs — ``[section]`` / ``[section.sub]`` headers and ``key = value``
pairs whose values are strings, integers, floats, booleans, or
single-line arrays of those scalars.  Everything in the subset is also
valid TOML, so the files stay readable by ``tomllib`` and external
tooling; parsing them ourselves buys the one thing ``tomllib`` does not
provide: a **line number for every key**, so schema errors can point at
the offending line of the offending file (see
:class:`~repro.scenario.model.Scenario`).

:func:`parse_config` returns ``(data, lines)`` where ``data`` is the
nested ``dict`` a TOML parser would produce and ``lines`` maps each
dotted key path (and section path) to its 1-based line number.
"""

from __future__ import annotations

from typing import Dict, Tuple

__all__ = ["ConfigError", "parse_config"]


class ConfigError(Exception):
    """A scenario-file syntax or schema violation, located to file:line."""

    def __init__(self, path: str, line: int, message: str):
        self.path = path
        self.line = line
        self.message = message
        super().__init__(f"{path}:{line}: {message}")


def _strip_comment(text: str) -> str:
    """Drop a trailing ``#`` comment, respecting double-quoted strings."""
    in_string = False
    for index, char in enumerate(text):
        if char == '"':
            in_string = not in_string
        elif char == "#" and not in_string:
            return text[:index]
    return text


_BARE_KEY_OK = set("abcdefghijklmnopqrstuvwxyz0123456789_-")


def _valid_key(key: str) -> bool:
    return bool(key) and all(char in _BARE_KEY_OK for char in key.lower())


def _parse_scalar(token: str, path: str, line: int):
    """One scalar value: string, bool, integer, or float."""
    token = token.strip()
    if not token:
        raise ConfigError(path, line, "empty value")
    if token.startswith('"'):
        if len(token) < 2 or not token.endswith('"') or token.count('"') != 2:
            raise ConfigError(path, line, f"malformed string {token!r}")
        return token[1:-1]
    if token == "true":
        return True
    if token == "false":
        return False
    sign_stripped = token[1:] if token[0] in "+-" else token
    if sign_stripped.isdigit():
        return int(token)
    try:
        return float(token)
    except ValueError:
        raise ConfigError(
            path,
            line,
            f"unparseable value {token!r} (expected a string in double "
            f"quotes, an integer, a float, true/false, or [list, ...])",
        ) from None


def _split_list(body: str, path: str, line: int) -> list:
    """The comma-separated items of a single-line ``[...]`` array."""
    items = []
    depth_guard = body.strip()
    if "[" in depth_guard:
        raise ConfigError(path, line, "nested arrays are not supported")
    if not depth_guard:
        return items
    for token in depth_guard.split(","):
        if token.strip() == "":
            raise ConfigError(path, line, "empty array element")
        items.append(_parse_scalar(token, path, line))
    return items


def _parse_value(text: str, path: str, line: int):
    text = text.strip()
    if text.startswith("["):
        if not text.endswith("]"):
            raise ConfigError(
                path, line, "arrays must open and close on one line"
            )
        return _split_list(text[1:-1], path, line)
    return _parse_scalar(text, path, line)


def _enter_section(
    data: dict, parts: list, path: str, line: int
) -> dict:
    """Create/descend to the table named by the header parts."""
    table = data
    for part in parts:
        existing = table.get(part)
        if existing is None:
            existing = table[part] = {}
        elif not isinstance(existing, dict):
            raise ConfigError(
                path, line, f"section [{'.'.join(parts)}] collides with a key"
            )
        table = existing
    return table


def parse_config(text: str, path: str = "<config>") -> Tuple[dict, Dict[str, int]]:
    """Parse scenario TOML; returns ``(data, line-number index)``.

    ``lines`` maps every dotted key path and section path to the line it
    appeared on, enabling file/line schema errors downstream.
    """
    data: dict = {}
    lines: Dict[str, int] = {}
    section_parts: list = []
    table = data
    for number, raw in enumerate(text.splitlines(), start=1):
        stripped = _strip_comment(raw).strip()
        if not stripped:
            continue
        if stripped.startswith("["):
            if stripped.startswith("[["):
                raise ConfigError(
                    path, number, "arrays of tables ([[...]]) are not supported"
                )
            if not stripped.endswith("]"):
                raise ConfigError(path, number, f"malformed header {stripped!r}")
            header = stripped[1:-1].strip()
            parts = [part.strip() for part in header.split(".")]
            if not all(_valid_key(part) for part in parts):
                raise ConfigError(path, number, f"malformed header {stripped!r}")
            dotted = ".".join(parts)
            if dotted in lines:
                raise ConfigError(path, number, f"duplicate section [{dotted}]")
            lines[dotted] = number
            section_parts = parts
            table = _enter_section(data, parts, path, number)
            continue
        if "=" not in stripped:
            raise ConfigError(
                path, number, f"expected 'key = value', got {stripped!r}"
            )
        key, _, value_text = stripped.partition("=")
        key = key.strip()
        if not _valid_key(key):
            raise ConfigError(path, number, f"malformed key {key!r}")
        if key in table:
            raise ConfigError(path, number, f"duplicate key {key!r}")
        table[key] = _parse_value(value_text, path, number)
        lines[".".join(section_parts + [key])] = number
    return data, lines
