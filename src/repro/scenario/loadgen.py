"""The ``load`` scenario kind: a closed-loop multi-user capacity workload.

Laminar-style capacity methodology (PAPERS.md): rather than a single
operating point, report the **curve** — offered load (concurrent users)
against p50/p99 latency and delivered throughput.  Each user is a
closed-loop datagram ping-pong client on CAB ``a`` echoed by CAB ``b``
through one HUB; as users contend for the CAB CPUs and the fiber, tail
latency rises and per-user throughput flattens, which is exactly the
shape a capacity sweep exists to expose.

Everything reported from :func:`run_load` derives from simulated
quantities (integer nanoseconds, byte counts, event counts), so a sweep
over ``users`` is byte-stable run to run — the property the committed
``BENCH_load.json`` gate pins.
"""

from __future__ import annotations

from typing import Generator

from repro.model.stats import LatencyRecorder
from repro.system import NectarSystem
from repro.units import seconds

__all__ = ["run_load"]

_LIMIT = seconds(120)

#: Datagram port bases; user ``u`` binds client port BASE_A+u on CAB a and
#: echo port BASE_B+u on CAB b, keeping every user's traffic separable.
_BASE_A = 100
_BASE_B = 600


def run_load(
    users: int = 1,
    messages: int = 16,
    payload_bytes: int = 128,
    warmup: int = 2,
) -> dict:
    """Drive ``users`` concurrent ping-pong clients; return the point record.

    Returns a dict of deterministic series values for one operating
    point: message count, delivered payload bytes, simulated time,
    p50/p99/mean round-trip latency (us), throughput (Mbit/s of payload
    delivered back to the clients), and the engine's event count.
    """
    if users < 1:
        raise ValueError("users must be >= 1")
    if messages <= warmup:
        raise ValueError("messages must exceed the warmup count")
    system = NectarSystem()
    hub = system.add_hub("hub0")
    node_a = system.add_node("cab-a", hub, 0)
    node_b = system.add_node("cab-b", hub, 1)
    payload = b"\xA5" * payload_bytes

    recorder = LatencyRecorder("load")
    done = system.sim.event()
    finished = [0]
    delivered = [0]

    def client(user: int, inbox) -> Generator:
        for index in range(messages):
            start = system.now
            yield from node_a.datagram.send(
                _BASE_A + user, node_b.node_id, _BASE_B + user, payload
            )
            message = yield from inbox.begin_get()
            delivered[0] += len(message.read())
            yield from inbox.end_get(message)
            if index >= warmup:
                recorder.record(system.now - start)
        finished[0] += 1
        if finished[0] == users:
            done.succeed()

    def echo(user: int, inbox) -> Generator:
        for _index in range(messages):
            message = yield from inbox.begin_get()
            data = message.read()
            yield from inbox.end_get(message)
            yield from node_b.datagram.send(
                _BASE_B + user, node_a.node_id, _BASE_A + user, data
            )

    for user in range(users):
        a_inbox = node_a.runtime.mailbox(f"load-a-{user}")
        b_inbox = node_b.runtime.mailbox(f"load-b-{user}")
        node_a.datagram.bind(_BASE_A + user, a_inbox)
        node_b.datagram.bind(_BASE_B + user, b_inbox)
        node_a.runtime.fork_application(client(user, a_inbox), f"load-cl-{user}")
        node_b.runtime.fork_system(echo(user, b_inbox), f"load-echo-{user}")

    system.run_until(done, limit=_LIMIT)
    sim_ns = max(1, system.now)
    # Payload bits echoed back to the clients over the simulated interval.
    throughput_mbps = round(delivered[0] / 2 * 8 * 1e3 / sim_ns, 3)
    return {
        "users": users,
        "messages": users * messages,
        "payload_bytes": payload_bytes,
        "delivered_bytes": delivered[0],
        "events": system.sim.events_scheduled,
        "sim_ns": sim_ns,
        "p50_us": round(recorder.percentile_ns(50) / 1e3, 1),
        "p99_us": round(recorder.percentile_ns(99) / 1e3, 1),
        "mean_us": round(recorder.mean_us, 1),
        "throughput_mbps": throughput_mbps,
    }
