"""``python -m repro bench`` — the unified scenario/benchmark CLI.

Usage::

    python -m repro bench --list                    # committed scenarios
    python -m repro bench <scenario> [--json FILE]  # run, print the report
    python -m repro bench <scenario> --check        # gate vs its baseline
    python -m repro bench <scenario> --write        # refresh its baseline
    python -m repro bench --check-all               # every committed gate

``<scenario>`` is a committed scenario name (a file in ``scenarios/``)
or a path to any ``.toml`` scenario file.  An unknown name lists the
available scenarios and exits 2, like the top-level unknown-experiment
path.  Exit status: 0 on success/clean gate, 1 on regression, 2 on
usage errors.
"""

from __future__ import annotations

import sys
from typing import List, Optional

from repro.scenario.config import ConfigError
from repro.scenario.gate import check_all, run_gate, write_baseline
from repro.scenario.model import (
    Scenario,
    list_scenarios,
    load_scenario,
)
from repro.scenario.runner import KINDS
from repro.scenario.sweep import run_scenario

__all__ = ["main"]


def _print_available(stream) -> None:
    names = list_scenarios()
    if names:
        print("available scenarios:", file=stream)
        for name in names:
            try:
                scenario = load_scenario(name)
                print(f"  {name:16s} {scenario.describe()}", file=stream)
            except ConfigError as error:
                print(f"  {name:16s} INVALID ({error})", file=stream)
    else:
        print("no committed scenarios found", file=stream)
    kinds = ", ".join(sorted(KINDS))
    print(f"kinds: {kinds}", file=stream)


def _run_check_all() -> int:
    results = check_all()
    failures = 0
    for result in results:
        for line in result.verdict_lines():
            prefix = f"{result.scenario.name:12s} "
            print(prefix + line)
        failures += 0 if result.ok else 1
    gated = len(results)
    if failures:
        print(f"bench --check-all: FAIL ({failures}/{gated} gates)")
        return 1
    print(f"bench --check-all: OK ({gated} gates)")
    return 0


def _load(name: str) -> Optional[Scenario]:
    try:
        return load_scenario(name)
    except FileNotFoundError:
        print(f"unknown scenario {name!r}", file=sys.stderr)
        _print_available(sys.stderr)
        return None
    except ConfigError as error:
        print(str(error), file=sys.stderr)
        return None


def main(argv: List[str]) -> int:
    """Entry point for ``python -m repro bench``; returns the exit code."""
    name: Optional[str] = None
    check = write = list_only = do_check_all = False
    json_path: Optional[str] = None
    arguments = list(argv)
    while arguments:
        arg = arguments.pop(0)
        if arg == "--list":
            list_only = True
        elif arg == "--check-all":
            do_check_all = True
        elif arg == "--check":
            check = True
        elif arg == "--write":
            write = True
        elif arg == "--json":
            if not arguments:
                print("--json requires a path", file=sys.stderr)
                return 2
            json_path = arguments.pop(0)
        elif arg.startswith("--"):
            print(f"unknown option {arg!r}", file=sys.stderr)
            return 2
        elif name is None:
            name = arg
        else:
            print(
                f"unexpected argument {arg!r} (one scenario per run)",
                file=sys.stderr,
            )
            return 2

    if list_only:
        _print_available(sys.stdout)
        return 0
    if do_check_all:
        if name is not None or check or write:
            print("--check-all takes no scenario argument", file=sys.stderr)
            return 2
        return _run_check_all()
    if name is None:
        print(
            "usage: python -m repro bench <scenario> [--check | --write] "
            "[--json FILE] | --list | --check-all",
            file=sys.stderr,
        )
        _print_available(sys.stderr)
        return 2
    if check and write:
        print("--check and --write are mutually exclusive", file=sys.stderr)
        return 2
    scenario = _load(name)
    if scenario is None:
        return 2

    from repro.scenario.report import render_json, render_text

    if check:
        result = run_gate(scenario)
        for line in result.verdict_lines():
            stream = sys.stdout if result.ok else sys.stderr
            print(line, file=stream)
        if json_path is not None and result.report:
            with open(json_path, "w") as handle:
                handle.write(render_json(result.report))
        return 0 if result.ok else 1
    if write:
        result = write_baseline(scenario)
        if not result.ok:
            for error in result.errors:
                print(error, file=sys.stderr)
            return 2
        print(f"wrote {result.baseline} ({result.detail()})")
        return 0

    report = run_scenario(scenario)
    sys.stdout.write(render_text(scenario, report))
    if json_path is not None:
        with open(json_path, "w") as handle:
            handle.write(render_json(report))
        print(f"wrote {json_path}")
    return 0
