"""The scenario kind registry: how each scenario kind runs and gates.

A **kind** names one execution plane and declares, in one place:

* its parameter schema (names, types, defaults) — the contract
  :mod:`repro.scenario.model` validates scenario files against;
* ``run(params) -> report`` — a report dict with the repo's standard
  ``config`` / ``deterministic`` / ``measured`` split (byte-identical
  ``deterministic`` across runs; wall-clock quarantined in ``measured``);
* how the report is gated: the committed baseline's default file, its
  format (canonical JSON or a text golden), and the check function
  producing regression verdicts.

The legacy benches keep their own report shapes and check functions
(:mod:`repro.cluster.bench`, :mod:`repro.buf.bench`,
:mod:`repro.cluster.mcast`, :mod:`repro.ops.lab`) — the registry wraps
them, so the unified gate's verdicts are identical to the historical
per-CLI gates.  New kinds (``engine``, ``load``, and the table/figure
drivers) use the generic exact-match check over ``config`` +
``deterministic``.
"""

from __future__ import annotations

import importlib
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

__all__ = ["KINDS", "Kind", "ParamSpec", "generic_check"]


def _wall_ns() -> int:
    # Wall-clock feeds only the quarantined "measured" sections.
    return time.perf_counter_ns()  # nectarlint: disable=ND001


@dataclass(frozen=True)
class ParamSpec:
    """One kind parameter: its type name and default value.

    ``type`` is one of ``int``, ``str``, ``bool``, ``float``,
    ``int_list``, ``str_list``.  Only scalar-typed parameters may be
    swept.
    """

    type: str
    default: object


@dataclass(frozen=True)
class Kind:
    """One scenario kind: schema + runner + gate policy."""

    name: str
    summary: str
    params: Dict[str, ParamSpec]
    run: Callable[[dict], dict]
    check: Callable[[object, dict], List[str]] = field(default=None)  # type: ignore[assignment]
    baseline_default: Optional[str] = None
    #: ``json`` baselines are canonical-JSON reports; ``text`` baselines
    #: are byte-compared goldens (the ops lab's report).
    baseline_format: str = "json"
    summarize: Callable[[dict], str] = field(default=None)  # type: ignore[assignment]


def generic_check(committed: dict, fresh: dict) -> List[str]:
    """Exact-match gate for kinds without a bespoke legacy check.

    The committed configuration must match (a config change is a
    deliberate re-baseline, not a regression), and every deterministic
    value must be identical.  ``measured`` is recorded, never compared.
    """
    errors: List[str] = []
    if fresh.get("config") != committed.get("config"):
        errors.append(
            "config diverged from the committed baseline; re-baseline "
            "deliberately with --write"
        )
        return errors
    committed_det = committed.get("deterministic", {})
    fresh_det = fresh.get("deterministic", {})
    for key in sorted(set(committed_det) | set(fresh_det)):
        if fresh_det.get(key) != committed_det.get(key):
            errors.append(
                f"deterministic[{key!r}] diverged: {fresh_det.get(key)!r} "
                f"!= committed {committed_det.get(key)!r}"
            )
    return errors


# ------------------------------------------------------------ legacy kinds


def _run_scale(params: dict) -> dict:
    from repro.cluster.bench import run_scale_bench
    from repro.cluster.fleet import make_fleet
    from repro.cluster.workload import WorkloadSpec

    fleet = make_fleet(
        params["shape"],
        params["hubs"],
        params["cabs_per_hub"],
        params["hub_ports"],
    )
    return run_scale_bench(
        fleet,
        WorkloadSpec(seed=params["seed"]),
        workers=list(params["workers"]),
        mode=params["mode"],
        skip_reference=params["skip_reference"],
    )


def _check_scale(committed, fresh) -> List[str]:
    from repro.cluster.bench import check_against_baseline

    return check_against_baseline(committed, fresh)


def _summarize_scale(report: dict) -> str:
    workers = report["deterministic"]["workers"]
    return ", ".join(
        f"{count}w={workers[count]['barriers']} barriers"
        for count in sorted(workers, key=int)
    )


def _run_buf(params: dict) -> dict:
    from repro.buf.bench import run_buf_bench

    return run_buf_bench()


def _check_buf(committed, fresh) -> List[str]:
    from repro.buf.bench import check_against_baseline

    return check_against_baseline(committed, fresh)


def _summarize_buf(report: dict) -> str:
    stream = report["deterministic"]["rmp_stream"]
    reduction = report["deterministic"]["rmp_stream_reduction_pct"]
    return (
        f"rmp-stream host.memcpy_bytes {stream['memcpy_bytes']} "
        f"({reduction['memcpy_bytes']}% below pre-refactor)"
    )


def _run_mcast(params: dict) -> dict:
    from repro.cluster.mcast import run_mcast_bench

    return run_mcast_bench(
        seed=params["seed"],
        messages=params["messages"],
        rounds=params["rounds"],
        workers=list(params["workers"]),
        mode=params["mode"],
    )


def _check_mcast(committed, fresh) -> List[str]:
    from repro.cluster.mcast import check_against_baseline

    return check_against_baseline(committed, fresh)


def _summarize_mcast(report: dict) -> str:
    return f"ratio {report['deterministic']['fanout']['crossing_ratio']}"


def _run_ops(params: dict) -> dict:
    from repro.ops import lab

    start = _wall_ns()
    report = lab.run_lab(params["seed"])
    wall_ns = max(1, _wall_ns() - start)
    return {
        "bench": "ops",
        "config": {"seed": params["seed"]},
        "deterministic": {
            "passed": report.passed,
            "report": report.render() + "\n",
            "score": report.total_score,
        },
        "measured": {"wall_ns": wall_ns},
    }


def _check_ops(committed_text, fresh) -> List[str]:
    errors: List[str] = []
    deterministic = fresh["deterministic"]
    if deterministic["report"] != committed_text:
        errors.append("ops report differs from the committed golden")
    if not deterministic["passed"]:
        errors.append("ops lab verdict is FAIL")
    return errors


def _summarize_ops(report: dict) -> str:
    deterministic = report["deterministic"]
    verdict = "PASS" if deterministic["passed"] else "FAIL"
    return f"score {deterministic['score']}, {verdict}"


# ------------------------------------------------------- engine/load kinds


def _run_engine(params: dict) -> dict:
    from repro.telemetry.observe import run_observe

    start = _wall_ns()
    result = run_observe(
        params["workload"], seed=params["seed"], rounds=params["rounds"] or None
    )
    wall_ns = max(1, _wall_ns() - start)
    events = result.system.sim.events_scheduled
    sim_ns = max(1, result.system.now)
    return {
        "bench": "engine",
        "config": dict(sorted(params.items())),
        "deterministic": {
            "events": events,
            "sim_ns": sim_ns,
            # Simulated events per simulated millisecond: a deterministic
            # density figure; wall events/sec lives under "measured".
            "events_per_sim_ms": round(events * 1e6 / sim_ns, 2),
            "trace_events": len(result.telemetry.recorder.events),
            "metric_series": result.telemetry.metrics.series_count(),
        },
        "measured": {
            "wall_ns": wall_ns,
            "events_per_sec": round(events * 1e9 / wall_ns, 1),
        },
    }


def _run_load(params: dict) -> dict:
    from repro.scenario.loadgen import run_load

    start = _wall_ns()
    point = run_load(
        users=params["users"],
        messages=params["messages"],
        payload_bytes=params["payload_bytes"],
        warmup=params["warmup"],
    )
    wall_ns = max(1, _wall_ns() - start)
    return {
        "bench": "load",
        "config": dict(sorted(params.items())),
        "deterministic": point,
        "measured": {
            "wall_ns": wall_ns,
            "events_per_sec": round(point["events"] * 1e9 / wall_ns, 1),
        },
    }


# ------------------------------------------------------ table/figure kinds


def _driver_run(module_name: str) -> Callable[[dict], dict]:
    def run(params: dict) -> dict:
        module = importlib.import_module(module_name)
        start = _wall_ns()
        result = module.scenario(params)
        wall_ns = max(1, _wall_ns() - start)
        return {
            "bench": result.name,
            "config": result.config,
            "deterministic": {"rows": result.rows, "text": result.text},
            "measured": {"wall_ns": wall_ns},
        }

    return run


def _driver_kind(
    name: str,
    summary: str,
    params: Dict[str, ParamSpec],
    module: Optional[str] = None,
) -> Kind:
    return Kind(
        name=name,
        summary=summary,
        params=params,
        run=_driver_run(f"repro.bench.{module or name}"),
        check=generic_check,
        summarize=lambda report: f"{len(report['deterministic']['rows'])} rows",
    )


_FIG7_SIZES = [16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192]
_FIG8_SIZES = [64, 128, 256, 512, 1024, 2048, 4096, 8192]

KINDS: Dict[str, Kind] = {
    kind.name: kind
    for kind in (
        Kind(
            name="scale",
            summary="sharded fleet simulation: parity + sync counters",
            params={
                "shape": ParamSpec("str", "line"),
                "hubs": ParamSpec("int", 4),
                "cabs_per_hub": ParamSpec("int", 16),
                "hub_ports": ParamSpec("int", 18),
                "seed": ParamSpec("int", 0),
                "workers": ParamSpec("int_list", [1, 4]),
                "mode": ParamSpec("str", "process"),
                "skip_reference": ParamSpec("bool", False),
            },
            run=_run_scale,
            check=_check_scale,
            baseline_default="BENCH_scale.json",
            summarize=_summarize_scale,
        ),
        Kind(
            name="buf",
            summary="zero-copy buffer plane: host-copy counters",
            params={},
            run=_run_buf,
            check=_check_buf,
            baseline_default="BENCH_buf.json",
            summarize=_summarize_buf,
        ),
        Kind(
            name="mcast",
            summary="NMP multicast fan-out + CAB collectives",
            params={
                "seed": ParamSpec("int", 0),
                "messages": ParamSpec("int", 8),
                "rounds": ParamSpec("int", 3),
                "workers": ParamSpec("int_list", [1, 4]),
                "mode": ParamSpec("str", "process"),
            },
            run=_run_mcast,
            check=_check_mcast,
            baseline_default="BENCH_mcast.json",
            summarize=_summarize_mcast,
        ),
        Kind(
            name="ops",
            summary="scored operations lab vs. its report golden",
            params={"seed": ParamSpec("int", 7)},
            run=_run_ops,
            check=_check_ops,
            baseline_default="OPS_baseline.txt",
            baseline_format="text",
            summarize=_summarize_ops,
        ),
        Kind(
            name="engine",
            summary="event-engine speed on an observe workload",
            params={
                "workload": ParamSpec("str", "table1"),
                "seed": ParamSpec("int", 7),
                "rounds": ParamSpec("int", 0),
            },
            run=_run_engine,
            check=generic_check,
            summarize=lambda report: (
                f"{report['deterministic']['events']} events"
            ),
        ),
        Kind(
            name="load",
            summary="closed-loop capacity workload: users vs p50/p99/throughput",
            params={
                "users": ParamSpec("int", 1),
                "messages": ParamSpec("int", 16),
                "payload_bytes": ParamSpec("int", 128),
                "warmup": ParamSpec("int", 2),
            },
            run=_run_load,
            check=generic_check,
            summarize=lambda report: (
                f"p99 {report['deterministic']['p99_us']} us at "
                f"{report['deterministic']['users']} users"
            ),
        ),
        _driver_kind(
            "table1",
            "Table 1 round-trip latencies over the four transports",
            {
                "message_size": ParamSpec("int", 32),
                "rounds": ParamSpec("int", 30),
                "warmup": ParamSpec("int", 5),
            },
        ),
        _driver_kind(
            "fig6",
            "Figure 6 one-way datagram latency breakdown",
            {"message_size": ParamSpec("int", 32)},
        ),
        _driver_kind(
            "fig7",
            "Figure 7 CAB-to-CAB throughput vs message size",
            {
                "sizes": ParamSpec("int_list", list(_FIG7_SIZES)),
                "count": ParamSpec("int", 40),
            },
        ),
        _driver_kind(
            "fig8",
            "Figure 8 host-to-host throughput vs message size",
            {
                "sizes": ParamSpec("int_list", list(_FIG8_SIZES)),
                "count": ParamSpec("int", 30),
            },
        ),
        _driver_kind(
            "micro",
            "micro-cost table vs the paper's numbers",
            {},
            module="microcosts",
        ),
        _driver_kind(
            "ablations",
            "design-choice ablations (upcalls, mailbox modes, checksums)",
            {},
        ),
    )
}
