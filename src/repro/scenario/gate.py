"""The one regression gate over every committed scenario baseline.

``python -m repro bench <scenario> --check`` re-runs the scenario with
its committed configuration and compares the fresh report against the
committed baseline using the kind's own check function — for the legacy
benches that is literally the same ``check_against_baseline`` the
historical per-CLI gates called, so verdicts are identical by
construction.  ``--write`` refreshes the baseline after a deliberate
change.  ``--check-all`` replays **every** committed scenario that names
a baseline (``BENCH_scale.json``, ``BENCH_buf.json``,
``BENCH_mcast.json``, ``OPS_baseline.txt``, ``BENCH_engine.json``,
``BENCH_load.json``, ...) — the single tier-1 entry point that subsumes
the old ``scale --check`` / ``bench buf --check`` / ``mcast --check`` /
``ops --check`` quartet.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import List, Optional

from repro.scenario.model import (
    Scenario,
    list_scenarios,
    load_scenario,
    repo_root,
)
from repro.scenario.runner import KINDS, generic_check
from repro.scenario.sweep import run_scenario

__all__ = ["GateResult", "baseline_path", "check_all", "run_gate", "write_baseline"]


@dataclass
class GateResult:
    """One scenario's gate outcome: report, verdicts, summary detail."""

    scenario: Scenario
    report: dict
    errors: List[str] = field(default_factory=list)
    baseline: Optional[pathlib.Path] = None

    @property
    def ok(self) -> bool:
        """True when every regression verdict came back clean."""
        return not self.errors

    def detail(self) -> str:
        """The kind's one-line summary of the fresh report."""
        kind = KINDS[self.scenario.kind]
        if self.scenario.sweep:
            points = self.report["deterministic"]["points"]
            return f"{len(points)} sweep points"
        if kind.summarize is not None:
            return kind.summarize(self.report)
        return "deterministic section holds"

    def verdict_lines(self) -> List[str]:
        """Printable verdicts: one OK line, or one FAIL line per error."""
        name = self.baseline.name if self.baseline else "(no baseline)"
        if self.ok:
            return [f"OK: {name} deterministic section holds ({self.detail()})"]
        return [f"FAIL: {error}" for error in self.errors]


def baseline_path(scenario: Scenario) -> Optional[pathlib.Path]:
    """The scenario's committed baseline file (repo-root-relative)."""
    if scenario.baseline is None:
        return None
    return repo_root() / scenario.baseline


def _load_baseline(scenario: Scenario, path: pathlib.Path):
    text = path.read_text()
    kind = KINDS[scenario.kind]
    if kind.baseline_format == "text" and not scenario.sweep:
        return text
    return json.loads(text)


def _check(scenario: Scenario, committed, fresh: dict) -> List[str]:
    kind = KINDS[scenario.kind]
    if scenario.sweep:
        # Sweep reports use the assembled shape regardless of kind.
        return generic_check(committed, fresh)
    return kind.check(committed, fresh)


def run_gate(scenario: Scenario) -> GateResult:
    """Run the scenario and gate it against its committed baseline."""
    path = baseline_path(scenario)
    if path is None:
        report = run_scenario(scenario)
        return GateResult(
            scenario,
            report,
            errors=[
                f"scenario {scenario.name!r} names no baseline; add "
                f"'baseline = \"...\"' under [scenario] and --write it"
            ],
        )
    if not path.exists():
        return GateResult(
            scenario,
            {},
            errors=[f"no committed baseline at {path}; create it with --write"],
            baseline=path,
        )
    committed = _load_baseline(scenario, path)
    report = run_scenario(scenario)
    errors = _check(scenario, committed, report)
    return GateResult(scenario, report, errors=errors, baseline=path)


def write_baseline(scenario: Scenario) -> GateResult:
    """Run the scenario and (re)write its committed baseline file."""
    from repro.scenario.report import render_json

    path = baseline_path(scenario)
    if path is None:
        return GateResult(
            scenario,
            {},
            errors=[
                f"scenario {scenario.name!r} names no baseline file to write"
            ],
        )
    report = run_scenario(scenario)
    kind = KINDS[scenario.kind]
    if kind.baseline_format == "text" and not scenario.sweep:
        path.write_text(report["deterministic"]["report"])
    else:
        path.write_text(render_json(report))
    return GateResult(scenario, report, baseline=path)


def check_all() -> List[GateResult]:
    """Gate every committed scenario that names a baseline, sorted by name.

    Scenarios without a baseline (the table/figure drivers) are skipped —
    they have nothing committed to regress against.
    """
    results: List[GateResult] = []
    for name in list_scenarios():
        scenario = load_scenario(name)
        if scenario.baseline is None:
            continue
        results.append(run_gate(scenario))
    return results
