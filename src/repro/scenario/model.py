"""The scenario schema: validation of parsed config into a :class:`Scenario`.

A scenario file has up to three sections::

    [scenario]
    name = "scale"            # required; the scenario's registry name
    kind = "scale"            # required; which execution plane runs it
    baseline = "BENCH_scale.json"   # optional; committed gate file

    [params]                  # optional; kind-specific, validated + defaulted
    seed = 0
    workers = [1, 4]

    [sweep]                   # optional; param name -> list of values
    users = [1, 2, 4, 8]

Validation is strict: an unknown section, an unknown key, a missing
required key, or a type mismatch raises
:class:`~repro.scenario.config.ConfigError` carrying the file and line of
the offending entry, so the error message is directly actionable.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.scenario.config import ConfigError, parse_config

__all__ = [
    "Scenario",
    "list_scenarios",
    "load_scenario",
    "load_scenario_text",
    "resolve",
    "scenarios_dir",
]

_TOP_SECTIONS = ("scenario", "params", "sweep")
_SCENARIO_KEYS = ("name", "kind", "baseline")

#: Python types admitted for each spec type name.
_SCALARS = {"int": int, "str": str, "bool": bool, "float": (int, float)}


def _type_name(value) -> str:
    return type(value).__name__


def _check_scalar(spec_type: str, value) -> bool:
    expected = _SCALARS[spec_type]
    if spec_type in ("int", "bool"):
        # bool is an int subclass; keep the two strictly apart.
        return isinstance(value, expected) and isinstance(value, bool) == (
            spec_type == "bool"
        )
    if spec_type == "float":
        return isinstance(value, expected) and not isinstance(value, bool)
    return isinstance(value, expected)


@dataclass(frozen=True)
class Scenario:
    """A validated scenario: kind + parameters + sweep grid + baseline."""

    name: str
    kind: str
    path: str
    params: Dict[str, object] = field(default_factory=dict)
    sweep: Dict[str, list] = field(default_factory=dict)
    baseline: Optional[str] = None

    def describe(self) -> str:
        """One line for listings: name, kind, sweep size, baseline."""
        points = 1
        for values in self.sweep.values():
            points *= len(values)
        sweep = f", sweep {points} points" if self.sweep else ""
        gate = self.baseline if self.baseline else "no baseline"
        return f"kind={self.kind}{sweep}, gate: {gate}"


def _kind_specs() -> dict:
    from repro.scenario.runner import KINDS

    return KINDS


def _validate_params(
    kind_params: dict,
    given: dict,
    lines: Dict[str, int],
    path: str,
    section: str,
) -> Dict[str, object]:
    resolved = {name: spec.default for name, spec in kind_params.items()}
    for key in sorted(given):
        line = lines.get(f"{section}.{key}", lines.get(section, 1))
        spec = kind_params.get(key)
        if spec is None:
            known = ", ".join(sorted(kind_params)) or "(none)"
            raise ConfigError(
                path, line, f"unknown [{section}] key {key!r}; known: {known}"
            )
        value = given[key]
        if spec.type.endswith("_list"):
            element = spec.type[: -len("_list")]
            if not isinstance(value, list) or not all(
                _check_scalar(element, item) for item in value
            ):
                raise ConfigError(
                    path,
                    line,
                    f"[{section}] {key} must be a list of {element}, "
                    f"got {value!r}",
                )
        elif not _check_scalar(spec.type, value):
            raise ConfigError(
                path,
                line,
                f"[{section}] {key} must be {spec.type}, "
                f"got {_type_name(value)} {value!r}",
            )
        resolved[key] = value
    return resolved


def _validate_sweep(
    kind_params: dict, given: dict, lines: Dict[str, int], path: str
) -> Dict[str, list]:
    sweep: Dict[str, list] = {}
    for key in sorted(given):
        line = lines.get(f"sweep.{key}", lines.get("sweep", 1))
        spec = kind_params.get(key)
        if spec is None:
            known = ", ".join(sorted(kind_params)) or "(none)"
            raise ConfigError(
                path, line, f"unknown [sweep] key {key!r}; known: {known}"
            )
        if spec.type.endswith("_list"):
            raise ConfigError(
                path,
                line,
                f"[sweep] {key}: list-typed parameters cannot be swept",
            )
        values = given[key]
        if not isinstance(values, list) or not values:
            raise ConfigError(
                path, line, f"[sweep] {key} must be a non-empty list of values"
            )
        for value in values:
            if not _check_scalar(spec.type, value):
                raise ConfigError(
                    path,
                    line,
                    f"[sweep] {key} values must be {spec.type}, "
                    f"got {_type_name(value)} {value!r}",
                )
        sweep[key] = list(values)
    return sweep


def load_scenario_text(text: str, path: str = "<scenario>") -> Scenario:
    """Parse + validate scenario TOML text into a :class:`Scenario`."""
    data, lines = parse_config(text, path)
    for section in sorted(data):
        if section not in _TOP_SECTIONS:
            raise ConfigError(
                path,
                lines.get(section, 1),
                f"unknown section [{section}]; known: "
                + ", ".join(_TOP_SECTIONS),
            )
        if not isinstance(data[section], dict):
            raise ConfigError(
                path,
                lines.get(section, 1),
                f"{section!r} must be a [{section}] section, not a key",
            )
    head = data.get("scenario")
    if not isinstance(head, dict):
        raise ConfigError(path, 1, "missing required [scenario] section")
    for key in sorted(head):
        if key not in _SCENARIO_KEYS:
            raise ConfigError(
                path,
                lines.get(f"scenario.{key}", lines.get("scenario", 1)),
                f"unknown [scenario] key {key!r}; known: "
                + ", ".join(_SCENARIO_KEYS),
            )
    for key in ("name", "kind"):
        if key not in head:
            raise ConfigError(
                path,
                lines.get("scenario", 1),
                f"[scenario] is missing required key {key!r}",
            )
        if not isinstance(head[key], str):
            raise ConfigError(
                path,
                lines.get(f"scenario.{key}", 1),
                f"[scenario] {key} must be a string",
            )
    baseline = head.get("baseline")
    if baseline is not None and not isinstance(baseline, str):
        raise ConfigError(
            path,
            lines.get("scenario.baseline", 1),
            "[scenario] baseline must be a string (a repo-root-relative file)",
        )
    kinds = _kind_specs()
    kind = head["kind"]
    if kind not in kinds:
        raise ConfigError(
            path,
            lines.get("scenario.kind", 1),
            f"unknown kind {kind!r}; known: " + ", ".join(sorted(kinds)),
        )
    kind_params = kinds[kind].params
    params = _validate_params(
        kind_params, data.get("params", {}), lines, path, "params"
    )
    sweep = _validate_sweep(kind_params, data.get("sweep", {}), lines, path)
    if baseline is None:
        baseline = kinds[kind].baseline_default
    return Scenario(
        name=head["name"],
        kind=kind,
        path=path,
        params=params,
        sweep=sweep,
        baseline=baseline,
    )


def repo_root() -> pathlib.Path:
    """The repository root (the directory holding ``scenarios/``)."""
    return pathlib.Path(__file__).resolve().parents[3]


def scenarios_dir() -> pathlib.Path:
    """The committed scenario directory: ``scenarios/`` at the repo root."""
    return repo_root() / "scenarios"


def list_scenarios() -> List[str]:
    """Sorted names of every committed scenario file."""
    directory = scenarios_dir()
    if not directory.is_dir():
        return []
    return sorted(entry.stem for entry in directory.glob("*.toml"))


def resolve(name_or_path: str) -> pathlib.Path:
    """Map a scenario name or explicit ``.toml`` path to its file.

    Raises :class:`FileNotFoundError` when neither resolution works.
    """
    candidate = pathlib.Path(name_or_path)
    if candidate.suffix == ".toml" and candidate.is_file():
        return candidate
    committed = scenarios_dir() / f"{name_or_path}.toml"
    if committed.is_file():
        return committed
    raise FileNotFoundError(name_or_path)


def load_scenario(name_or_path: str) -> Scenario:
    """Load and validate a scenario by registry name or file path."""
    path = resolve(name_or_path)
    return load_scenario_text(path.read_text(), str(path))
