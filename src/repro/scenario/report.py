"""Byte-stable report rendering for scenario runs.

Two renderings, both deterministic functions of the report dict:

* :func:`render_json` — the canonical JSON every committed ``BENCH_*``
  baseline uses (sorted keys, two-space indent, trailing newline);
* :func:`render_text` — the human-facing report.  For sweeps this is the
  **capacity-curve table**: one row per sweep point, sweep keys first,
  then every scalar deterministic series (events, sim-time, p50/p99
  latency, throughput, copy/crossing counters — whatever the kind
  emits).  Only deterministic values are rendered, so the text of a
  double run is byte-identical; wall-clock numbers stay in the JSON
  report's quarantined ``measured`` section.
"""

from __future__ import annotations

import json
from typing import List

from repro.bench.harness import format_table
from repro.scenario.model import Scenario

__all__ = ["render_json", "render_text"]


def render_json(report: dict) -> str:
    """Canonical serialization (sorted keys, fixed indent, newline)."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"


def _is_scalar(value) -> bool:
    return isinstance(value, (int, float, str, bool)) or value is None


def _scalar_columns(points: List[dict], exclude: List[str]) -> List[str]:
    """Sorted union of scalar series names across the sweep points."""
    names = set()
    for point in points:
        names.update(
            key
            for key, value in point.items()
            if key != "point" and key not in exclude and _is_scalar(value)
        )
    return sorted(names)


def _format_cell(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    return str(value)


def _sweep_table(scenario: Scenario, report: dict) -> str:
    points = report["deterministic"]["points"]
    sweep_keys = sorted(scenario.sweep)
    columns = _scalar_columns(points, exclude=sweep_keys)
    headers = sweep_keys + columns
    rows = [
        [_format_cell(entry["point"].get(key)) for key in sweep_keys]
        + [_format_cell(entry.get(name)) for name in columns]
        for entry in points
    ]
    title = (
        f"capacity curve: {scenario.name} "
        f"(kind {scenario.kind}, {len(points)} points)"
    )
    return format_table(title, headers, rows)


def _single_report(scenario: Scenario, report: dict) -> str:
    deterministic = report["deterministic"]
    if isinstance(deterministic.get("text"), str):
        # Table/figure drivers already render their own report.
        return deterministic["text"].rstrip("\n") + "\n"
    if isinstance(deterministic.get("report"), str):
        # The ops lab's report golden is the report.
        return deterministic["report"].rstrip("\n") + "\n"
    rows = [
        (key, _format_cell(deterministic[key]))
        for key in sorted(deterministic)
        if _is_scalar(deterministic[key])
    ]
    if rows:
        title = f"scenario: {scenario.name} (kind {scenario.kind})"
        return format_table(title, ["series", "value"], rows) + "\n"
    # Nothing scalar to tabulate (the legacy nested benches): canonical JSON.
    return render_json(report)


def render_text(scenario: Scenario, report: dict) -> str:
    """The byte-stable text report (capacity curve for sweeps)."""
    if scenario.sweep:
        return _sweep_table(scenario, report) + "\n"
    return _single_report(scenario, report)
