"""The declarative scenario/benchmark harness behind ``python -m repro bench``.

Every benchmark in the tree — the paper tables and figures, the sharded
fleet bench, the zero-copy buffer bench, the multicast bench, the ops lab,
and the capacity-curve workloads — is described by one **scenario file**:
a small TOML document naming a *kind* (which execution plane runs it),
its parameters, an optional parameter **sweep** grid, and the committed
baseline it is gated against.  The harness supplies, uniformly:

* a validated schema with actionable file/line errors
  (:mod:`repro.scenario.config`, :mod:`repro.scenario.model`);
* a runner that executes any scenario through the existing
  system/cluster/faults/ops planes (:mod:`repro.scenario.runner`);
* deterministic sweep expansion and byte-stable capacity-curve reports —
  events/sec, sim-time, p50/p99 latency, throughput, copy/crossing
  counters (:mod:`repro.scenario.sweep`, :mod:`repro.scenario.report`);
* one regression gate over every committed baseline
  (:mod:`repro.scenario.gate`): ``python -m repro bench <scenario>
  [--check | --write]`` and ``python -m repro bench --check-all``.

Committed scenarios live in ``scenarios/`` at the repository root; see
``docs/benchmarks.md`` for the format and the baseline-gating workflow.
"""

from repro.scenario.config import ConfigError, parse_config
from repro.scenario.model import Scenario, load_scenario, scenarios_dir

__all__ = [
    "ConfigError",
    "Scenario",
    "load_scenario",
    "parse_config",
    "scenarios_dir",
]
