"""Deterministic sweep expansion and scenario execution.

:func:`expand` turns a scenario's ``[sweep]`` grid into an explicit,
deterministic run matrix: sweep keys in sorted order, values in the order
the scenario file lists them, row-major cartesian product.  Expanding the
same scenario twice yields the identical matrix — the property
``tests/test_scenario_config.py`` pins.

:func:`run_scenario` executes the matrix through the scenario's kind
(:mod:`repro.scenario.runner`).  A scenario without a sweep returns the
kind's native report unchanged (so the legacy gates see their historical
shapes); a sweep returns one assembled report whose ``deterministic``
section is the list of per-point deterministic sections — the capacity
curve — with wall-clock quarantined under ``measured`` as everywhere
else in the tree.
"""

from __future__ import annotations

from typing import Dict, List

from repro.scenario.model import Scenario
from repro.scenario.runner import KINDS

__all__ = ["expand", "run_scenario"]


def expand(scenario: Scenario) -> List[Dict[str, object]]:
    """The explicit run matrix: one param-override dict per sweep point."""
    points: List[Dict[str, object]] = [{}]
    for key in sorted(scenario.sweep):
        points = [
            dict(point, **{key: value})
            for point in points
            for value in scenario.sweep[key]
        ]
    return points


def run_scenario(scenario: Scenario) -> dict:
    """Execute the scenario; returns its (single or sweep) report dict."""
    kind = KINDS[scenario.kind]
    if not scenario.sweep:
        return kind.run(dict(scenario.params))
    runs = []
    for point in expand(scenario):
        params = dict(scenario.params)
        params.update(point)
        runs.append((point, kind.run(params)))
    return {
        "bench": scenario.kind,
        "scenario": scenario.name,
        "config": {
            "params": {
                key: scenario.params[key] for key in sorted(scenario.params)
            },
            "sweep": {
                key: list(scenario.sweep[key]) for key in sorted(scenario.sweep)
            },
        },
        "deterministic": {
            "points": [
                dict({"point": point}, **run["deterministic"])
                for point, run in runs
            ]
        },
        "measured": {
            "points": [
                dict({"point": point}, **run["measured"])
                for point, run in runs
            ]
        },
    }
