"""Canned chaos campaigns: named fault plans parameterized only by a seed.

Each scenario is a function ``seed -> FaultPlan`` registered in
:data:`SCENARIOS`.  The parameters are tuned so every reliable transport's
recovery path actually fires (retransmits, CRC drops, duplicate
suppression) while staying inside the bounded-retry limits — a canned
campaign is supposed to *pass* its invariants, proving recovery works, not
to starve the protocols to death.

* ``lossy-link`` — independent per-frame drop + corruption on every link
  for the whole run: the bread-and-butter loss-recovery workout.
* ``bursty-corruption`` — short windows in which most frames are corrupted
  (CRC storms), clean air in between.
* ``flapping-cab`` — CAB ``cab-b`` blacks out twice (crash/restart); a
  light background drop keeps the in-between interesting.
* ``overloaded-fifo`` — ``cab-b``'s input FIFO is squeezed to a sliver and
  ``cab-a``'s link stalls per frame, exercising back-pressure; light
  mailbox loss at ``tcp-input`` models host-interface pressure.
* ``multicast-storm`` — directed drops on individual fan-out branches
  (``cab-a->cab-b``, ``cab-a->cab-d``) so *different* multicast members
  miss *different* replicas, plus a corruption window at source egress:
  the NACK-suppression and repair-multicast workout.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.errors import ConfigurationError
from repro.faults.plan import (
    CORRUPT,
    CRASH,
    DROP,
    MBOX_LOSE,
    SQUEEZE,
    STALL,
    FaultPlan,
    FaultSpec,
)
from repro.units import ms, us

__all__ = ["SCENARIOS", "build"]


def lossy_link(seed: int) -> FaultPlan:
    """Per-frame seeded drop + corruption on every link, whole run."""
    return FaultPlan(
        seed=seed,
        specs=(
            FaultSpec(kind=DROP, where="*", probability=0.06),
            FaultSpec(kind=CORRUPT, where="*", probability=0.06),
        ),
    )


def bursty_corruption(seed: int) -> FaultPlan:
    """Two corruption storms; most frames inside a burst are mangled."""
    return FaultPlan(
        seed=seed,
        specs=(
            FaultSpec(
                kind=CORRUPT, where="*", probability=0.7, window_ns=(us(200), ms(1))
            ),
            FaultSpec(
                kind=CORRUPT, where="*", probability=0.7, window_ns=(ms(2), ms(3))
            ),
            FaultSpec(kind=DROP, where="*", probability=0.02),
        ),
    )


def flapping_cab(seed: int) -> FaultPlan:
    """``cab-b`` blacks out twice; light background drop elsewhere.

    The blackout windows sit inside the first few hundred microseconds,
    where the campaign workloads are busiest, so each outage actually eats
    in-flight frames rather than arriving after the traffic has finished.
    """
    return FaultPlan(
        seed=seed,
        specs=(
            FaultSpec(kind=CRASH, where="cab-b", window_ns=(us(200), us(600))),
            FaultSpec(kind=CRASH, where="cab-b", window_ns=(ms(2), us(2600))),
            FaultSpec(kind=DROP, where="*", probability=0.03),
        ),
    )


def overloaded_fifo(seed: int) -> FaultPlan:
    """Back-pressure: squeezed input FIFO, stalled link, mailbox loss."""
    return FaultPlan(
        seed=seed,
        specs=(
            FaultSpec(
                kind=SQUEEZE,
                where="cab-b.fiber-in",
                squeeze_bytes=28 * 1024,
                window_ns=(ms(1), ms(4)),
            ),
            FaultSpec(kind=STALL, where="cab-a", stall_ns=us(40), probability=0.5),
            FaultSpec(kind=MBOX_LOSE, where="tcp-input", probability=0.05),
            FaultSpec(kind=CORRUPT, where="*", probability=0.04),
        ),
    )


def multicast_storm(seed: int) -> FaultPlan:
    """Branch-directed replica drops + an egress corruption window.

    The directed ``src->dst`` drop specs fire on individual crossbar
    fan-out branches, so one multicast frame can reach ``cab-c`` while its
    siblings' replicas vanish — exactly the asymmetric loss NORM-style
    NACK suppression and repair multicast exist for.  A light undirected
    drop keeps the unicast workloads honest too.
    """
    return FaultPlan(
        seed=seed,
        specs=(
            FaultSpec(kind=DROP, where="cab-a->cab-b", probability=0.3),
            FaultSpec(kind=DROP, where="cab-a->cab-d", probability=0.2),
            FaultSpec(
                kind=CORRUPT, where="*", probability=0.4, window_ns=(us(400), ms(1))
            ),
            FaultSpec(kind=DROP, where="*", probability=0.02),
        ),
    )


#: Scenario name -> plan builder.  Names are CLI-visible.
SCENARIOS: Dict[str, Callable[[int], FaultPlan]] = {
    "lossy-link": lossy_link,
    "bursty-corruption": bursty_corruption,
    "flapping-cab": flapping_cab,
    "overloaded-fifo": overloaded_fifo,
    "multicast-storm": multicast_storm,
}


def build(name: str, seed: int) -> FaultPlan:
    """Build the named scenario's plan for ``seed`` (raises on unknown name)."""
    if name not in SCENARIOS:
        raise ConfigurationError(
            f"unknown chaos scenario {name!r}; choose from {sorted(SCENARIOS)}"
        )
    return SCENARIOS[name](seed)
