"""Deterministic, seed-driven fault injection for the Nectar simulation.

The paper's central claim is that the CAB runtime hosts *multiple*
transports whose recovery machinery — RMP retransmit-on-timeout, CRC drops
at the datalink, TCP loss recovery — coexists on one NIC.  This package
forces those paths to actually execute:

* :mod:`repro.faults.plan` — the declarative model: a :class:`FaultPlan`
  is a master seed plus a list of :class:`FaultSpec` records (what kind of
  fault, where, in which simulated-time window, how often).
* :mod:`repro.faults.injector` — the :class:`Injector` that evaluates a
  plan at the instrumented hook points (fiber/link egress, datalink
  receive, FIFO back-pressure, mailbox queueing, whole-CAB crash windows).
* :mod:`repro.faults.scenarios` — canned campaigns (``lossy-link``,
  ``bursty-corruption``, ``flapping-cab``, ``overloaded-fifo``).
* :mod:`repro.faults.campaign` — the chaos harness behind
  ``python -m repro chaos``: runs all three reliable transports under a
  plan and checks exactly-once in-order bit-exact delivery plus
  run-to-run determinism.

Everything is driven by explicit seeds; a fixed (scenario, seed) pair
reproduces the same faults at the same simulated nanoseconds every run.
"""

from repro.faults.injector import Injector
from repro.faults.plan import (
    CORRUPT,
    CRASH,
    DROP,
    FAULT_KINDS,
    MBOX_LOSE,
    RX_DROP,
    SQUEEZE,
    STALL,
    FaultPlan,
    FaultSpec,
)

__all__ = [
    "CORRUPT",
    "CRASH",
    "DROP",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "Injector",
    "MBOX_LOSE",
    "RX_DROP",
    "SQUEEZE",
    "STALL",
]
