"""The declarative fault-plan model: seeded, windowed fault specifications.

A :class:`FaultPlan` is a master seed plus an ordered list of
:class:`FaultSpec` records.  Each spec names *what* goes wrong (the fault
``kind``), *where* (a site pattern matched against link endpoints, FIFO
names, or ``node:mailbox`` labels), *when* (an optional simulated-time
window), and *how often* (exactly the Nth matching occurrence, every Nth,
or an independent seeded coin flip per occurrence).

The plan is pure data: evaluating it against the running simulation is the
job of :class:`repro.faults.injector.Injector`.  Determinism is structural
— every random decision flows from ``Random(plan.seed, spec index)`` and
occurrence counters that advance in simulation event order, so a fixed
plan produces bit-identical fault schedules across runs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError

__all__ = [
    "CORRUPT",
    "CRASH",
    "DROP",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "MBOX_LOSE",
    "RX_DROP",
    "SQUEEZE",
    "STALL",
]

#: Frame silently eaten by the fabric at link egress (transports recover).
DROP = "drop"
#: One payload byte flipped on the wire; the receiving CAB's hardware CRC
#: rejects the frame at end-of-packet.
CORRUPT = "corrupt"
#: Extra per-frame delay on the sending link (stall / jitter window).
STALL = "stall"
#: FIFO back-pressure squeeze: part of a FIFO's capacity is reserved, so
#: producers block earlier (the HUB's low-level flow control under load).
SQUEEZE = "squeeze"
#: Good frame discarded by the datalink receive path before dispatch
#: (models software drops under interrupt/buffer pressure).
RX_DROP = "rx-drop"
#: Message lost while being queued into a mailbox (host-CAB interface
#: loss; aim it at transport input mailboxes such as ``tcp-input``).
MBOX_LOSE = "mbox-lose"
#: Whole-CAB blackout window: every frame to or from the named CAB is
#: eaten while the window is open; the board "restarts" when it closes.
CRASH = "crash"

FAULT_KINDS = (DROP, CORRUPT, STALL, SQUEEZE, RX_DROP, MBOX_LOSE, CRASH)


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault: kind + site + window + firing schedule.

    ``where`` is matched against the hook site's label: the sending or
    receiving CAB name for ``crash``, the sending CAB name for
    ``drop``/``corrupt``/``stall``, the FIFO name for ``squeeze``
    (substring match, e.g. ``"cab-b.fiber-in"``), the receiving CAB name
    for ``rx-drop``, and ``"node:mailbox"`` for ``mbox-lose`` (either half
    may be matched alone).  ``"*"`` matches every site.  A ``drop`` or
    ``corrupt`` pattern containing ``"->"`` is *directed*: it is matched
    against ``"src->dst"`` instead of the sending CAB alone, pinning the
    spec to one CAB pair and direction (how the ops lab models a single
    lossy inter-HUB fiber).

    Firing schedule (first one set wins, checked in this order):

    * ``nth`` — fire on exactly the Nth matching occurrence (1-based).
    * ``every_nth`` — fire on every Nth matching occurrence.
    * ``probability`` — independent seeded coin flip per occurrence.
    * none of the above — fire on every matching occurrence (window-gated
      faults such as ``crash`` and ``squeeze`` normally use this).

    ``max_fires`` caps the total number of firings; ``window_ns`` is a
    half-open ``[start, end)`` simulated-time interval outside which the
    spec never matches.  ``stall_ns`` and ``squeeze_bytes`` parameterize
    the ``stall`` and ``squeeze`` kinds.
    """

    kind: str
    where: str = "*"
    window_ns: Optional[tuple[int, int]] = None
    probability: float = 0.0
    nth: int = 0
    every_nth: int = 0
    max_fires: Optional[int] = None
    stall_ns: int = 0
    squeeze_bytes: int = 0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.nth < 0 or self.every_nth < 0:
            raise ConfigurationError("nth/every_nth must be >= 0")
        if self.window_ns is not None:
            start, end = self.window_ns
            if start < 0 or end <= start:
                raise ConfigurationError(
                    f"window must satisfy 0 <= start < end, got {self.window_ns}"
                )
        if self.kind == STALL and self.stall_ns <= 0:
            raise ConfigurationError("stall faults require stall_ns > 0")
        if self.kind == SQUEEZE and self.squeeze_bytes <= 0:
            raise ConfigurationError("squeeze faults require squeeze_bytes > 0")
        if self.max_fires is not None and self.max_fires <= 0:
            raise ConfigurationError("max_fires must be positive when set")

    def in_window(self, now_ns: int) -> bool:
        """Whether the spec is active at simulated time ``now_ns``."""
        if self.window_ns is None:
            return True
        start, end = self.window_ns
        return start <= now_ns < end

    def matches_site(self, site: str) -> bool:
        """Whether this spec's ``where`` pattern selects ``site``."""
        return site_matches(self.where, site)

    def describe(self) -> str:
        """One-line stable rendering (used in chaos reports)."""
        parts = [self.kind, f"where={self.where}"]
        if self.window_ns is not None:
            parts.append(f"window=[{self.window_ns[0]},{self.window_ns[1]})")
        if self.nth:
            parts.append(f"nth={self.nth}")
        elif self.every_nth:
            parts.append(f"every_nth={self.every_nth}")
        elif self.probability:
            parts.append(f"p={self.probability:g}")
        if self.stall_ns:
            parts.append(f"stall_ns={self.stall_ns}")
        if self.squeeze_bytes:
            parts.append(f"squeeze_bytes={self.squeeze_bytes}")
        if self.max_fires is not None:
            parts.append(f"max_fires={self.max_fires}")
        return " ".join(parts)


def site_matches(pattern: str, site: str) -> bool:
    """Site selector: ``"*"`` matches all; otherwise exact or substring.

    Substring matching lets a spec say ``"cab-b.fiber-in"`` and hit the
    FIFO actually named ``"cab-b.fiber-in.fifo"``, or ``"tcp-input"`` and
    hit ``"cab-b:tcp-input"``.
    """
    return pattern == "*" or pattern == site or pattern in site


@dataclass(frozen=True)
class FaultPlan:
    """A master seed plus the ordered fault specs it drives."""

    seed: int
    specs: tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self):
        # Accept any iterable of specs but store a tuple (hashable, stable).
        if not isinstance(self.specs, tuple):
            object.__setattr__(self, "specs", tuple(self.specs))
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise ConfigurationError(f"plan entries must be FaultSpec, got {spec!r}")

    def rng_for(self, index: int) -> random.Random:
        """The dedicated seeded RNG for spec ``index``.

        Each spec gets an independent stream so adding a spec never
        perturbs the decisions of the others.  String seeding is hashed
        with SHA-512 internally, so it is stable across processes.
        """
        return random.Random(f"faultplan:{self.seed}:{index}")

    def describe(self) -> str:
        """Stable multi-line rendering of the whole plan."""
        lines = [f"plan seed={self.seed} specs={len(self.specs)}"]
        for index, spec in enumerate(self.specs):
            lines.append(f"  [{index}] {spec.describe()}")
        return "\n".join(lines)
