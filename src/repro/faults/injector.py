"""The fault injector: evaluates a :class:`FaultPlan` at the hook points.

One :class:`Injector` instance serves a whole :class:`~repro.system.NectarSystem`.
The instrumented layers call in through narrow hooks, each behind a single
if-guard in the style of the PR 1 sanitizers:

* ``on_link_frame(src, dest, frame)`` — fabric egress
  (:meth:`~repro.hub.network.NectarNetwork._link_tx_loop`): applies
  ``drop``/``corrupt`` faults and ``crash`` blackouts.
* ``link_delay_ns(src)`` — same site: extra ``stall`` delay for the frame.
* ``on_fanout_branch(src, dest, replica)`` — HUB crossbar fan-out
  (:meth:`~repro.hub.network._HubForwarder.accept_tree`): directed ``drop``
  faults and ``crash`` blackouts on individual branches of a fan-out tree.
* ``datalink_rx_drop(node, frame)`` — datalink start-of-packet handler:
  ``rx-drop`` faults discard a good frame before dispatch.
* ``mailbox_lose(node, mailbox, msg)`` — mailbox queueing: ``mbox-lose``
  faults eat a message as it is queued.
* ``install(system)`` — wires the hooks into an assembled system and
  schedules ``squeeze`` window processes on the matching FIFOs.

Every decision is deterministic: per-spec occurrence counters advance in
simulation event order, and randomness comes from per-spec seeded RNGs.
The injector records each firing as ``(time_ns, kind, site)`` in
:attr:`Injector.fired`, and counts per-kind totals in a local
:class:`~repro.model.stats.StatsRegistry`.
"""

from __future__ import annotations

import random
from typing import Callable, Generator, List, Optional, Tuple

from repro.faults.plan import (
    CORRUPT,
    CRASH,
    DROP,
    MBOX_LOSE,
    RX_DROP,
    SQUEEZE,
    STALL,
    FaultPlan,
    FaultSpec,
)
from repro.model.stats import StatsRegistry

__all__ = ["Injector"]


class _SpecState:
    """Mutable evaluation state for one spec: counters + its RNG stream."""

    __slots__ = ("spec", "index", "rng", "occurrences", "fires")

    def __init__(self, spec: FaultSpec, index: int, rng: random.Random):
        self.spec = spec
        self.index = index
        self.rng = rng
        self.occurrences = 0
        self.fires = 0

    def decide(self) -> bool:
        """Advance the occurrence counter and decide whether to fire.

        Call only after kind/site/window already matched: the occurrence
        counter must advance exactly once per matching occurrence for
        ``nth``/``every_nth`` schedules to be reproducible.
        """
        spec = self.spec
        self.occurrences += 1
        if spec.max_fires is not None and self.fires >= spec.max_fires:
            return False
        if spec.nth:
            hit = self.occurrences == spec.nth
        elif spec.every_nth:
            hit = self.occurrences % spec.every_nth == 0
        elif spec.probability:
            hit = self.rng.random() < spec.probability
        else:
            hit = True
        return hit


class Injector:
    """Evaluates one :class:`FaultPlan` against the live simulation."""

    def __init__(self, plan: FaultPlan, clock: Optional[Callable[[], int]] = None):
        self.plan = plan
        self._clock: Callable[[], int] = clock if clock is not None else (lambda: 0)
        self.stats = StatsRegistry()
        #: Every firing, in simulation order: ``(time_ns, kind, site)``.
        self.fired: List[Tuple[int, str, str]] = []
        self._states = [
            _SpecState(spec, index, plan.rng_for(index))
            for index, spec in enumerate(plan.specs)
        ]
        self._squeezed_fifos: list = []

    # ------------------------------------------------------------- plumbing

    def bind_clock(self, clock: Callable[[], int]) -> None:
        """Attach the simulated-time source (done by ``install``)."""
        self._clock = clock

    def install(self, system) -> None:
        """Wire this injector into an assembled :class:`NectarSystem`.

        Binds the clock, attaches the link hooks and per-runtime guards,
        and spawns the window processes that apply/revert FIFO squeezes.
        Nodes added to the system *after* installation are wired by
        :meth:`~repro.system.NectarSystem.add_node` itself.
        """
        self.bind_clock(lambda: system.sim.now)
        system.network.fault_hooks = self
        for node in system.nodes.values():
            node.runtime.fault_injector = self
        for state in self._states:
            if state.spec.kind == SQUEEZE:
                system.sim.process(
                    self._squeeze_window(system, state),
                    name=f"fault-squeeze[{state.index}]",
                )

    # ------------------------------------------------------------ matching

    def _fire(self, state: _SpecState, site: str) -> None:
        """Record one firing (time, kind, site) and bump the spec's count."""
        state.fires += 1
        self.fired.append((self._clock(), state.spec.kind, site))
        self.stats.add(f"fault_{state.spec.kind}")

    def _active(self, kind: str, site: str):
        """Spec states of ``kind`` whose window and site match right now."""
        now = self._clock()
        for state in self._states:
            spec = state.spec
            if spec.kind == kind and spec.in_window(now) and spec.matches_site(site):
                yield state

    def _active_link(self, kind: str, src: str, dest: str):
        """Matching ``(state, site)`` pairs for a link-egress fault kind.

        Plain ``where`` patterns keep their historical meaning — matched
        against the *sending* CAB name.  Patterns containing ``"->"`` are
        *directed-pair* selectors matched against ``"src->dest"``, which
        pins a spec to one fiber direction (e.g. the lossy inter-HUB
        incident drops only frames crossing a specific hub-to-hub link).
        """
        now = self._clock()
        pair = f"{src}->{dest}"
        for state in self._states:
            spec = state.spec
            if spec.kind != kind or not spec.in_window(now):
                continue
            if "->" in spec.where:
                if spec.matches_site(pair):
                    yield state, pair
            elif spec.matches_site(src):
                yield state, src

    # ------------------------------------------------------- link-level hooks

    def on_link_frame(self, src: str, dest: str, frame) -> None:
        """Fabric egress hook: may corrupt the frame or mark it dropped.

        ``crash`` blackouts eat every frame touching the crashed CAB;
        ``drop``/``corrupt`` specs match the sending CAB (or, with a
        ``"src->dst"`` pattern, one directed CAB pair); ``corrupt`` flips
        one seeded payload byte so the receiver's hardware CRC rejects the
        frame at end-of-packet.
        """
        for state in self._states:
            spec = state.spec
            if spec.kind != CRASH or not spec.in_window(self._clock()):
                continue
            if spec.matches_site(src) or spec.matches_site(dest):
                frame.drop = True
                self._fire(state, src if spec.matches_site(src) else dest)
        if not frame.drop:
            for state, site in self._active_link(DROP, src, dest):
                if state.decide():
                    frame.drop = True
                    self._fire(state, site)
        if not frame.drop:
            for state, site in self._active_link(CORRUPT, src, dest):
                if state.decide():
                    frame.corrupt(state.rng.randrange(frame.size))
                    self._fire(state, site)

    def on_fanout_branch(self, src: str, dest: str, replica) -> None:
        """HUB fan-out hook: may drop one replica on one branch of the tree.

        Replicas share payload storage with their siblings (zero-copy
        crossbar fan-out), so only loss faults apply here — a ``corrupt``
        would flip the byte in every sibling at once.  ``crash`` blackouts
        eat replicas headed for the crashed CAB; ``drop`` specs apply only
        with a directed ``"sender->branch"`` pattern, keeping plain
        ``where`` specs' meaning (source egress, before replication)
        unchanged.
        """
        now = self._clock()
        for state in self._states:
            spec = state.spec
            if spec.kind != CRASH or not spec.in_window(now):
                continue
            if spec.matches_site(dest):
                replica.drop = True
                self._fire(state, dest)
        if replica.drop:
            return
        pair = f"{src}->{dest}"
        for state in self._states:
            spec = state.spec
            if spec.kind != DROP or "->" not in spec.where:
                continue
            if spec.in_window(now) and spec.matches_site(pair) and state.decide():
                replica.drop = True
                self._fire(state, pair)

    def link_delay_ns(self, src: str) -> int:
        """Extra delay the sending link must add before this frame (stall)."""
        total = 0
        for state in self._active(STALL, src):
            if state.decide():
                total += state.spec.stall_ns
                self._fire(state, src)
        return total

    # --------------------------------------------------------- datalink hook

    def datalink_rx_drop(self, node: str, frame) -> bool:
        """Whether the datalink receive path should discard this good frame."""
        for state in self._active(RX_DROP, node):
            if state.decide():
                self._fire(state, node)
                return True
        return False

    # ---------------------------------------------------------- mailbox hook

    def mailbox_lose(self, node: str, mailbox: str, msg) -> bool:
        """Whether a message being queued into ``node:mailbox`` is lost."""
        site = f"{node}:{mailbox}"
        for state in self._active(MBOX_LOSE, site):
            if state.decide():
                self._fire(state, site)
                return True
        return False

    # ------------------------------------------------------- squeeze windows

    def _squeeze_window(self, system, state: _SpecState) -> Generator:
        """Apply a FIFO squeeze for the spec's window, then revert it.

        Reverting calls :meth:`~repro.hw.fifo.ByteFIFO.recheck_space` so
        producers blocked by the squeeze are granted space again — the
        back-pressure is transient, never a deadlock.
        """
        spec = state.spec
        start, end = spec.window_ns if spec.window_ns is not None else (0, None)
        if start > system.sim.now:
            yield system.sim.timeout(start - system.sim.now)
        fifos = [
            fifo
            for node in system.nodes.values()
            for fifo in (node.cab.fiber_in.fifo, node.cab.fiber_out.fifo)
            if spec.matches_site(fifo.name)
        ]
        for fifo in fifos:
            fifo.squeeze_reserve += spec.squeeze_bytes
            self._squeezed_fifos.append(fifo)
            self._fire(state, fifo.name)
        if end is None:
            return
        yield system.sim.timeout(end - system.sim.now)
        for fifo in fifos:
            fifo.squeeze_reserve -= spec.squeeze_bytes
            fifo.recheck_space()

    # ------------------------------------------------------------- reporting

    def describe_fires(self) -> str:
        """Stable per-spec summary: occurrences seen and faults fired."""
        lines = []
        for state in self._states:
            lines.append(
                f"  [{state.index}] {state.spec.describe()} -> "
                f"occurrences={state.occurrences} fires={state.fires}"
            )
        return "\n".join(lines) if lines else "  (no specs)"
