"""Chaos campaigns: run the reliable transports under a fault plan.

A campaign assembles a four-CAB extension of the paper's measurement rig
(``cab-a`` through ``cab-d`` on one HUB), attaches the scenario's
:class:`~repro.faults.plan.FaultPlan`, and drives four concurrent
workloads across the faulty fabric:

* **RMP** — a stream of stop-and-wait messages (``cab-a`` -> ``cab-b``),
* **request-response** — an RPC client calling an echo-upper server,
* **TCP** — a byte stream pushed through a full connection,
* **NMP** — a reliable multicast stream from ``cab-a`` to the group
  {``cab-b``, ``cab-c``, ``cab-d``}: every member must see every message
  exactly once, in order, even when fan-out replicas are dropped on
  individual branches.

When the simulation settles, the campaign checks the repo's core invariant
— every workload delivered **exactly once, in order, bit-exact** — and
then re-runs the whole campaign from scratch to check that the entire run
(final clock, every counter, every fault firing, every delivered byte) is
**deterministic** for the fixed seed.  ``python -m repro chaos`` renders
the result; exit status 0 means both invariants held.

The report is rendered only from simulated quantities (counters, the
simulated clock, payload digests), never wall-clock time, so two CLI
invocations with the same scenario and seed print byte-identical text.
"""

from __future__ import annotations

import hashlib
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ProtocolError
from repro.sim.core import SimulationError
from repro.faults.scenarios import SCENARIOS, build
from repro.hub.groups import GROUP_BASE
from repro.protocols.headers import NectarTransportHeader
from repro.system import NectarSystem
from repro.telemetry.metrics import Histogram
from repro.units import ms, seconds

#: Fault fire-time histogram buckets (upper bounds, ns) and their labels.
_FIRE_BUCKETS = (ms(1), ms(10), ms(100), seconds(1), seconds(10))
_FIRE_LABELS = ("1ms", "10ms", "100ms", "1s", "10s")

__all__ = ["CampaignReport", "WorkloadOutcome", "main", "run_campaign"]

#: Simulated-time budget for one campaign run.  TCP's exponential RTO
#: backoff dominates the worst case; anything unfinished by now is stuck.
CAMPAIGN_DEADLINE_NS = seconds(30)


@dataclass
class _Sizes:
    """How much traffic each workload pushes."""

    rmp_messages: int
    rpc_requests: int
    tcp_bytes: int
    nmp_messages: int

    @classmethod
    def full(cls) -> "_Sizes":
        """The standard campaign load."""
        return cls(rmp_messages=12, rpc_requests=8, tcp_bytes=6144, nmp_messages=10)

    @classmethod
    def smoke(cls) -> "_Sizes":
        """A fast load for CI smoke runs."""
        return cls(rmp_messages=4, rpc_requests=3, tcp_bytes=1024, nmp_messages=4)


@dataclass
class WorkloadOutcome:
    """What one workload expected, what it got, and how it ended."""

    name: str
    expected: List[bytes] = field(default_factory=list)
    received: List[bytes] = field(default_factory=list)
    error: Optional[str] = None
    finished: bool = False

    @property
    def ok(self) -> bool:
        """Exactly-once, in-order, bit-exact — and nothing blew up."""
        return self.finished and self.error is None and self.received == self.expected

    def digest(self) -> str:
        """SHA-256 over the delivered payloads (order-sensitive)."""
        h = hashlib.sha256()
        for item in self.received:
            h.update(len(item).to_bytes(8, "big"))
            h.update(item)
        return h.hexdigest()


def _workload_rmp(a, b, outcome: WorkloadOutcome) -> None:
    """Fork the RMP stream workload onto the two nodes."""
    inbox = b.runtime.mailbox("chaos-rmp-inbox")
    chan = a.rmp.open(100, b.node_id, 200)
    b.rmp.open(200, a.node_id, 100, deliver_mailbox=inbox)

    def sender():
        """Send every payload reliably; record a ProtocolError verbatim."""
        try:
            for payload in outcome.expected:
                yield from a.rmp.send(chan, payload)
        except ProtocolError as exc:
            outcome.error = f"sender: {exc}"

    def receiver():
        """Collect the expected number of messages, then declare done."""
        for _ in outcome.expected:
            msg = yield from inbox.begin_get()
            outcome.received.append(msg.read())
            yield from inbox.end_get(msg)
        outcome.finished = True

    a.runtime.fork_application(sender(), "chaos-rmp-sender")
    b.runtime.fork_application(receiver(), "chaos-rmp-receiver")


def _workload_rpc(a, b, requests: List[bytes], outcome: WorkloadOutcome) -> None:
    """Fork the request-response workload (client on ``a``, server on ``b``)."""
    server_mailbox = b.runtime.mailbox("chaos-rpc-server")
    b.rpc.serve(700, server_mailbox)
    outcome.expected = [request.upper() for request in requests]

    def server():
        """Echo-upper server: duplicate requests are replayed from cache."""
        while True:
            msg = yield from server_mailbox.begin_get()
            header = NectarTransportHeader.unpack(
                msg.read(0, NectarTransportHeader.SIZE)
            )
            body = msg.read(NectarTransportHeader.SIZE)
            yield from server_mailbox.end_get(msg)
            yield from b.rpc.respond(header, body.upper())

    def client():
        """Issue every request in order; record a ProtocolError verbatim."""
        try:
            port = a.rpc.allocate_client_port()
            for request in requests:
                reply = yield from a.rpc.request(
                    port, b.node_id, 700, request, timeout_ns=ms(2)
                )
                outcome.received.append(reply)
            outcome.finished = True
        except ProtocolError as exc:
            outcome.error = f"client: {exc}"

    b.runtime.fork_system(server(), "chaos-rpc-server")
    a.runtime.fork_application(client(), "chaos-rpc-client")


def _workload_tcp(a, b, payload: bytes, outcome: WorkloadOutcome) -> None:
    """Fork the TCP stream workload (client on ``a`` pushes to ``b``)."""
    outcome.expected = [payload]
    server_inbox = b.runtime.mailbox("chaos-tcp-inbox")
    b.tcp.listen(7000, lambda conn: server_inbox)

    def client():
        """Connect and push the whole stream; record failures verbatim."""
        try:
            inbox = a.runtime.mailbox("chaos-tcp-cli")
            conn = yield from a.tcp.connect(6000, b.ip_address, 7000, inbox)
            yield from a.tcp.send_direct(conn, payload)
        except ProtocolError as exc:
            outcome.error = f"client: {exc}"

    def collector():
        """Reassemble the stream until every byte has arrived."""
        received = bytearray()
        while len(received) < len(payload):
            msg = yield from server_inbox.begin_get()
            received.extend(msg.read())
            yield from server_inbox.end_get(msg)
        outcome.received.append(bytes(received))
        outcome.finished = True

    a.runtime.fork_application(client(), "chaos-tcp-client")
    b.runtime.fork_application(collector(), "chaos-tcp-collector")


def _workload_nmp(system, sender, members, outcomes) -> None:
    """Fork the NMP multicast workload: one sender, every member a receiver.

    ``outcomes`` maps ``nmp-<member>`` to that member's
    :class:`WorkloadOutcome`; all share the same ``expected`` list, so the
    campaign's exactly-once/in-order invariant applies per member.
    """
    group_id = GROUP_BASE + 1
    port = 0x4100
    system.network.groups.register(group_id, tuple(n.name for n in members))
    session = sender.nmp.open_sender(
        group_id, port, tuple(n.node_id for n in members)
    )
    expected = outcomes[f"nmp-{members[0].name}"].expected

    def producer():
        """Multicast the whole stream, then flush the watermark."""
        try:
            for payload in expected:
                yield from sender.nmp.send(session, payload)
            yield from sender.nmp.flush(session)
        except ProtocolError as exc:
            for outcome in outcomes.values():
                if outcome.error is None:
                    outcome.error = f"sender: {exc}"

    for rank, node in enumerate(members):
        outcome = outcomes[f"nmp-{node.name}"]
        inbox = node.runtime.mailbox(f"chaos-nmp-{node.name}")
        membership = node.nmp.join(group_id, port, rank, inbox)
        assert membership.rank == rank

        def collector(inbox=inbox, outcome=outcome):
            """Collect this member's copy of the stream in arrival order."""
            for _ in outcome.expected:
                msg = yield from inbox.begin_get()
                outcome.received.append(msg.read())
                yield from inbox.end_get(msg)
            outcome.finished = True

        node.runtime.fork_application(collector(), f"chaos-nmp-recv-{node.name}")

    sender.runtime.fork_application(producer(), "chaos-nmp-sender")


@dataclass
class _CampaignRun:
    """Everything one execution of a campaign produced."""

    outcomes: Dict[str, WorkloadOutcome]
    counters: Dict[str, int]
    fired: Tuple[Tuple[int, str, str], ...]
    fires_text: str
    final_ns: int
    run_error: Optional[str]

    def signature(self) -> Tuple:
        """A value equal between two runs iff the runs were identical."""
        return (
            self.final_ns,
            tuple(sorted(self.counters.items())),
            self.fired,
            tuple(
                (name, out.finished, out.error, out.digest())
                for name, out in sorted(self.outcomes.items())
            ),
            self.run_error,
        )


def _run_once(scenario: str, seed: int, sizes: _Sizes) -> _CampaignRun:
    """Build a fresh rig, attach the plan, run all workloads to quiescence."""
    system = NectarSystem()
    hub = system.add_hub("hub0")
    a = system.add_node("cab-a", hub, 0)
    b = system.add_node("cab-b", hub, 1)
    c = system.add_node("cab-c", hub, 2)
    d = system.add_node("cab-d", hub, 3)
    injector = system.attach_fault_plan(build(scenario, seed))

    nmp_expected = [
        bytes([0x40 + index]) * (64 * (index % 3 + 1))
        for index in range(sizes.nmp_messages)
    ]
    outcomes = {
        "rmp": WorkloadOutcome(
            "rmp",
            expected=[
                bytes([index & 0xFF]) * (96 * (index % 5 + 1))
                for index in range(sizes.rmp_messages)
            ],
        ),
        "rpc": WorkloadOutcome("rpc"),
        "tcp": WorkloadOutcome("tcp"),
    }
    for member in (b, c, d):
        outcomes[f"nmp-{member.name}"] = WorkloadOutcome(
            f"nmp-{member.name}", expected=list(nmp_expected)
        )
    _workload_rmp(a, b, outcomes["rmp"])
    _workload_nmp(system, a, (b, c, d), outcomes)
    _workload_rpc(
        a,
        b,
        [b"request-%02d" % index * 8 for index in range(sizes.rpc_requests)],
        outcomes["rpc"],
    )
    _workload_tcp(
        a, b, bytes(range(256)) * (sizes.tcp_bytes // 256), outcomes["tcp"]
    )

    run_error: Optional[str] = None
    try:
        system.run(until=CAMPAIGN_DEADLINE_NS)
    except (ProtocolError, SimulationError) as exc:
        run_error = f"{type(exc).__name__}: {exc}"

    counters: Dict[str, int] = {}
    for prefix, registry in (
        ("cab-a", a.runtime.stats),
        ("cab-a.hw", a.cab.stats),
        ("cab-b", b.runtime.stats),
        ("cab-b.hw", b.cab.stats),
        ("cab-c", c.runtime.stats),
        ("cab-c.hw", c.cab.stats),
        ("cab-d", d.runtime.stats),
        ("cab-d.hw", d.cab.stats),
        ("net", system.network.stats),
        ("fault", injector.stats),
    ):
        for name, value in registry.snapshot().items():
            counters[f"{prefix}.{name}"] = value
    return _CampaignRun(
        outcomes=outcomes,
        counters=counters,
        fired=tuple(injector.fired),
        fires_text=injector.describe_fires(),
        final_ns=system.now,
        run_error=run_error,
    )


@dataclass
class CampaignReport:
    """The rendered result of a chaos campaign (including determinism)."""

    scenario: str
    seed: int
    run: _CampaignRun
    deterministic: bool

    @property
    def delivery_ok(self) -> bool:
        """Did every workload deliver exactly once, in order, bit-exact?"""
        return self.run.run_error is None and all(
            out.ok for out in self.run.outcomes.values()
        )

    @property
    def passed(self) -> bool:
        """Overall verdict: delivery invariant AND determinism."""
        return self.delivery_ok and self.deterministic

    def _counter(self, *names: str) -> int:
        """Sum the named counters across the run."""
        return sum(self.run.counters.get(name, 0) for name in names)

    @property
    def retransmissions(self) -> int:
        """All retransmit counters across the four transports."""
        return self._counter(
            "cab-a.rmp_retransmits",
            "cab-b.rmp_retransmits",
            "cab-a.rpc_retries",
            "cab-b.rpc_retries",
            "cab-a.tcp_retransmits",
            "cab-b.tcp_retransmits",
            "cab-a.nmp_repairs_out",
        )

    @property
    def nmp_nacks(self) -> int:
        """NACKs actually put on the wire by the multicast members."""
        return self._counter(*(f"cab-{m}.nmp_nacks_out" for m in "bcd"))

    @property
    def nmp_suppressed(self) -> int:
        """NACK timers cancelled because another member's repair arrived."""
        return self._counter(*(f"cab-{m}.nmp_nacks_suppressed" for m in "bcd"))

    @property
    def crc_drops(self) -> int:
        """Frames rejected by the receive-side hardware CRC check."""
        return self._counter(*(f"cab-{m}.hw.crc_errors" for m in "abcd"))

    @property
    def dropped(self) -> int:
        """Frames/messages eaten anywhere: fabric, CRC, datalink, mailbox."""
        return (
            self._counter(
                "net.frames_dropped",
                *(f"cab-{m}.hw.dl_fault_drops" for m in "abcd"),
                *(f"cab-{m}.fault_lost_messages" for m in "abcd"),
            )
            + self.crc_drops
        )

    def render(self) -> str:
        """The stable multi-line report text (simulated quantities only)."""
        run = self.run
        lines = [
            f"chaos campaign: {self.scenario} (seed {self.seed})",
            f"simulated time: {run.final_ns} ns",
            "workloads:",
        ]
        for name in sorted(run.outcomes):
            out = run.outcomes[name]
            status = "ok" if out.ok else (out.error or "incomplete")
            lines.append(
                f"  {name}: delivered {len(out.received)}/{len(out.expected)}"
                f" [{status}] digest={out.digest()[:16]}"
            )
        if run.run_error is not None:
            lines.append(f"run error: {run.run_error}")
        lines.append(
            "recovery: "
            f"retransmissions={self.retransmissions} "
            f"crc_drops={self.crc_drops} "
            f"dropped={self.dropped}"
        )
        fault_totals = " ".join(
            f"{name.split('.', 1)[1]}={value}"
            for name, value in sorted(run.counters.items())
            if name.startswith("fault.")
        )
        lines.append(f"faults fired: {fault_totals or '(none)'}")
        lines.append("telemetry:")
        lines.append(
            "  retransmits: "
            f"rmp={self._counter('cab-a.rmp_retransmits', 'cab-b.rmp_retransmits')}"
            f" rpc={self._counter('cab-a.rpc_retries', 'cab-b.rpc_retries')}"
            f" tcp={self._counter('cab-a.tcp_retransmits', 'cab-b.tcp_retransmits')}"
            f" nmp={self._counter('cab-a.nmp_repairs_out')}"
        )
        nacks = self.nmp_nacks
        suppressed = self.nmp_suppressed
        timers = nacks + suppressed
        effectiveness = (
            f"{100 * suppressed // timers}%" if timers else "n/a"
        )
        lines.append(
            "  nack suppression: "
            f"nacks={nacks} suppressed={suppressed} "
            f"effectiveness={effectiveness}"
        )
        injected = self._counter(
            "fault.fault_drop", "fault.fault_rx-drop", "fault.fault_mbox-lose"
        )
        observed = self._counter(
            "net.frames_dropped",
            *(f"cab-{m}.hw.dl_fault_drops" for m in "abcd"),
            *(f"cab-{m}.fault_lost_messages" for m in "abcd"),
        )
        lines.append(f"  drops: injected={injected} observed={observed}")
        hist = Histogram("fault.fire_time_ns", buckets=_FIRE_BUCKETS)
        for time_ns, _kind, _site in run.fired:
            hist.observe(time_ns)
        buckets = " ".join(
            f"le_{label}={count}" for label, count in zip(_FIRE_LABELS, hist.counts)
        )
        lines.append(
            f"  fire times: {buckets} overflow={hist.overflow} count={hist.count}"
        )
        lines.append("fault specs:")
        lines.append(run.fires_text)
        lines.append(
            "invariant exactly-once in-order bit-exact delivery: "
            + ("OK" if self.delivery_ok else "VIOLATED")
        )
        lines.append(
            "invariant determinism (two identical runs): "
            + ("OK" if self.deterministic else "VIOLATED")
        )
        lines.append(f"verdict: {'PASS' if self.passed else 'FAIL'}")
        return "\n".join(lines)


def run_campaign(scenario: str, seed: int, smoke: bool = False) -> CampaignReport:
    """Run the named scenario twice and report delivery + determinism."""
    sizes = _Sizes.smoke() if smoke else _Sizes.full()
    first = _run_once(scenario, seed, sizes)
    second = _run_once(scenario, seed, sizes)
    return CampaignReport(
        scenario=scenario,
        seed=seed,
        run=first,
        deterministic=first.signature() == second.signature(),
    )


def main(argv: List[str]) -> int:
    """CLI: ``python -m repro chaos [--scenario NAME] [--seed N] [--smoke]``."""
    scenario = "lossy-link"
    seed = 7
    smoke = False
    arguments = list(argv)
    while arguments:
        arg = arguments.pop(0)
        if arg == "--scenario":
            if not arguments:
                print("--scenario requires a name", file=sys.stderr)
                return 2
            scenario = arguments.pop(0)
        elif arg == "--seed":
            if not arguments or not arguments[0].lstrip("-").isdigit():
                print("--seed requires an integer", file=sys.stderr)
                return 2
            seed = int(arguments.pop(0))
        elif arg == "--smoke":
            smoke = True
        elif arg == "--list":
            for name in sorted(SCENARIOS):
                doc = (SCENARIOS[name].__doc__ or "").strip().splitlines()
                summary = doc[0] if doc else ""
                print(f"{name:20s} seed=7  {summary}")
            return 0
        else:
            print(f"unknown option {arg!r}", file=sys.stderr)
            return 2
    if scenario not in SCENARIOS:
        print(
            f"unknown scenario {scenario!r}; choose from {sorted(SCENARIOS)}",
            file=sys.stderr,
        )
        return 2
    report = run_campaign(scenario, seed, smoke=smoke)
    print(report.render())
    return 0 if report.passed else 1
