"""Run the full evaluation: every table, figure, micro-cost, and ablation.

Usage:  python -m repro  [table1|fig6|fig7|fig8|micro|ablations|all]
"""

from __future__ import annotations

import sys

from repro.bench import ablations, fig6, fig7, fig8, microcosts, table1

_EXPERIMENTS = {
    "table1": table1.main,
    "fig6": fig6.main,
    "fig7": fig7.main,
    "fig8": fig8.main,
    "micro": microcosts.main,
    "ablations": ablations.main,
}


def main(argv: list[str]) -> int:
    targets = argv or ["all"]
    names = list(_EXPERIMENTS) if targets == ["all"] else targets
    for name in names:
        if name not in _EXPERIMENTS:
            print(f"unknown experiment {name!r}; choose from "
                  f"{', '.join(_EXPERIMENTS)} or 'all'", file=sys.stderr)
            return 2
    for index, name in enumerate(names):
        if index:
            print("\n" + "=" * 72 + "\n")
        _EXPERIMENTS[name]()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
