"""Run the full evaluation: every table, figure, micro-cost, and ablation.

The usage block below is generated from the dispatch tables
(:data:`_SUBCOMMANDS`, :data:`_EXPERIMENTS`) that actually route the
arguments, so it cannot drift from the real command set;
``tests/test_bench_cli.py`` pins the two together.

``lint`` runs nectarlint, the static determinism/sim-safety checker
(see :mod:`repro.analysis.nectarlint`); with ``--static`` it also runs
the whole-program nectarflow passes — buffer ownership, lock order,
protocol FSMs (see :mod:`repro.analysis.flow`); ``flow --graph`` dumps
the call graph and lifted state machines those passes compute;
``analyze`` runs the dynamic
sanitizer + determinism harness (see :mod:`repro.analysis.driver`);
``chaos`` runs a fault-injection campaign against the reliable transports
(see :mod:`repro.faults.campaign`); ``observe`` runs a workload with the
telemetry plane on and exports Perfetto traces, metrics, and cycle
profiles (see :mod:`repro.telemetry.observe`); ``scale`` runs a
fleet-scale topology sharded across worker processes
(see :mod:`repro.cluster`); ``mcast`` runs the NMP multicast fan-out and
CAB-collective benchmark (see :mod:`repro.cluster.mcast`); ``ops`` runs
the scored operations lab — reproducible incidents observed through a
flight recorder (see :mod:`repro.ops`); ``bench`` is the unified
scenario harness (see :mod:`repro.scenario`): it runs any committed
scenario file, sweeps parameter grids into capacity-curve reports, and
``bench --check-all`` is the one regression gate over every committed
baseline (``BENCH_scale.json``, ``BENCH_buf.json``, ``BENCH_mcast.json``,
``OPS_baseline.txt``, ``BENCH_engine.json``, ``BENCH_load.json``).
"""

from __future__ import annotations

import importlib
import sys

#: Subcommand dispatch: name -> (module with ``main(argv)``, usage line).
_SUBCOMMANDS = {
    "lint": (
        "repro.analysis.nectarlint",
        "lint [paths...] [--strict] [--static]\n"
        "                      [--format text|json|sarif] [--baseline FILE]",
    ),
    "flow": ("repro.analysis.flow.cli", "flow --graph [paths...]"),
    "analyze": ("repro.analysis.driver", "analyze [--rounds N]"),
    "chaos": (
        "repro.faults.campaign",
        "chaos [--scenario NAME] [--seed N] [--smoke] [--list]",
    ),
    "observe": (
        "repro.telemetry.observe",
        "observe [--workload NAME] [--trace FILE] [--metrics FILE]",
    ),
    "scale": (
        "repro.cluster.cli",
        "scale [--shape S] [--hubs N] [--workers LIST]\n"
        "                       [--parity] [--bench] [--json FILE] [--check]",
    ),
    "mcast": (
        "repro.cluster.mcast_cli",
        "mcast [--seed N] [--workers LIST] [--json FILE]\n"
        "                       [--check]",
    ),
    "bench": (
        "repro.scenario.cli",
        "bench <scenario> [--check | --write] [--json FILE]\n"
        "        python -m repro  bench [--list | --check-all]",
    ),
    "ops": (
        "repro.ops.cli",
        "ops [--list] [--incident NAME] [--seed N]\n"
        "                     [--json FILE] [--check]",
    ),
}

#: Experiment dispatch: name -> module in :mod:`repro.bench` whose
#: ``main()`` runs it (all follow the common ``DriverResult`` contract).
_EXPERIMENTS = {
    "table1": "repro.bench.table1",
    "fig6": "repro.bench.fig6",
    "fig7": "repro.bench.fig7",
    "fig8": "repro.bench.fig8",
    "micro": "repro.bench.microcosts",
    "ablations": "repro.bench.ablations",
}


def build_usage() -> str:
    """The usage block, generated from the dispatch tables."""
    lines = [
        f"Usage:  python -m repro  [{'|'.join(_EXPERIMENTS)}|all]",
    ]
    for name in _SUBCOMMANDS:
        _module, usage = _SUBCOMMANDS[name]
        lines.append(f"        python -m repro  {usage}")
    return "\n".join(lines)


__doc__ = __doc__.replace(
    "The usage block below",
    build_usage() + "\n\nThe usage block above",
    1,
)


def main(argv: list[str]) -> int:
    """Dispatch ``python -m repro`` arguments; returns the exit code."""
    if argv and argv[0] in _SUBCOMMANDS:
        module_name, _usage = _SUBCOMMANDS[argv[0]]
        module = importlib.import_module(module_name)
        return module.main(argv[1:])
    targets = argv or ["all"]
    names = list(_EXPERIMENTS) if targets == ["all"] else targets
    for name in names:
        if name not in _EXPERIMENTS:
            print(f"unknown experiment {name!r}; choose from "
                  f"{', '.join(_EXPERIMENTS)}, 'all', or a subcommand "
                  f"({', '.join(_SUBCOMMANDS)})", file=sys.stderr)
            return 2
    for index, name in enumerate(names):
        if index:
            print("\n" + "=" * 72 + "\n")
        importlib.import_module(_EXPERIMENTS[name]).main()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
