"""Run the full evaluation: every table, figure, micro-cost, and ablation.

Usage:  python -m repro  [table1|fig6|fig7|fig8|micro|ablations|all]
        python -m repro  lint [paths...] [--strict] [--static]
                              [--format text|json|sarif] [--baseline FILE]
        python -m repro  flow --graph [paths...]
        python -m repro  analyze [--rounds N]
        python -m repro  chaos [--scenario NAME] [--seed N] [--smoke] [--list]
        python -m repro  observe [--workload NAME] [--trace FILE] [--metrics FILE]
        python -m repro  scale [--shape S] [--hubs N] [--workers LIST]
                               [--parity] [--bench] [--json FILE]
        python -m repro  mcast [--seed N] [--workers LIST] [--json FILE]
                               [--check]
        python -m repro  bench buf [--check | --write] [--json FILE]
        python -m repro  ops [--list] [--incident NAME] [--seed N]
                             [--json FILE] [--check]

``lint`` runs nectarlint, the static determinism/sim-safety checker
(see :mod:`repro.analysis.nectarlint`); with ``--static`` it also runs
the whole-program nectarflow passes — buffer ownership, lock order,
protocol FSMs (see :mod:`repro.analysis.flow`); ``flow --graph`` dumps
the call graph and lifted state machines those passes compute;
``analyze`` runs the dynamic
sanitizer + determinism harness (see :mod:`repro.analysis.driver`);
``chaos`` runs a fault-injection campaign against the reliable transports
(see :mod:`repro.faults.campaign`); ``observe`` runs a workload with the
telemetry plane on and exports Perfetto traces, metrics, and cycle
profiles (see :mod:`repro.telemetry.observe`); ``scale`` runs a
fleet-scale topology sharded across worker processes
(see :mod:`repro.cluster`); ``mcast`` runs the NMP multicast fan-out and
CAB-collective benchmark and gates it against ``BENCH_mcast.json``
(see :mod:`repro.cluster.mcast`); ``bench buf`` runs the zero-copy buffer-plane
benchmark and gates its host-copy counters against ``BENCH_buf.json``
(see :mod:`repro.buf.bench`); ``ops`` runs the scored operations lab —
reproducible incidents observed through a flight recorder, with baseline
detect/localize/mitigate evaluators gated against ``OPS_baseline.txt``
(see :mod:`repro.ops`).
"""

from __future__ import annotations

import sys

from repro.bench import ablations, fig6, fig7, fig8, microcosts, table1

_EXPERIMENTS = {
    "table1": table1.main,
    "fig6": fig6.main,
    "fig7": fig7.main,
    "fig8": fig8.main,
    "micro": microcosts.main,
    "ablations": ablations.main,
}


def main(argv: list[str]) -> int:
    if argv and argv[0] == "lint":
        from repro.analysis import nectarlint

        return nectarlint.main(argv[1:])
    if argv and argv[0] == "flow":
        from repro.analysis.flow import cli

        return cli.main(argv[1:])
    if argv and argv[0] == "analyze":
        from repro.analysis import driver

        return driver.main(argv[1:])
    if argv and argv[0] == "chaos":
        from repro.faults import campaign

        return campaign.main(argv[1:])
    if argv and argv[0] == "observe":
        from repro.telemetry import observe

        return observe.main(argv[1:])
    if argv and argv[0] == "scale":
        from repro.cluster import cli

        return cli.main(argv[1:])
    if argv and argv[0] == "mcast":
        from repro.cluster import mcast_cli

        return mcast_cli.main(argv[1:])
    if argv and argv[0] == "ops":
        from repro.ops import cli

        return cli.main(argv[1:])
    if argv and argv[0] == "bench":
        if len(argv) < 2 or argv[1] != "buf":
            print("usage: python -m repro bench buf [--check | --write] "
                  "[--json FILE]", file=sys.stderr)
            return 2
        from repro.buf import bench

        return bench.main(argv[2:])
    targets = argv or ["all"]
    names = list(_EXPERIMENTS) if targets == ["all"] else targets
    subcommands = "lint, flow, analyze, chaos, observe, scale, mcast, bench, ops"
    for name in names:
        if name not in _EXPERIMENTS:
            print(f"unknown experiment {name!r}; choose from "
                  f"{', '.join(_EXPERIMENTS)}, 'all', or a subcommand "
                  f"({subcommands})", file=sys.stderr)
            return 2
    for index, name in enumerate(names):
        if index:
            print("\n" + "=" * 72 + "\n")
        _EXPERIMENTS[name]()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
