"""Unit helpers.

All simulated time is integer nanoseconds; all sizes are bytes.  These
helpers keep unit conversions explicit and greppable.
"""

from __future__ import annotations

__all__ = [
    "KB",
    "MB",
    "mbps_to_ns_per_byte",
    "ms",
    "ns_to_us",
    "seconds",
    "throughput_mbps",
    "us",
]

KB = 1024
MB = 1024 * 1024


def us(value: float) -> int:
    """Microseconds -> nanoseconds."""
    return int(round(value * 1_000))


def ms(value: float) -> int:
    """Milliseconds -> nanoseconds."""
    return int(round(value * 1_000_000))


def seconds(value: float) -> int:
    """Seconds -> nanoseconds."""
    return int(round(value * 1_000_000_000))


def ns_to_us(value_ns: int) -> float:
    """Nanoseconds -> microseconds (float, for reporting)."""
    return value_ns / 1_000.0


def mbps_to_ns_per_byte(mbps: float) -> float:
    """Megabits-per-second -> nanoseconds per byte.

    100 Mbit/s == 12.5 MB/s == 80 ns/byte.
    """
    if mbps <= 0:
        raise ValueError(f"bandwidth must be positive, got {mbps}")
    return 8_000.0 / mbps


def throughput_mbps(payload_bytes: int, elapsed_ns: int) -> float:
    """Payload bytes moved in elapsed_ns -> megabits per second."""
    if elapsed_ns <= 0:
        raise ValueError(f"elapsed time must be positive, got {elapsed_ns}")
    return payload_bytes * 8_000.0 / elapsed_ns
