"""Remote task creation (paper Sec. 3.5 / 5.3).

Nectarine "allows applications to create mailboxes and tasks on other hosts
or CABs".  Each node runs a *task server* on a well-known request-response
port; a task is named code registered in the :class:`TaskRegistry` (the
moral equivalent of the application image being present on every node), and
remote creation is one RPC carrying the task name and an argument blob.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator

from repro.errors import AddressError, ProtocolError
from repro.protocols.headers import NectarTransportHeader

__all__ = ["TASK_SERVER_PORT", "TaskRegistry"]

TASK_SERVER_PORT = 0x7A5C


class TaskRegistry:
    """Named task bodies, installable as a task server on every node."""

    def __init__(self):
        #: name -> factory(node, arg: bytes) -> generator (the task body)
        self._factories: Dict[str, Callable] = {}

    def register(self, name: str, factory: Callable) -> None:
        """Register a named task body factory."""
        if name in self._factories:
            raise AddressError(f"task {name!r} already registered")
        self._factories[name] = factory

    def __contains__(self, name: str) -> bool:
        return name in self._factories

    # -- wire format -------------------------------------------------------------

    @staticmethod
    def encode_request(name: str, arg: bytes) -> bytes:
        encoded = name.encode()
        if b"\x00" in encoded:
            raise ProtocolError("task names must not contain NUL")
        return encoded + b"\x00" + arg

    @staticmethod
    def decode_request(data: bytes) -> tuple[str, bytes]:
        name, _sep, arg = data.partition(b"\x00")
        return name.decode(), arg

    # -- the per-node task server ---------------------------------------------------

    def install(self, node) -> None:
        """Start this node's task server (idempotent per node)."""
        runtime = node.runtime
        mailbox = runtime.mailbox("task-server")
        node.rpc.serve(TASK_SERVER_PORT, mailbox)
        runtime.fork_system(self._server(node, mailbox), name="task-server")

    def _server(self, node, mailbox) -> Generator:
        while True:
            msg = yield from mailbox.begin_get()
            header = NectarTransportHeader.unpack(
                msg.read(0, NectarTransportHeader.SIZE)
            )
            body = msg.read(NectarTransportHeader.SIZE)
            yield from mailbox.end_get(msg)
            name, arg = self.decode_request(body)
            factory = self._factories.get(name)
            if factory is None:
                yield from node.rpc.respond(header, b"ERR unknown task")
                continue
            tcb = node.runtime.fork_application(factory(node, arg), name=f"task:{name}")
            yield from node.rpc.respond(header, b"OK " + tcb.name.encode())
