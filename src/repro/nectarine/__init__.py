"""Nectarine: the Nectar application interface (paper Sec. 3.5).

A library linked into the application's address space that presents the
*same* procedural interface on the CAB and on the host: mailbox creation and
access, datagram / reliable-message / request-response communication, RPC,
and remote mailbox and task creation on other nodes.
"""

from repro.nectarine.naming import MailboxAddress, NameService
from repro.nectarine.api import CabNectarine, HostNectarine, Nectarine
from repro.nectarine.tasks import TaskRegistry

__all__ = [
    "CabNectarine",
    "HostNectarine",
    "MailboxAddress",
    "NameService",
    "Nectarine",
    "TaskRegistry",
]
