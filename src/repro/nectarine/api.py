"""The Nectarine procedural interface, identical on CAB and host.

:class:`CabNectarine` runs operations directly in CAB thread context;
:class:`HostNectarine` runs them from host processes, using the device
driver's shared-memory mailbox operations and offloading transport work to
the CAB — hiding the details of the host-CAB interface, exactly the role
the paper gives the library.

All methods are generators to be driven with ``yield from`` inside the
caller's thread/process body.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional, Union

from repro.errors import AddressError
from repro.nectarine.naming import MailboxAddress, NameService
from repro.nectarine.tasks import TASK_SERVER_PORT, TaskRegistry
from repro.protocols.headers import (
    NECTAR_KIND_DATA,
    NECTAR_PROTO_DATAGRAM,
    NectarTransportHeader,
)
from repro.runtime.mailbox import Mailbox, Message

__all__ = ["CabNectarine", "HostNectarine", "MailboxFactory", "Nectarine"]

#: Well-known port of the per-node mailbox factory service.
MAILBOX_FACTORY_PORT = 0x4D58


class MailboxFactory:
    """Per-node service that creates mailboxes on behalf of remote callers.

    Nectarine "allows applications to create mailboxes and tasks on other
    hosts or CABs" (paper Sec. 3.5); this is the mailbox half.  Install one
    per node; remote creation is a single RPC whose reply carries the new
    network-wide address.
    """

    def __init__(self, node, names: NameService):
        self.node = node
        self.names = names
        self._mailbox = node.runtime.mailbox("mailbox-factory")
        node.rpc.serve(MAILBOX_FACTORY_PORT, self._mailbox)
        node.runtime.fork_system(self._server(), "mailbox-factory")

    def _server(self) -> Generator:
        while True:
            msg = yield from self._mailbox.begin_get()
            header = NectarTransportHeader.unpack(
                msg.read(0, NectarTransportHeader.SIZE)
            )
            body = msg.read(NectarTransportHeader.SIZE)
            yield from self._mailbox.end_get(msg)
            name, _sep, publish_as = body.partition(b"\x00")
            try:
                mailbox = self.node.runtime.mailbox(name.decode())
                port = self.names.allocate_port(self.node.node_id)
                self.node.datagram.bind(port, mailbox)
                address = MailboxAddress(self.node.node_id, port)
                if publish_as:
                    self.names.publish(publish_as.decode(), address)
                reply = f"OK {address.node_id}:{address.port}".encode()
            except Exception as exc:  # creation is best-effort for callers
                reply = f"ERR {exc}".encode()
            yield from self.node.rpc.respond(header, reply)


class Nectarine:
    """Shared plumbing for both flavours of the interface."""

    def __init__(self, node, names: NameService, tasks: Optional[TaskRegistry] = None):
        self.node = node
        self.names = names
        self.tasks = tasks

    # -- naming ---------------------------------------------------------------

    def lookup(self, service: str) -> MailboxAddress:
        """Resolve a published service name to its address."""
        return self.names.lookup(service)

    def _resolve(self, target: Union[str, MailboxAddress]) -> MailboxAddress:
        if isinstance(target, MailboxAddress):
            return target
        return self.names.lookup(target)


class CabNectarine(Nectarine):
    """The interface as seen by tasks running *on* the CAB."""

    # -- mailboxes ---------------------------------------------------------------

    def create_mailbox(self, name: str, publish_as: Optional[str] = None) -> tuple[Mailbox, MailboxAddress]:
        """Create a mailbox reachable from the whole network via datagrams."""
        mailbox = self.node.runtime.mailbox(name)
        port = self.names.allocate_port(self.node.node_id)
        self.node.datagram.bind(port, mailbox)
        address = MailboxAddress(self.node.node_id, port)
        if publish_as:
            self.names.publish(publish_as, address)
        return mailbox, address

    def send(self, target: Union[str, MailboxAddress], data: bytes, src_port: int = 0) -> Generator:
        """Unreliable datagram to a network-wide mailbox address."""
        address = self._resolve(target)
        yield from self.node.datagram.send(src_port, address.node_id, address.port, data)

    def receive(self, mailbox: Mailbox) -> Generator:
        """Next message's bytes from a mailbox (blocking)."""
        msg = yield from mailbox.begin_get()
        data = yield from self.node.runtime.read_message(msg)
        yield from mailbox.end_get(msg)
        return data

    # -- RPC ------------------------------------------------------------------------

    def call(self, target: Union[str, MailboxAddress], data: bytes) -> Generator:
        """Request-response call; returns the response bytes."""
        address = self._resolve(target)
        port = self.node.rpc.allocate_client_port()
        reply = yield from self.node.rpc.request(port, address.node_id, address.port, data)
        return reply

    def serve(self, name: str, handler: Callable[[bytes], bytes], port: Optional[int] = None) -> MailboxAddress:
        """Publish an RPC service; ``handler(request_bytes) -> response``.

        Spawns a server thread feeding the handler.  (Plain function
        handlers only; stateful servers can use the lower-level API.)
        """
        if port is None:
            port = self.names.allocate_port(self.node.node_id)
        mailbox = self.node.runtime.mailbox(f"svc-{name}")
        self.node.rpc.serve(port, mailbox)
        address = MailboxAddress(self.node.node_id, port)
        self.names.publish(name, address)
        self.node.runtime.fork_system(
            self._service_loop(mailbox, handler), name=f"svc:{name}"
        )
        return address

    def _service_loop(self, mailbox: Mailbox, handler) -> Generator:
        while True:
            msg = yield from mailbox.begin_get()
            header = NectarTransportHeader.unpack(
                msg.read(0, NectarTransportHeader.SIZE)
            )
            body = msg.read(NectarTransportHeader.SIZE)
            yield from mailbox.end_get(msg)
            response = handler(body)
            yield from self.node.rpc.respond(header, response)

    # -- remote creation ---------------------------------------------------------------

    def create_remote_task(self, node_id: int, task: str, arg: bytes = b"") -> Generator:
        """Start a named task on another node; returns the server's reply."""
        if self.tasks is None or task not in self.tasks:
            raise AddressError(f"task {task!r} is not registered")
        port = self.node.rpc.allocate_client_port()
        reply = yield from self.node.rpc.request(
            port, node_id, TASK_SERVER_PORT, TaskRegistry.encode_request(task, arg)
        )
        return reply

    def create_remote_mailbox(
        self, node_id: int, name: str, publish_as: str = ""
    ) -> Generator:
        """Create a mailbox on another node (its MailboxFactory must be
        installed); returns the new mailbox's network-wide address."""
        port = self.node.rpc.allocate_client_port()
        request = name.encode() + b"\x00" + publish_as.encode()
        reply = yield from self.node.rpc.request(
            port, node_id, MAILBOX_FACTORY_PORT, request
        )
        if not reply.startswith(b"OK "):
            raise AddressError(f"remote mailbox creation failed: {reply!r}")
        node_text, _colon, port_text = reply[3:].decode().partition(":")
        return MailboxAddress(int(node_text), int(port_text))


class HostNectarine(Nectarine):
    """The interface as seen by host processes.

    Same operations, but mailbox access goes through the mapped CAB memory
    and transport operations are offloaded to the CAB.
    """

    def __init__(self, hosted, names: NameService, tasks: Optional[TaskRegistry] = None):
        super().__init__(hosted.node, names, tasks)
        self.hosted = hosted
        self.driver = hosted.driver

    def init(self) -> Generator:
        """Program initialization: map CAB memory (paper Sec. 3.2)."""
        yield from self.driver.map_cab_memory()

    # -- mailboxes ----------------------------------------------------------------

    def create_mailbox(self, name: str, publish_as: Optional[str] = None) -> tuple[Mailbox, MailboxAddress]:
        """Create a network-reachable mailbox on this node's CAB."""
        mailbox = self.node.runtime.mailbox(name)
        port = self.names.allocate_port(self.node.node_id)
        self.node.datagram.bind(port, mailbox)
        address = MailboxAddress(self.node.node_id, port)
        if publish_as:
            self.names.publish(publish_as, address)
        return mailbox, address

    def send(self, target: Union[str, MailboxAddress], data: bytes, src_port: int = 0) -> Generator:
        """Datagram send from the host: build the packet in the datagram
        send mailbox; the CAB send thread transmits it."""
        address = self._resolve(target)
        send_mailbox = self.node.datagram.send_mailbox
        header = NectarTransportHeader(
            protocol=NECTAR_PROTO_DATAGRAM,
            kind=NECTAR_KIND_DATA,
            src_port=src_port,
            dst_node=address.node_id,
            dst_port=address.port,
        )
        msg = yield from self.driver.begin_put(
            send_mailbox, NectarTransportHeader.SIZE + len(data)
        )
        yield from self.driver.fill(msg, header.pack() + data)
        yield from self.driver.end_put(send_mailbox, msg)

    def receive(self, mailbox: Mailbox, blocking: bool = False) -> Generator:
        """Next message's bytes from a mailbox (read over VME)."""
        msg = yield from self.driver.begin_get(mailbox, blocking=blocking)
        data = yield from self.driver.read(msg)
        yield from self.driver.end_get(mailbox, msg)
        return data

    # -- RPC --------------------------------------------------------------------------

    def call(self, target: Union[str, MailboxAddress], data: bytes) -> Generator:
        """RPC from the host: the transport work runs on the CAB."""
        address = self._resolve(target)
        node = self.node

        def on_cab() -> Generator:
            port = node.rpc.allocate_client_port()
            reply = yield from node.rpc.request(
                port, address.node_id, address.port, data
            )
            return reply

        reply = yield from self.driver.call_cab(on_cab)
        return reply

    # -- remote creation ------------------------------------------------------------------

    def create_remote_task(self, node_id: int, task: str, arg: bytes = b"") -> Generator:
        """Start a named task on another node via its task server."""
        if self.tasks is None or task not in self.tasks:
            raise AddressError(f"task {task!r} is not registered")
        node = self.node
        payload = TaskRegistry.encode_request(task, arg)

        def on_cab() -> Generator:
            port = node.rpc.allocate_client_port()
            reply = yield from node.rpc.request(
                port, node_id, TASK_SERVER_PORT, payload
            )
            return reply

        reply = yield from self.driver.call_cab(on_cab)
        return reply
