"""Network-wide mailbox addressing and the name service.

A mailbox has a network-wide address (paper Sec. 3.3): (node id, port).
The :class:`NameService` maps human-readable service names to addresses so
applications can find each other; in the real system this was a well-known
directory, which we model as shared state (it is not on any timing path).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator

from repro.errors import AddressError

__all__ = ["MailboxAddress", "NameService"]


@dataclass(frozen=True)
class MailboxAddress:
    """A network-wide mailbox address."""

    node_id: int
    port: int

    def __str__(self) -> str:
        return f"{self.node_id}:{self.port}"


class NameService:
    """Service name -> mailbox address directory."""

    def __init__(self):
        self._names: Dict[str, MailboxAddress] = {}
        self._next_port: Dict[int, int] = {}

    def allocate_port(self, node_id: int) -> int:
        """A fresh port number on a node (Nectarine-managed range)."""
        port = self._next_port.get(node_id, 0x1000)
        self._next_port[node_id] = port + 1
        return port

    def publish(self, name: str, address: MailboxAddress) -> None:
        """Bind a service name to a mailbox address."""
        if name in self._names:
            raise AddressError(f"service name {name!r} already published")
        self._names[name] = address

    def withdraw(self, name: str) -> None:
        """Remove a published service name."""
        if name not in self._names:
            raise AddressError(f"service name {name!r} is not published")
        del self._names[name]

    def lookup(self, name: str) -> MailboxAddress:
        """The address behind a service name (raises if unknown)."""
        if name not in self._names:
            raise AddressError(f"unknown service name {name!r}")
        return self._names[name]

    def __contains__(self, name: str) -> bool:
        return name in self._names

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)
