"""Hardware building blocks: memory, FIFOs, CRC, DMA, fibers, the VME bus."""

from repro.hw.crc import CRC32, crc32
from repro.hw.fifo import ByteFIFO, Chunk
from repro.hw.memory import MemoryRegion, PAGE_SIZE, ProtectionDomain
from repro.hw.vme import VMEBus

__all__ = [
    "ByteFIFO",
    "CRC32",
    "Chunk",
    "MemoryRegion",
    "PAGE_SIZE",
    "ProtectionDomain",
    "VMEBus",
    "crc32",
]
