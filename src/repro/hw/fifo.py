"""Bounded byte FIFOs between the fibers and CAB memory.

The CAB has an input FIFO and an output FIFO between the optical fibers and
its memory (paper Sec. 2.2).  The DMA controller "waits for data to arrive if
the input FIFO is empty, or for data to drain if the output FIFO is full" —
that low-level flow control is modelled by the blocking ``wait_space`` /
``wait_data`` events here.

Frames move through the FIFO as :class:`Chunk` records (a frame reference,
an offset and a length) rather than individual bytes; the FIFO does exact
byte accounting for capacity and flow control while the actual payload bytes
ride on the frame object.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque

from repro.errors import CABError
from repro.sim.core import Event, Simulator

__all__ = ["ByteFIFO", "Chunk"]


@dataclass(frozen=True)
class Chunk:
    """A contiguous piece of a frame moving through a FIFO or link."""

    frame: Any
    offset: int
    length: int
    is_first: bool
    is_last: bool

    def __post_init__(self):
        if self.length <= 0:
            raise CABError(f"chunk length must be positive, got {self.length}")
        if self.offset < 0:
            raise CABError(f"chunk offset must be non-negative, got {self.offset}")


class ByteFIFO:
    """A bounded FIFO of chunks with byte-granularity capacity."""

    def __init__(self, sim: Simulator, capacity: int, name: str = "fifo"):
        if capacity <= 0:
            raise CABError(f"FIFO capacity must be positive, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self.level = 0  # bytes currently buffered
        #: Bytes withheld from producers by a fault-injection squeeze.  Only
        #: space *grants* honour the reserve, so a producer that was already
        #: granted space can still push — the squeeze adds back-pressure but
        #: never turns a legal push into an overflow.
        self.squeeze_reserve = 0
        self._chunks: Deque[Chunk] = deque()
        self._space_waiters: Deque[tuple[int, Event]] = deque()
        self._data_waiters: Deque[Event] = deque()
        self.total_in = 0
        self.total_out = 0
        #: Optional repro.sim.trace.Tracer sampling the fill level as a
        #: counter track; one attribute test per push/pop when detached.
        self.tracer = None

    def __len__(self) -> int:
        return len(self._chunks)

    @property
    def free(self) -> int:
        return self.capacity - self.level

    @property
    def grantable(self) -> int:
        """Free space visible to new grants (squeeze reserve withheld)."""
        return self.capacity - self.level - self.squeeze_reserve

    @property
    def is_empty(self) -> bool:
        return self.level == 0

    # -- producer side -----------------------------------------------------

    def wait_space(self, nbytes: int) -> Event:
        """Event that fires when ``nbytes`` of space is available.

        Space waiters are served strictly in order, so a large chunk cannot
        be starved by a stream of small ones.
        """
        if nbytes > self.capacity:
            raise CABError(
                f"{self.name}: chunk of {nbytes} bytes exceeds capacity "
                f"{self.capacity}"
            )
        event = self.sim.event(name=f"space:{self.name}")
        if not self._space_waiters and self.grantable >= nbytes:
            event.succeed()
        else:
            self._space_waiters.append((nbytes, event))
        return event

    def push(self, chunk: Chunk) -> None:
        """Add a chunk.  Caller must have waited for space."""
        if chunk.length > self.free:
            raise CABError(
                f"{self.name}: push of {chunk.length} bytes overflows "
                f"({self.level}/{self.capacity} used)"
            )
        self._chunks.append(chunk)
        self.level += chunk.length
        self.total_in += chunk.length
        if self.tracer is not None:
            self.tracer.counter("fifo", "level", self.level, track=self.name)
        while self._data_waiters:
            self._data_waiters.popleft().succeed()

    # -- consumer side -----------------------------------------------------

    def wait_data(self) -> Event:
        """Event that fires when at least one chunk is buffered."""
        event = self.sim.event(name=f"data:{self.name}")
        if self._chunks:
            event.succeed()
        else:
            self._data_waiters.append(event)
        return event

    def pop(self) -> Chunk:
        """Remove and return the oldest chunk."""
        if not self._chunks:
            raise CABError(f"{self.name}: pop from empty FIFO")
        chunk = self._chunks.popleft()
        self.level -= chunk.length
        self.total_out += chunk.length
        if self.tracer is not None:
            self.tracer.counter("fifo", "level", self.level, track=self.name)
        self._grant_space()
        return chunk

    def peek(self) -> Chunk:
        """The oldest chunk without removing it (raises when empty)."""
        if not self._chunks:
            raise CABError(f"{self.name}: peek at empty FIFO")
        return self._chunks[0]

    def drain(self) -> list[Chunk]:
        """Remove everything (used when a corrupted frame is discarded)."""
        chunks = list(self._chunks)
        self._chunks.clear()
        self.level = 0
        self.total_out += sum(chunk.length for chunk in chunks)
        if self.tracer is not None:
            self.tracer.counter("fifo", "level", self.level, track=self.name)
        self._grant_space()
        return chunks

    def recheck_space(self) -> None:
        """Re-run space granting (after a squeeze reserve is released)."""
        self._grant_space()

    # -- internal ------------------------------------------------------------

    def _grant_space(self) -> None:
        while self._space_waiters and self.grantable >= self._space_waiters[0][0]:
            _nbytes, event = self._space_waiters.popleft()
            event.succeed()
