"""Fiber-optic link endpoints and link-level frames.

Each CAB connects to a HUB I/O port with two optical fibers, one per
direction (paper Sec. 2.2).  Frames carry a *source route* (the sequence of
HUB output ports to traverse, paper Sec. 2.1) plus the datalink payload
bytes; the CRC is computed by hardware at egress and checked at ingress.

Frames move as :class:`~repro.hw.fifo.Chunk` pieces so that transmission,
switching and reception overlap in time (cut-through), and so that FIFO
backpressure (the HUB's low-level flow control) is exercised for real.

Zero-copy discipline (docs/buffers.md): a frame's payload is a
:class:`~repro.buf.BufView` over a private refcounted
:class:`~repro.buf.PacketBuffer` — materialized exactly once at send time
(the TX DMA moving bytes out of CAB memory) with the datalink header
prepended into reserved headroom.  CRC, chunking, store-and-forward, and
the receive DMA all operate on views of that one buffer; whoever
terminates the frame's journey calls :meth:`Frame.release`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from repro.buf.packet import BufView, PacketBuffer
from repro.errors import CABError
from repro.hw.crc import crc32
from repro.hw.fifo import ByteFIFO, Chunk
from repro.sim.core import Simulator

__all__ = ["CHUNK_BYTES", "FiberIn", "FiberOut", "Frame"]

#: Granularity at which frames move through FIFOs and links.  Small enough
#: that header processing overlaps the arrival of an 8 KB body; large enough
#: that the event count stays low.
CHUNK_BYTES = 512

_frame_seq = itertools.count(1)


@dataclass
class Frame:
    """A link-level frame: source route + a view of the datalink payload."""

    route: tuple[int, ...]
    payload: BufView
    src: str = "?"
    crc: int = 0
    seqno: int = field(default_factory=lambda: next(_frame_seq))
    created_ns: int = 0
    #: Invoked (in event context) when the sender's DMA has fully drained the
    #: frame from CAB memory — the send buffer may be reused from then on.
    on_dma_done: Optional[Callable[["Frame"], None]] = None
    #: Set by a fault injector: the network eats the frame (never delivered).
    drop: bool = False
    #: An open circuit to send over (skips per-frame connection setup).
    circuit: Optional[object] = None

    def __post_init__(self):
        if not isinstance(self.payload, BufView):
            # Construction from raw bytes (tests, cross-process hand-off
            # import): adopt a private mutable copy so this frame owns its
            # storage outright — the one sanctioned boundary copy here.
            self.payload = PacketBuffer.wrap(
                bytearray(self.payload), label="frame"  # nectarlint: disable=NB201
            )
        if len(self.payload) == 0:
            raise CABError("empty frame payload")

    @property
    def size(self) -> int:
        return len(self.payload)

    def seal(self) -> None:
        """Compute the egress CRC over the (current) payload bytes."""
        self.crc = crc32(self.payload.mv())

    def crc_ok(self) -> bool:
        """Ingress check: does the payload still match the egress CRC?"""
        return crc32(self.payload.mv()) == self.crc

    def release(self) -> None:
        """Drop the frame's reference on its payload storage.

        Called by whoever terminates the frame's journey: the receive DMA
        (delivered), the receive sink (discarded), the link process (frames
        eaten by a drop injector), or the hand-off seam when the frame's
        payload is exported to another shard.
        """
        self.payload.release()

    def corrupt(self, index: int) -> None:
        """Flip one payload byte in place (a wire fault).

        Called after :meth:`seal`, so the egress CRC no longer matches and
        the receiving CAB's hardware CRC check rejects the frame.
        """
        if not 0 <= index < len(self.payload):
            raise CABError(
                f"corrupt index {index} outside {len(self.payload)}-byte payload"
            )
        self.payload[index] ^= 0xFF

    def chunks(self) -> Iterator[Chunk]:
        """Split the frame into link chunks."""
        total = len(self.payload)
        offset = 0
        while offset < total:
            length = min(CHUNK_BYTES, total - offset)
            yield Chunk(
                frame=self,
                offset=offset,
                length=length,
                is_first=(offset == 0),
                is_last=(offset + length >= total),
            )
            offset += length

    def chunk_bytes(self, chunk: Chunk) -> memoryview:
        """The payload bytes covered by one chunk, as a zero-copy view.

        Consumers never mutate through this: the receive DMA copies it into
        CAB memory (the one genuine landing copy) and tests reassemble from
        it.  Wire corruption goes through :meth:`corrupt` instead.
        """
        return self.payload.mv()[chunk.offset : chunk.offset + chunk.length]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Frame #{self.seqno} {self.size}B route={self.route} from {self.src}>"


class FiberOut:
    """The transmit fiber endpoint of a CAB: the output FIFO.

    The CAB's transmit DMA fills the FIFO from data memory; the network link
    process drains it onto the fiber at line rate.
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = "fiber-out"):
        self.sim = sim
        self.name = name
        self.fifo = ByteFIFO(sim, capacity, name=f"{name}.fifo")


class FiberIn:
    """The receive fiber endpoint of a CAB: the input FIFO.

    The network pushes arriving chunks here (blocking on FIFO space — that is
    the link-level flow control); the CAB's receive path drains it.
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = "fiber-in"):
        self.sim = sim
        self.name = name
        self.fifo = ByteFIFO(sim, capacity, name=f"{name}.fifo")
