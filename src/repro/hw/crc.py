"""CRC-32 as implemented by the CAB's checksum hardware.

The CAB computes cyclic redundancy checksums for incoming and outgoing fiber
data in hardware (paper Sec. 2.2), concurrently with the DMA transfer, so the
CRC costs no CPU time in the simulation.  The *value* is computed for real
here (IEEE 802.3 polynomial, reflected, table-driven) so that bit corruption
injected on a link is genuinely detected at the receiving CAB.
"""

from __future__ import annotations

__all__ = ["CRC32", "crc32"]

_POLY = 0xEDB88320  # reflected IEEE 802.3 polynomial


def _build_table() -> tuple[int, ...]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ _POLY
            else:
                crc >>= 1
        table.append(crc)
    return tuple(table)


_TABLE = _build_table()


def crc32(data: bytes, crc: int = 0) -> int:
    """CRC-32 of ``data``, continuing from a previous value ``crc``.

    Matches the standard (zlib-compatible) CRC-32.
    """
    crc ^= 0xFFFFFFFF
    for byte in data:
        crc = _TABLE[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


class CRC32:
    """Incremental CRC engine, mirroring the CAB's streaming hardware."""

    def __init__(self):
        self._crc = 0
        self._bytes = 0

    def update(self, data: bytes) -> None:
        """Fold more bytes into the running CRC."""
        self._crc = crc32(data, self._crc)
        self._bytes += len(data)

    @property
    def value(self) -> int:
        return self._crc

    @property
    def bytes_processed(self) -> int:
        return self._bytes

    def reset(self) -> None:
        """Restart the engine for a new frame."""
        self._crc = 0
        self._bytes = 0
