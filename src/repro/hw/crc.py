"""CRC-32 as implemented by the CAB's checksum hardware.

The CAB computes cyclic redundancy checksums for incoming and outgoing fiber
data in hardware (paper Sec. 2.2), concurrently with the DMA transfer, so the
CRC costs no CPU time in the simulation.  The *value* is computed for real
here (IEEE 802.3 polynomial, reflected) so that bit corruption injected on a
link is genuinely detected at the receiving CAB.

The computation delegates to :func:`zlib.crc32`, which implements exactly
this polynomial with the same chaining semantics as the previous table-driven
loop (``crc32(b, crc32(a)) == crc32(a + b)``) — and, crucially for the
zero-copy buffer plane, accepts any buffer object, so frames are summed
straight out of a :class:`memoryview` with no intermediate ``bytes``.
"""

from __future__ import annotations

import zlib

__all__ = ["CRC32", "crc32"]


def crc32(data, crc: int = 0) -> int:
    """CRC-32 of ``data`` (any bytes-like buffer), continuing from ``crc``.

    Matches the standard (zlib-compatible) CRC-32.
    """
    return zlib.crc32(data, crc)


class CRC32:
    """Incremental CRC engine, mirroring the CAB's streaming hardware."""

    def __init__(self):
        self._crc = 0
        self._bytes = 0

    def update(self, data) -> None:
        """Fold more bytes into the running CRC."""
        self._crc = crc32(data, self._crc)
        self._bytes += len(data)

    @property
    def value(self) -> int:
        return self._crc

    @property
    def bytes_processed(self) -> int:
        return self._bytes

    def reset(self) -> None:
        """Restart the engine for a new frame."""
        self._crc = 0
        self._bytes = 0
