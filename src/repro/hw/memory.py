"""Byte-addressed memory regions with page-granular protection domains.

The CAB memory is split into a program region and a data region (paper
Sec. 2.2).  Memory protection hardware associates access permissions with
each 1 Kbyte page; multiple protection domains each have their own permission
set, and switching domains is a single register reload.  We model the
protection tables exactly; the permission check itself is free (it is
hardware).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import MemoryFault

__all__ = ["MemoryRegion", "PAGE_SIZE", "Perm", "ProtectionDomain"]

#: Protection granularity. [paper Sec. 2.2: "each 1 Kbyte page"]
PAGE_SIZE = 1024


class Perm:
    """Permission bits for a page."""

    NONE = 0
    READ = 1
    WRITE = 2
    RW = READ | WRITE


class ProtectionDomain:
    """One protection domain: a page -> permission map for a region.

    Pages not present in the map get the domain's default permission.
    """

    def __init__(self, name: str, default: int = Perm.RW):
        self.name = name
        self.default = default
        self._pages: Dict[int, int] = {}

    def set_page(self, page_index: int, perm: int) -> None:
        """Set one page's permission bits."""
        if page_index < 0:
            raise MemoryFault(f"negative page index {page_index}")
        self._pages[page_index] = perm

    def set_range(self, start_addr: int, size: int, perm: int) -> None:
        """Set permission for all pages overlapping [start, start+size)."""
        if size <= 0:
            raise MemoryFault(f"bad protection range size {size}")
        first = start_addr // PAGE_SIZE
        last = (start_addr + size - 1) // PAGE_SIZE
        for page in range(first, last + 1):
            self._pages[page] = perm

    def perm_for(self, page_index: int) -> int:
        """Permission bits for a page (the default if unset)."""
        return self._pages.get(page_index, self.default)

    def allows(self, addr: int, size: int, write: bool) -> bool:
        """Whether an access of ``size`` bytes at ``addr`` is permitted."""
        needed = Perm.WRITE if write else Perm.READ
        first = addr // PAGE_SIZE
        last = (addr + size - 1) // PAGE_SIZE
        return all(self.perm_for(page) & needed for page in range(first, last + 1))


class MemoryRegion:
    """A contiguous region of byte-addressable memory.

    Addresses are region-relative.  All reads/writes are bounds-checked; if a
    protection domain is active, accesses are permission-checked too.
    """

    def __init__(self, name: str, size: int):
        if size <= 0:
            raise MemoryFault(f"region size must be positive, got {size}")
        self.name = name
        self.size = size
        self._bytes = bytearray(size)
        self._domain: Optional[ProtectionDomain] = None
        #: Optional repro.analysis.sanitizers.Sanitizer (race/UAF checks) and
        #: the callable giving the current execution context label.  One
        #: attribute test per access when detached.
        self.sanitizer = None
        self.context_provider = None
        #: Optional repro.buf.accounting.CopyMeter counting host-level byte
        #: copies (read/write/fill materialize or move bytes; the view
        #: accessors do not).  One attribute test per access when detached.
        self.copy_meter = None

    # -- protection ----------------------------------------------------------

    @property
    def domain(self) -> Optional[ProtectionDomain]:
        return self._domain

    def load_domain(self, domain: Optional[ProtectionDomain]) -> None:
        """Switch protection domain (a single register reload on the CAB)."""
        self._domain = domain

    def _check(self, addr: int, size: int, write: bool) -> None:
        if size < 0:
            raise MemoryFault(f"{self.name}: negative access size {size}")
        if addr < 0 or addr + size > self.size:
            kind = "write" if write else "read"
            raise MemoryFault(
                f"{self.name}: {kind} [{addr}, {addr + size}) outside region "
                f"of {self.size} bytes"
            )
        if self._domain is not None and size > 0:
            if not self._domain.allows(addr, size, write):
                kind = "write" if write else "read"
                raise MemoryFault(
                    f"{self.name}: {kind} [{addr}, {addr + size}) denied by "
                    f"protection domain {self._domain.name!r}"
                )

    # -- access ----------------------------------------------------------------

    def read(self, addr: int, size: int) -> bytes:
        """Bounds- and permission-checked read of ``size`` bytes."""
        self._check(addr, size, write=False)
        if self.sanitizer is not None:
            self.sanitizer.on_memory_access(self, addr, size, write=False)
        if self.copy_meter is not None:
            self.copy_meter.count(size)
        return bytes(self._bytes[addr : addr + size])

    def write(self, addr: int, data: bytes) -> None:
        """Bounds- and permission-checked write of ``data``."""
        self._check(addr, len(data), write=True)
        if self.sanitizer is not None:
            self.sanitizer.on_memory_access(self, addr, len(data), write=True)
        if self.copy_meter is not None:
            self.copy_meter.count(len(data))
        self._bytes[addr : addr + len(data)] = data

    def read_word(self, addr: int) -> int:
        """Read a 32-bit big-endian word."""
        return int.from_bytes(self.read(addr, 4), "big")

    def write_word(self, addr: int, value: int) -> None:
        """Write a 32-bit big-endian word."""
        self.write(addr, (value & 0xFFFFFFFF).to_bytes(4, "big"))

    def fill(self, addr: int, size: int, value: int = 0) -> None:
        """Set ``size`` bytes at ``addr`` to ``value``."""
        self._check(addr, size, write=True)
        if self.sanitizer is not None:
            self.sanitizer.on_memory_access(self, addr, size, write=True)
        if self.copy_meter is not None:
            self.copy_meter.count(size)
        self._bytes[addr : addr + size] = bytes([value & 0xFF]) * size

    def view(self, addr: int, size: int) -> memoryview:
        """A writable view (used by DMA engines; checked once here)."""
        self._check(addr, size, write=True)
        if self.sanitizer is not None:
            self.sanitizer.on_memory_access(self, addr, size, write=True)
        return memoryview(self._bytes)[addr : addr + size]

    def read_view(self, addr: int, size: int) -> memoryview:
        """A read-only view: bounds/permission-checked, zero host copies.

        The zero-copy read accessor of the buffer plane (docs/buffers.md):
        CRC, checksum, and header-unpack code consume the view in place
        instead of materializing ``bytes``.
        """
        self._check(addr, size, write=False)
        if self.sanitizer is not None:
            self.sanitizer.on_memory_access(self, addr, size, write=False)
        return memoryview(self._bytes)[addr : addr + size].toreadonly()
