"""The VME bus connecting a host to its CAB.

The VME bus is the host/CAB performance bottleneck in the paper (Sec. 6.3):
programmed I/O costs ~1 us per 32-bit access, and block (DMA) transfers run
at ~30 Mbit/s.  The bus is a single shared resource — programmed I/O from the
host, DMA transfers, and cross-bus interrupts all contend for it — so the
Figure 8 flattening emerges from contention rather than from a hard-coded
ceiling.
"""

from __future__ import annotations

from typing import Callable, Generator

from repro.model.costs import CostModel
from repro.model.stats import StatsRegistry
from repro.sim.core import Simulator
from repro.sim.primitives import Resource

__all__ = ["VMEBus"]


class VMEBus:
    """One VME backplane segment shared by a host and its CAB."""

    def __init__(self, sim: Simulator, costs: CostModel, name: str = "vme"):
        self.sim = sim
        self.costs = costs
        self.name = name
        self._bus = Resource(sim, slots=1, name=f"{name}.bus")
        self.stats = StatsRegistry()
        #: Optional repro.sim.trace.Tracer for bus-occupancy spans (wired by
        #: HostedNode); one attribute test per transfer when detached.
        self.tracer = None

    # -- transfers -----------------------------------------------------------

    def pio(self, nbytes: int) -> Generator:
        """Programmed-I/O transfer of ``nbytes`` (word-at-a-time).

        A generator to be driven with ``yield from`` by a simulation process
        (or wrapped in a CPU compute by callers that model the CPU being
        busy — PIO *does* occupy the issuing CPU).
        """
        if nbytes < 0:
            raise ValueError(f"negative PIO size {nbytes}")
        yield self._bus.acquire()
        # The span opens only once the bus is held, so concurrent transfer
        # attempts serialize and the spans on this track nest correctly.
        if self.tracer is not None:
            self.tracer.begin("vme", "pio", {"bytes": nbytes}, track=self.name)
        try:
            yield self.sim.timeout(self.costs.vme_pio_ns(nbytes))
            self.stats.add("pio_bytes", nbytes)
            self.stats.add("pio_transfers")
        finally:
            if self.tracer is not None:
                self.tracer.end("vme", "pio", track=self.name)
            self._bus.release()

    def dma(self, nbytes: int) -> Generator:
        """Block transfer of ``nbytes`` at the VME DMA rate."""
        if nbytes < 0:
            raise ValueError(f"negative DMA size {nbytes}")
        yield self._bus.acquire()
        if self.tracer is not None:
            self.tracer.begin("vme", "dma", {"bytes": nbytes}, track=self.name)
        try:
            yield self.sim.timeout(self.costs.vme_dma_ns(nbytes))
            self.stats.add("dma_bytes", nbytes)
            self.stats.add("dma_transfers")
        finally:
            if self.tracer is not None:
                self.tracer.end("vme", "dma", track=self.name)
            self._bus.release()

    def transfer(self, nbytes: int) -> Generator:
        """PIO for small transfers, DMA above the threshold (plus setup)."""
        if nbytes >= self.costs.vme_dma_threshold_bytes:
            yield self.sim.timeout(self.costs.vme_dma_setup_ns)
            yield from self.dma(nbytes)
        else:
            yield from self.pio(nbytes)

    # -- interrupts ------------------------------------------------------------

    def post_interrupt(self, deliver: Callable[[], None]) -> None:
        """Deliver a cross-bus interrupt after the bus interrupt latency.

        ``deliver`` runs in event context on the receiving side (it should
        post to that side's interrupt controller).
        """
        event = self.sim.event(name=f"{self.name}.irq")
        event.callbacks.append(lambda _ev: deliver())
        event.succeed(delay=self.costs.vme_interrupt_ns)
        self.stats.add("interrupts")

    @property
    def busy(self) -> bool:
        return self._bus.in_use > 0

    @property
    def bus(self) -> Resource:
        """The underlying arbitration resource (for CPU-context callers)."""
        return self._bus
