"""System builder: assemble a whole Nectar network in a few lines.

:class:`NectarSystem` owns the simulator, cost model, fabric, and node
registry; :meth:`NectarSystem.add_node` builds one CAB with its complete
protocol stack (datalink, IP, ICMP, UDP, TCP, and the three Nectar-specific
transports).  Hosts are attached to nodes by :mod:`repro.host.machine`.

Typical use::

    system = NectarSystem()
    hub = system.add_hub("hub0")
    a = system.add_node("cab-a", hub, 0)
    b = system.add_node("cab-b", hub, 1)
    # ... fork threads on a.runtime / b.runtime, then:
    system.run()
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.buf.accounting import CopyMeter
from repro.cab.board import CAB
from repro.errors import ConfigurationError
from repro.hub.crossbar import Hub
from repro.hub.network import NectarNetwork
from repro.model.costs import CostModel, DEFAULT_COSTS
from repro.protocols.addressing import NodeRegistry
from repro.protocols.datalink import Datalink
from repro.protocols.icmp import ICMPProtocol
from repro.protocols.ip import IPProtocol
from repro.protocols.nectar.collective import CollectiveEngine
from repro.protocols.nectar.datagram import DatagramProtocol
from repro.protocols.nectar.nmp import NMPProtocol
from repro.protocols.nectar.reqresp import RequestResponseProtocol
from repro.protocols.nectar.rmp import RMPProtocol
from repro.protocols.nectar.transport import NectarTransportLayer
from repro.protocols.tcp.tcp import TCPProtocol
from repro.protocols.udp import UDPProtocol
from repro.runtime.kernel import Runtime
from repro.sim.core import Simulator
from repro.sim.trace import Tracer

__all__ = ["NectarNode", "NectarSystem"]


class NectarNode:
    """One CAB with its full protocol stack."""

    def __init__(
        self,
        system: "NectarSystem",
        name: str,
        hub: Hub,
        port: int,
        tcp_checksums: bool = True,
        udp_checksums: bool = True,
        mtu: int = 9000,
        ip_input_mode: str = "interrupt",
        tcp_congestion_control: bool = False,
    ):
        self.system = system
        self.name = name
        self.cab = CAB(system.sim, system.costs, name)
        # Host-copy accounting: every region access and packet buffer on
        # this node counts into the system-wide meter (host.memcpy_bytes).
        self.cab.copy_meter = system.copy_meter
        self.cab.data_mem.copy_meter = system.copy_meter
        self.cab.program_mem.copy_meter = system.copy_meter
        system.network.attach(self.cab, hub, port)
        self.node_id = system.registry.register(name)
        self.runtime = Runtime(
            self.cab, tracer=system.tracer, sanitizer=system.sanitizer
        )
        self.datalink = Datalink(self.runtime, system.network, system.registry, mtu=mtu)
        self.ip = IPProtocol(
            self.runtime, self.datalink, system.registry, input_mode=ip_input_mode
        )
        self.icmp = ICMPProtocol(self.runtime, self.ip)
        self.udp = UDPProtocol(self.runtime, self.ip, checksums=udp_checksums)
        self.udp.icmp = self.icmp
        self.tcp = TCPProtocol(
            self.runtime,
            self.ip,
            checksums=tcp_checksums,
            mss=mtu - 40,
            congestion_control=tcp_congestion_control,
        )
        self.nectar = NectarTransportLayer(self.runtime, self.datalink)
        self.datagram = DatagramProtocol(self.nectar)
        self.rmp = RMPProtocol(self.nectar)
        self.rpc = RequestResponseProtocol(self.nectar)
        self.nmp = NMPProtocol(self.nectar)
        self.coll = CollectiveEngine(self.nectar)

    @property
    def ip_address(self) -> int:
        return self.ip.address

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<NectarNode {self.name} id={self.node_id}>"


class NectarSystem:
    """A whole simulated Nectar installation."""

    def __init__(self, costs: Optional[CostModel] = None, sanitizer=None):
        self.sim = Simulator()
        self.costs = costs if costs is not None else DEFAULT_COSTS.copy()
        #: Optional repro.analysis.sanitizers.Sanitizer wired into every
        #: node's runtime (heap accounting, lock-order graph, race checks).
        self.sanitizer = sanitizer
        if sanitizer is not None:
            sanitizer.bind_clock(lambda: self.sim.now)
        self.tracer = Tracer(lambda: self.sim.now)
        #: Host-level copy meter (repro.buf): counts the Python-side byte
        #: copies this simulation performs, distinct from simulated memcpy
        #: cost.  Surfaced as the ``host.*`` counter plane by telemetry.
        self.copy_meter = CopyMeter()
        self.network = NectarNetwork(self.sim, self.costs)
        self.network.tracer = self.tracer
        self.registry = NodeRegistry(self.network)
        self.nodes: Dict[str, NectarNode] = {}
        self.hubs: Dict[str, Hub] = {}
        #: Optional repro.faults.injector.Injector, set by attach_fault_plan.
        self.faults = None
        #: Optional repro.telemetry.session.Telemetry, set by enable_telemetry.
        self.telemetry = None

    def add_hub(self, name: str, ports: int = 16) -> Hub:
        """Create a HUB crossbar on the fabric."""
        hub = self.network.new_hub(name, ports=ports)
        self.hubs[name] = hub
        return hub

    def connect_hubs(self, hub_a: Hub, port_a: int, hub_b: Hub, port_b: int) -> None:
        """Wire two HUBs together (multi-hop routes)."""
        self.network.link_hubs(hub_a, port_a, hub_b, port_b)

    def add_node(
        self,
        name: str,
        hub: Hub,
        port: int,
        tcp_checksums: bool = True,
        udp_checksums: bool = True,
        mtu: int = 9000,
        ip_input_mode: str = "interrupt",
        tcp_congestion_control: bool = False,
    ) -> NectarNode:
        """Create a CAB with a full protocol stack on a HUB port."""
        if name in self.nodes:
            raise ConfigurationError(f"node {name!r} already exists")
        node = NectarNode(
            self,
            name,
            hub,
            port,
            tcp_checksums=tcp_checksums,
            udp_checksums=udp_checksums,
            mtu=mtu,
            ip_input_mode=ip_input_mode,
            tcp_congestion_control=tcp_congestion_control,
        )
        self.nodes[name] = node
        if self.faults is not None:
            node.runtime.fault_injector = self.faults
        if self.telemetry is not None:
            self.telemetry.attach_node(node)
        return node

    def add_remote_node(self, name: str, hub: Hub, port: int) -> int:
        """Register a CAB that is simulated by another shard (a *ghost*).

        The ghost gets its node id and IP (keeping id assignment identical
        across every shard of a partitioned fleet) and its topology
        placement (so source routes to it resolve), but no CAB hardware, no
        protocol stack, and no link process — frames bound for it leave
        this shard through the network's boundary seam.  Returns the node
        id.  Call in the same global construction order on every shard.
        """
        if name in self.nodes:
            raise ConfigurationError(f"node {name!r} already exists locally")
        node_id = self.registry.register(name)
        self.network.topology.place_cab(name, hub, port)
        return node_id

    def attach_fault_plan(self, plan):
        """Install a :class:`~repro.faults.plan.FaultPlan` on this system.

        Creates an :class:`~repro.faults.injector.Injector`, wires it into
        the fabric, every node's runtime, and the matching FIFOs, and
        returns it.  Nodes added later are wired by :meth:`add_node`.
        """
        from repro.faults.injector import Injector

        injector = Injector(plan)
        injector.install(self)
        self.faults = injector
        return injector

    def attach_observer(self, observer):
        """Attach an ops-lab observer (see :mod:`repro.ops.observer`).

        The observer becomes the shared tracer's sink and gets its
        sampling process scheduled; it only ever *reads* state, so the
        simulated behavior with an observer attached is bit-identical to
        the behavior without one.  Returns the observer.
        """
        observer.attach(self)
        return observer

    def enable_telemetry(self):
        """Attach a :class:`~repro.telemetry.session.Telemetry` session.

        Installs a trace recorder as the shared tracer's sink and a cycle
        profiler on every node's CPU, and returns the session.  Idempotent:
        a second call returns the existing session.
        """
        from repro.telemetry.session import Telemetry

        if self.telemetry is None:
            telemetry = Telemetry()
            telemetry.install(self)
            self.telemetry = telemetry
        return self.telemetry

    # -- running ------------------------------------------------------------------

    def run(self, until: Optional[int] = None) -> int:
        """Run the simulation until idle or ``until`` ns."""
        return self.sim.run(until=until)

    def run_until(self, event, limit: Optional[int] = None):
        """Run until ``event`` fires; returns its value."""
        return self.sim.run_until(event, limit=limit)

    @property
    def now(self) -> int:
        return self.sim.now

    def utilization(self) -> Dict[str, float]:
        """Per-CAB CPU busy fraction over the elapsed simulated time."""
        if self.sim.now == 0:
            return {name: 0.0 for name in self.nodes}
        return {
            name: node.cab.cpu.busy_ns / self.sim.now
            for name, node in self.nodes.items()
        }
