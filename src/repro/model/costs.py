"""The calibrated cost model.

Every timing constant in the simulation lives here, in one dataclass, so that
(a) the provenance of each number is documented, and (b) ablation benchmarks
can sweep a constant (e.g. VME bandwidth) without touching mechanism code.

Constants marked **[paper]** are stated directly in the SIGCOMM'90 paper;
constants marked **[derived]** are calibrated so that the paper's end-to-end
measurements (Table 1, Figures 6-8) are reproduced in shape; constants marked
**[era]** are plausible values for 1990-era hardware chosen where the paper is
silent.

All times are integer nanoseconds unless the field name says otherwise.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.units import us

__all__ = ["CostModel", "DEFAULT_COSTS"]


@dataclass
class CostModel:
    """All timing constants for the simulated Nectar system."""

    # ------------------------------------------------------------------ network
    #: Fiber line rate. [paper Sec. 2.1: "fiber-optic lines operate at 100
    #: Mbit/sec"]
    fiber_mbps: float = 100.0
    #: One-way light propagation per fiber segment (tens of metres of fiber).
    #: [era]
    fiber_propagation_ns: int = 250
    #: HUB connection setup + first byte through a single HUB.
    #: [paper Sec. 2.1: 700 nanoseconds]
    hub_setup_ns: int = 700
    #: Extra cut-through forwarding cost per additional HUB hop. [derived]
    hub_hop_ns: int = 500

    # ------------------------------------------------------------------ CAB CPU
    #: CAB CPU clock. [paper Sec. 2.2: 16.5 MHz SPARC]
    cab_cpu_mhz: float = 16.5
    #: Thread context switch (SPARC register-window save/restore).
    #: [paper Sec. 3.1: "20 usec is typical"]
    cab_context_switch_ns: int = us(20)
    #: Interrupt entry (trap, save state, dispatch to handler). [era]
    cab_interrupt_entry_ns: int = us(4)
    #: Interrupt exit (restore, return from trap). [era]
    cab_interrupt_exit_ns: int = us(2)
    #: Scheduler dispatch decision when picking the next runnable thread
    #: (excluding the register-window switch itself). [derived]
    cab_dispatch_ns: int = us(3)
    #: CPU-performed copy within CAB memory (35 ns static RAM, word loop).
    #: [paper Sec. 2.2 gives the SRAM speed; loop overhead derived]
    cab_memcpy_ns_per_byte: int = 50
    #: Software Internet checksum on the CAB CPU.  This single constant is
    #: what separates TCP/IP from RMP in Figure 7. [derived: ~2.5 cycles/byte
    #: at 16.5 MHz]
    cab_checksum_ns_per_byte: int = 150

    # ------------------------------------------------------------- CAB hardware
    #: DMA engine streaming rate between CAB data memory and the fiber FIFOs
    #: (faster than the fiber so the fiber is the bottleneck). [era]
    cab_dma_ns_per_byte: int = 25
    #: CPU cost to program one DMA transfer descriptor. [era]
    cab_dma_setup_ns: int = us(3)
    #: Input/output FIFO capacity in bytes. [era: board FIFOs of the period]
    cab_fifo_bytes: int = 8192
    #: Size of the datalink header prefix that triggers the start-of-data
    #: upcall once it has been DMA'd into memory (route + datalink header).
    #: [paper Sec. 4.1 mechanism; size derived from our header layout]
    cab_header_burst_bytes: int = 64

    # --------------------------------------------------------------------- VME
    #: One programmed-I/O access (32-bit word) across the VME bus, host side.
    #: [paper Sec. 6.1: "each read or write over the VME bus takes about
    #: 1 usec"]
    vme_word_ns: int = 1000
    #: Bytes moved per programmed-I/O access.
    vme_word_bytes: int = 4
    #: Block-transfer (DMA) bandwidth of the VME bus.
    #: [paper Sec. 6.3: "about 30 Mbit/sec"]
    vme_dma_mbps: float = 30.0
    #: CPU cost to set up one VME DMA transfer. [era]
    vme_dma_setup_ns: int = us(10)
    #: Minimum message size (bytes) above which the host/CAB interface uses
    #: VME block transfer instead of programmed I/O. [derived]
    vme_dma_threshold_bytes: int = 256
    #: Latency for a cross-bus interrupt (host->CAB or CAB->host) to reach
    #: the other side's interrupt controller. [era]
    vme_interrupt_ns: int = us(2)

    # ------------------------------------------------------------ CAB runtime
    #: Mutex acquire/release (uncontended). [derived]
    rt_lock_ns: int = us(1)
    #: Condition signal (no wakeup). [derived]
    rt_signal_ns: int = us(2)
    #: Condition wait bookkeeping before blocking. [derived]
    rt_wait_ns: int = us(2)
    #: Thread fork. [derived]
    rt_fork_ns: int = us(30)
    #: Heap allocate / free from the shared buffer heap. [derived]
    rt_heap_alloc_ns: int = us(5)
    rt_heap_free_ns: int = us(4)
    #: Fast path when a mailbox's cached small buffer is used. [derived,
    #: paper Sec. 3.3 "each mailbox caches a small buffer"]
    rt_cached_buffer_ns: int = us(1)
    #: Mailbox operations, CAB-thread caller. [derived so that Fig. 6's
    #: breakdown lands near the paper's proportions]
    rt_begin_put_ns: int = us(6)
    rt_end_put_ns: int = us(4)
    rt_begin_get_ns: int = us(5)
    rt_end_get_ns: int = us(4)
    rt_enqueue_ns: int = us(4)
    #: Reader-upcall dispatch from End_Put. [derived]
    rt_upcall_ns: int = us(3)
    #: Sync operations (Sec. 3.4). [derived]
    rt_sync_op_ns: int = us(2)
    #: Appending an entry to a signal queue + ringing the doorbell. [derived]
    rt_signal_queue_ns: int = us(3)

    # ----------------------------------------------------------- protocol CPU
    #: Datalink send-side framing and header build. [derived]
    dl_send_ns: int = us(8)
    #: Datalink start-of-packet interrupt handler body. [derived]
    dl_sop_handler_ns: int = us(6)
    #: Datalink end-of-packet handler body. [derived]
    dl_eop_handler_ns: int = us(4)
    #: IP_Output: fill header template, route lookup, hand to datalink.
    ip_output_ns: int = us(8)
    #: IP input sanity check incl. 20-byte header checksum (start-of-data
    #: upcall). [derived]
    ip_input_ns: int = us(7)
    #: IP reassembly bookkeeping per fragment. [derived]
    ip_reassembly_ns: int = us(10)
    #: UDP per-packet processing (excluding payload checksum). [derived]
    udp_input_ns: int = us(8)
    udp_output_ns: int = us(8)
    #: TCP per-segment processing (excluding payload checksum): header parse,
    #: sequence bookkeeping, window update, timer work. [derived]
    tcp_input_ns: int = us(20)
    tcp_output_ns: int = us(18)
    #: ICMP upcall-body processing. [derived]
    icmp_input_ns: int = us(6)
    #: Nectar-specific transports, per message. [derived]
    nectar_datagram_ns: int = us(12)
    nectar_rmp_ns: int = us(10)
    nectar_reqresp_ns: int = us(12)
    #: NMP multicast per-message processing (DATA/NACK/repair FSM steps)
    #: and collective FSM steps (arrive/release/broadcast hops). [derived]
    nectar_nmp_ns: int = us(10)
    nectar_coll_ns: int = us(6)

    # ----------------------------------------------------------------- host CPU
    #: Host CPU clock (Sun-4 class). [era]
    host_cpu_mhz: float = 25.0
    #: Host process context switch (UNIX). [era]
    host_context_switch_ns: int = us(80)
    #: System call entry/exit. [era]
    host_syscall_ns: int = us(25)
    #: Host interrupt service overhead (trap + driver prologue). [era]
    host_interrupt_ns: int = us(30)
    #: Host memory copy. [era]
    host_memcpy_ns_per_byte: int = 40
    #: Host software checksum. [era]
    host_checksum_ns_per_byte: int = 100
    #: Host-side CPU work per mailbox operation (pointer/descriptor work,
    #: excluding the VME accesses which are charged separately). [derived]
    host_mailbox_op_ns: int = us(3)
    #: Poll-loop iteration period when a host process spins on a host
    #: condition variable (one VME read + loop overhead). [paper Sec. 3.2
    #: polling; period derived from the 1 usec VME read]
    host_poll_interval_ns: int = us(4)
    #: Host kernel protocol processing per packet in network-device mode
    #: (BSD mbuf chain walk, socket layer), send side and receive side.
    #: [derived so netdev mode lands near the paper's 6.4 Mbit/s]
    host_stack_send_ns: int = us(550)
    host_stack_recv_ns: int = us(500)
    #: Driver/server handshake per packet in network-device mode. [derived]
    netdev_handshake_ns: int = us(60)

    # ---------------------------------------------------------------- Ethernet
    #: Ethernet line rate (the Fig. 8 baseline). [paper Sec. 6.3]
    ethernet_mbps: float = 10.0
    #: On-board Ethernet interface per-packet cost (bypasses the VME bus).
    #: [derived so Ethernet lands near the paper's 7.2 Mbit/s]
    ethernet_per_packet_ns: int = us(120)
    #: Ethernet maximum payload. [standard]
    ethernet_mtu: int = 1500

    # -------------------------------------------------------------- derived API

    @property
    def cab_cycle_ns(self) -> float:
        return 1_000.0 / self.cab_cpu_mhz

    @property
    def fiber_ns_per_byte(self) -> float:
        return 8_000.0 / self.fiber_mbps

    @property
    def vme_dma_ns_per_byte(self) -> float:
        return 8_000.0 / self.vme_dma_mbps

    @property
    def ethernet_ns_per_byte(self) -> float:
        return 8_000.0 / self.ethernet_mbps

    def fiber_tx_ns(self, nbytes: int) -> int:
        """Serialization time of nbytes onto the fiber."""
        return int(round(nbytes * self.fiber_ns_per_byte))

    def vme_pio_ns(self, nbytes: int) -> int:
        """Programmed-I/O time to move nbytes across the VME bus."""
        words = (nbytes + self.vme_word_bytes - 1) // self.vme_word_bytes
        return words * self.vme_word_ns

    def vme_dma_ns(self, nbytes: int) -> int:
        """Block-transfer time to move nbytes across the VME bus."""
        return int(round(nbytes * self.vme_dma_ns_per_byte))

    def cab_checksum_ns(self, nbytes: int) -> int:
        """Software checksum time for nbytes on the CAB CPU."""
        return nbytes * self.cab_checksum_ns_per_byte

    def host_checksum_ns(self, nbytes: int) -> int:
        """Software checksum time for nbytes on the host CPU."""
        return nbytes * self.host_checksum_ns_per_byte

    def cab_memcpy_ns(self, nbytes: int) -> int:
        """CPU copy time for nbytes within CAB memory."""
        return nbytes * self.cab_memcpy_ns_per_byte

    def host_memcpy_ns(self, nbytes: int) -> int:
        """CPU copy time for nbytes within host memory."""
        return nbytes * self.host_memcpy_ns_per_byte

    def cab_dma_ns(self, nbytes: int) -> int:
        """CAB DMA streaming time for nbytes (memory <-> FIFO)."""
        return nbytes * self.cab_dma_ns_per_byte

    def copy(self, **overrides) -> "CostModel":
        """A modified copy, for ablation sweeps."""
        return dataclasses.replace(self, **overrides)


#: The default, paper-calibrated cost model.
DEFAULT_COSTS = CostModel()
