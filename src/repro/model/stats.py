"""Measurement statistics: counters, latency recorders, throughput meters.

Everything measured in the benchmarks flows through these classes so that
experiment drivers can render consistent tables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.units import ns_to_us, throughput_mbps

__all__ = ["Counter", "LatencyRecorder", "StatsRegistry", "ThroughputMeter"]


@dataclass
class Counter:
    """A monotonically increasing event counter."""

    name: str
    value: int = 0

    def add(self, amount: int = 1) -> None:
        """Increment by ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: cannot add negative {amount}")
        self.value += amount

    def reset(self) -> None:
        """Zero the counter."""
        self.value = 0


class LatencyRecorder:
    """Collects latency samples (ns) and reports summary statistics."""

    def __init__(self, name: str = "latency"):
        self.name = name
        self.samples_ns: list[int] = []

    def record(self, latency_ns: int) -> None:
        """Add one latency sample (ns)."""
        if latency_ns < 0:
            raise ValueError(f"negative latency sample {latency_ns}")
        self.samples_ns.append(latency_ns)

    def __len__(self) -> int:
        return len(self.samples_ns)

    @property
    def count(self) -> int:
        return len(self.samples_ns)

    @property
    def mean_ns(self) -> float:
        if not self.samples_ns:
            raise ValueError("no samples recorded")
        return sum(self.samples_ns) / len(self.samples_ns)

    @property
    def mean_us(self) -> float:
        return ns_to_us(self.mean_ns)

    @property
    def min_ns(self) -> int:
        if not self.samples_ns:
            raise ValueError("no samples recorded")
        return min(self.samples_ns)

    @property
    def max_ns(self) -> int:
        if not self.samples_ns:
            raise ValueError("no samples recorded")
        return max(self.samples_ns)

    def percentile_ns(self, pct: float) -> int:
        """Nearest-rank percentile, pct in [0, 100]."""
        if not self.samples_ns:
            raise ValueError("no samples recorded")
        if not 0 <= pct <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {pct}")
        ordered = sorted(self.samples_ns)
        rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
        return ordered[rank - 1]

    def stdev_ns(self) -> float:
        """Sample standard deviation (0 with fewer than two samples)."""
        if len(self.samples_ns) < 2:
            return 0.0
        mean = self.mean_ns
        var = sum((s - mean) ** 2 for s in self.samples_ns) / (len(self.samples_ns) - 1)
        return math.sqrt(var)


class ThroughputMeter:
    """Accumulates (bytes, interval) and reports Mbit/s."""

    def __init__(self, name: str = "throughput"):
        self.name = name
        self.bytes_moved = 0
        self._start_ns: Optional[int] = None
        self._end_ns: Optional[int] = None

    def start(self, now_ns: int) -> None:
        """Begin a measurement interval at ``now_ns``."""
        self._start_ns = now_ns
        self._end_ns = None
        self.bytes_moved = 0

    def account(self, nbytes: int, now_ns: int) -> None:
        """Record ``nbytes`` moved at time ``now_ns``."""
        if self._start_ns is None:
            self._start_ns = now_ns
        if nbytes < 0:
            raise ValueError(f"negative byte count {nbytes}")
        self.bytes_moved += nbytes
        self._end_ns = now_ns

    @property
    def elapsed_ns(self) -> int:
        if self._start_ns is None or self._end_ns is None:
            raise ValueError("meter has not accumulated an interval")
        return self._end_ns - self._start_ns

    @property
    def mbps(self) -> float:
        if self.elapsed_ns == 0:
            # All bytes landed at one instant (e.g. a single account() call):
            # there is no interval to divide by, so report zero throughput.
            return 0.0
        return throughput_mbps(self.bytes_moved, self.elapsed_ns)


@dataclass
class StatsRegistry:
    """A named bag of counters shared by a component tree."""

    counters: Dict[str, Counter] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        """The named counter, created on first use."""
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def add(self, name: str, amount: int = 1) -> None:
        """Increment the named counter."""
        self.counter(name).add(amount)

    def value(self, name: str) -> int:
        """Current value of the named counter (0 if never touched)."""
        return self.counters[name].value if name in self.counters else 0

    def snapshot(self) -> Dict[str, int]:
        """All counters as a sorted name -> value dict."""
        return {name: counter.value for name, counter in sorted(self.counters.items())}

    def reset(self, names: Optional[Iterable[str]] = None) -> None:
        """Reset the named counters (or all of them)."""
        targets = list(names) if names is not None else list(self.counters)
        for name in targets:
            if name in self.counters:
                self.counters[name].reset()
