"""Timing/cost model and measurement statistics."""

from repro.model.costs import CostModel, DEFAULT_COSTS
from repro.model.stats import Counter, LatencyRecorder, StatsRegistry, ThroughputMeter

__all__ = [
    "CostModel",
    "Counter",
    "DEFAULT_COSTS",
    "LatencyRecorder",
    "StatsRegistry",
    "ThroughputMeter",
]
