"""Parallel-processing paradigms on the CABs (paper Sec. 5.3).

"Common paradigms for parallel processing, such as divide-and-conquer and
task-queue models, have been implemented on Nectar, using one or more CABs
to divide the labor and gather the results" — the usage pattern behind
Noodles (solid modeling), COSMOS (circuit simulation), and Paradigm
(distributed vision).

These helpers run on the CAB side through Nectarine:

* :class:`TaskQueue` — a coordinator thread feeds work items to a set of
  worker *services* (RPC endpoints on other CABs), keeping a bounded number
  of requests outstanding per worker and collecting results in input order.
* :func:`divide_and_conquer` — split one input among the workers, issue the
  parts concurrently, and combine the replies.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional, Sequence

from repro.errors import NectarError
from repro.nectarine.api import CabNectarine

__all__ = ["TaskQueue", "divide_and_conquer"]


class TaskQueue:
    """Distribute work items over worker services, gather ordered results."""

    def __init__(self, app: CabNectarine, worker_services: Sequence[str]):
        if not worker_services:
            raise NectarError("task queue needs at least one worker service")
        self.app = app
        self.worker_services = list(worker_services)
        self.completed = 0

    def run(self, items: Sequence[bytes]) -> Generator:
        """Process every item; returns results in input order.

        One feeder thread per worker pulls from a shared queue — the classic
        task-queue model, so faster workers naturally take more items.
        """
        runtime = self.app.node.runtime
        pending = list(enumerate(items))
        results: List[Optional[bytes]] = [None] * len(items)
        done_cond = runtime.condition("taskq-done")
        done_mutex = runtime.mutex("taskq-done")
        state = {"remaining": len(items)}

        def feeder(service: str) -> Generator:
            while pending:
                index, item = pending.pop(0)
                reply = yield from self.app.call(service, item)
                results[index] = reply
                self.completed += 1
                state["remaining"] -= 1
                if state["remaining"] == 0:
                    yield from runtime.ops.signal(done_cond)

        for service in self.worker_services:
            runtime.fork_application(feeder(service), f"taskq-{service}")

        yield from runtime.ops.lock(done_mutex)
        while state["remaining"] > 0:
            yield from runtime.ops.wait(done_cond, done_mutex)
        yield from runtime.ops.unlock(done_mutex)
        return results  # type: ignore[return-value]


def divide_and_conquer(
    app: CabNectarine,
    worker_services: Sequence[str],
    parts: Sequence[bytes],
    combine: Callable[[List[bytes]], bytes],
) -> Generator:
    """Issue one part per worker concurrently and combine the replies.

    ``parts`` must have the same length as ``worker_services``; the caller
    chooses the split (that *is* the divide step).
    """
    if len(parts) != len(worker_services):
        raise NectarError(
            f"{len(parts)} parts for {len(worker_services)} workers"
        )
    runtime = app.node.runtime
    replies: List[Optional[bytes]] = [None] * len(parts)
    tcbs = []

    def call_one(index: int, service: str, part: bytes) -> Generator:
        reply = yield from app.call(service, part)
        replies[index] = reply

    for index, (service, part) in enumerate(zip(worker_services, parts)):
        tcbs.append(
            runtime.fork_application(
                call_one(index, service, part), f"dnc-{service}"
            )
        )
    for tcb in tcbs:
        yield from runtime.ops.join(tcb)
    return combine(replies)  # type: ignore[arg-type]
