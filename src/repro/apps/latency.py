"""Round-trip latency workloads (Table 1) and the Fig. 6 breakdown.

Each harness builds a ping-pong workload on a two-node rig and returns a
:class:`~repro.model.stats.LatencyRecorder` of per-round RTT samples.
Host-level measurements follow the paper's setup: the receiving host polls
(no interrupt or context switch on the receive side, Sec. 6.1), while the
sending side must interrupt the CAB and schedule a CAB thread.
"""

from __future__ import annotations

import struct
from typing import Dict, Generator

from repro.apps.services import (
    install_rmp_echo,
    install_rmp_host_send,
    install_udp_host_send,
    _UDP_SEND_FMT,
)
from repro.host.machine import HostedNode
from repro.model.stats import LatencyRecorder
from repro.protocols.headers import (
    NECTAR_KIND_DATA,
    NECTAR_PROTO_DATAGRAM,
    NectarTransportHeader,
)
from repro.sim.trace import TraceRecorder
from repro.system import NectarSystem, NectarNode
from repro.units import seconds

__all__ = [
    "cab_datagram_rtt",
    "cab_reqresp_rtt",
    "cab_rmp_rtt",
    "cab_udp_rtt",
    "fig6_one_way_breakdown",
    "host_datagram_rtt",
    "host_reqresp_rtt",
    "host_rmp_rtt",
    "host_udp_rtt",
]

_DEFAULT_SIZE = 32
_LIMIT = seconds(120)


def _measure(system: NectarSystem, client_gen, rounds: int, warmup: int) -> LatencyRecorder:
    """Run the client generator; it must fire ``done`` with the recorder."""
    done = system.sim.event()
    recorder = LatencyRecorder()
    client_gen(done, recorder)
    system.run_until(done, limit=_LIMIT)
    assert recorder.count == rounds - warmup
    return recorder


# ====================================================================== CAB-CAB


def cab_datagram_rtt(
    system: NectarSystem,
    node_a: NectarNode,
    node_b: NectarNode,
    message_size: int = _DEFAULT_SIZE,
    rounds: int = 30,
    warmup: int = 5,
) -> LatencyRecorder:
    """Datagram ping-pong between threads on two CABs."""
    a_inbox = node_a.runtime.mailbox("lat-a-inbox")
    b_inbox = node_b.runtime.mailbox("lat-b-inbox")
    node_a.datagram.bind(11, a_inbox)
    node_b.datagram.bind(12, b_inbox)
    payload = b"\xA5" * message_size

    def client_gen(done, recorder):
        def client() -> Generator:
            for index in range(rounds):
                start = system.now
                yield from node_a.datagram.send(11, node_b.node_id, 12, payload)
                msg = yield from a_inbox.begin_get()
                yield from a_inbox.end_get(msg)
                if index >= warmup:
                    recorder.record(system.now - start)
            done.succeed()

        def echo() -> Generator:
            while True:
                msg = yield from b_inbox.begin_get()
                data = msg.read()
                yield from b_inbox.end_get(msg)
                yield from node_b.datagram.send(12, node_a.node_id, 11, data)

        node_a.runtime.fork_application(client(), "lat-client")
        node_b.runtime.fork_system(echo(), "lat-echo")

    return _measure(system, client_gen, rounds, warmup)


def cab_rmp_rtt(
    system: NectarSystem,
    node_a: NectarNode,
    node_b: NectarNode,
    message_size: int = _DEFAULT_SIZE,
    rounds: int = 30,
    warmup: int = 5,
) -> LatencyRecorder:
    """Reliable-message ping-pong between threads on two CABs."""
    a_inbox = node_a.runtime.mailbox("lat-a-inbox")
    b_inbox = node_b.runtime.mailbox("lat-b-inbox")
    chan_ab = node_a.rmp.open(21, node_b.node_id, 22, deliver_mailbox=a_inbox)
    chan_ba = node_b.rmp.open(22, node_a.node_id, 21, deliver_mailbox=b_inbox)
    payload = b"\x5A" * message_size

    def client_gen(done, recorder):
        def client() -> Generator:
            for index in range(rounds):
                start = system.now
                yield from node_a.rmp.send(chan_ab, payload)
                msg = yield from a_inbox.begin_get()
                yield from a_inbox.end_get(msg)
                if index >= warmup:
                    recorder.record(system.now - start)
            done.succeed()

        node_a.runtime.fork_application(client(), "lat-client")
        install_rmp_echo(node_b, chan_ba, b_inbox)

    return _measure(system, client_gen, rounds, warmup)


def cab_reqresp_rtt(
    system: NectarSystem,
    node_a: NectarNode,
    node_b: NectarNode,
    message_size: int = _DEFAULT_SIZE,
    rounds: int = 30,
    warmup: int = 5,
) -> LatencyRecorder:
    """Request-response (RPC transport) round trips between two CABs."""
    server_mailbox = node_b.runtime.mailbox("lat-rpc-server")
    node_b.rpc.serve(31, server_mailbox)
    payload = b"\x3C" * message_size

    def client_gen(done, recorder):
        def server() -> Generator:
            while True:
                msg = yield from server_mailbox.begin_get()
                header = NectarTransportHeader.unpack(
                    msg.read(0, NectarTransportHeader.SIZE)
                )
                body = msg.read(NectarTransportHeader.SIZE)
                yield from server_mailbox.end_get(msg)
                yield from node_b.rpc.respond(header, body)

        def client() -> Generator:
            port = node_a.rpc.allocate_client_port()
            for index in range(rounds):
                start = system.now
                yield from node_a.rpc.request(port, node_b.node_id, 31, payload)
                if index >= warmup:
                    recorder.record(system.now - start)
            done.succeed()

        node_b.runtime.fork_system(server(), "lat-rpc-server")
        node_a.runtime.fork_application(client(), "lat-client")

    return _measure(system, client_gen, rounds, warmup)


def cab_udp_rtt(
    system: NectarSystem,
    node_a: NectarNode,
    node_b: NectarNode,
    message_size: int = _DEFAULT_SIZE,
    rounds: int = 30,
    warmup: int = 5,
) -> LatencyRecorder:
    """UDP ping-pong between threads on two CABs."""
    a_inbox = node_a.runtime.mailbox("lat-a-inbox")
    b_inbox = node_b.runtime.mailbox("lat-b-inbox")
    node_a.udp.bind(41, a_inbox)
    node_b.udp.bind(42, b_inbox)
    payload = b"\x69" * message_size

    def client_gen(done, recorder):
        def client() -> Generator:
            for index in range(rounds):
                start = system.now
                yield from node_a.udp.send(41, node_b.ip_address, 42, payload)
                msg = yield from a_inbox.begin_get()
                yield from a_inbox.end_get(msg)
                if index >= warmup:
                    recorder.record(system.now - start)
            done.succeed()

        def echo() -> Generator:
            while True:
                msg = yield from b_inbox.begin_get()
                data = msg.read()
                yield from b_inbox.end_get(msg)
                yield from node_b.udp.send(42, node_a.ip_address, 41, data)

        node_a.runtime.fork_application(client(), "lat-client")
        node_b.runtime.fork_system(echo(), "lat-echo")

    return _measure(system, client_gen, rounds, warmup)


# ==================================================================== host-host


def _datagram_packet(src_port: int, dst_node: int, dst_port: int, payload: bytes) -> bytes:
    header = NectarTransportHeader(
        protocol=NECTAR_PROTO_DATAGRAM,
        kind=NECTAR_KIND_DATA,
        src_port=src_port,
        dst_node=dst_node,
        dst_port=dst_port,
    )
    return header.pack() + payload


def host_datagram_rtt(
    system: NectarSystem,
    hosted_a: HostedNode,
    hosted_b: HostedNode,
    message_size: int = _DEFAULT_SIZE,
    rounds: int = 30,
    warmup: int = 5,
) -> LatencyRecorder:
    """Datagram ping-pong between two UNIX processes (paper Table 1: 325 us).

    Receive sides poll, matching the paper's measurement setup.
    """
    node_a, node_b = hosted_a.node, hosted_b.node
    a_inbox = node_a.runtime.mailbox("lat-a-inbox")
    b_inbox = node_b.runtime.mailbox("lat-b-inbox")
    node_a.datagram.bind(11, a_inbox)
    node_b.datagram.bind(12, b_inbox)
    payload = b"\xA5" * message_size

    def client_gen(done, recorder):
        def client() -> Generator:
            yield from hosted_a.driver.map_cab_memory()
            packet = _datagram_packet(11, node_b.node_id, 12, payload)
            for index in range(rounds):
                start = system.now
                msg = yield from hosted_a.driver.begin_put(
                    node_a.datagram.send_mailbox, len(packet)
                )
                yield from hosted_a.driver.fill(msg, packet)
                yield from hosted_a.driver.end_put(node_a.datagram.send_mailbox, msg)
                reply = yield from hosted_a.driver.begin_get(a_inbox, blocking=False)
                yield from hosted_a.driver.read(reply)
                yield from hosted_a.driver.end_get(a_inbox, reply)
                if index >= warmup:
                    recorder.record(system.now - start)
            done.succeed()

        def echo() -> Generator:
            yield from hosted_b.driver.map_cab_memory()
            packet = _datagram_packet(12, node_a.node_id, 11, payload)
            while True:
                msg = yield from hosted_b.driver.begin_get(b_inbox, blocking=False)
                yield from hosted_b.driver.read(msg)
                yield from hosted_b.driver.end_get(b_inbox, msg)
                out = yield from hosted_b.driver.begin_put(
                    node_b.datagram.send_mailbox, len(packet)
                )
                yield from hosted_b.driver.fill(out, packet)
                yield from hosted_b.driver.end_put(node_b.datagram.send_mailbox, out)

        hosted_a.host.fork_process(client(), "lat-client")
        hosted_b.host.fork_process(echo(), "lat-echo")

    return _measure(system, client_gen, rounds, warmup)


def host_rmp_rtt(
    system: NectarSystem,
    hosted_a: HostedNode,
    hosted_b: HostedNode,
    message_size: int = _DEFAULT_SIZE,
    rounds: int = 30,
    warmup: int = 5,
) -> LatencyRecorder:
    """Reliable-message ping-pong between two host processes."""
    node_a, node_b = hosted_a.node, hosted_b.node
    a_inbox = node_a.runtime.mailbox("lat-a-inbox")
    b_inbox = node_b.runtime.mailbox("lat-b-inbox")
    chan_ab = node_a.rmp.open(21, node_b.node_id, 22, deliver_mailbox=a_inbox)
    chan_ba = node_b.rmp.open(22, node_a.node_id, 21, deliver_mailbox=b_inbox)
    send_a = install_rmp_host_send(node_a, chan_ab)
    send_b = install_rmp_host_send(node_b, chan_ba, name="rmp-host-send-b")
    payload = b"\x5A" * message_size

    def client_gen(done, recorder):
        def client() -> Generator:
            yield from hosted_a.driver.map_cab_memory()
            for index in range(rounds):
                start = system.now
                msg = yield from hosted_a.driver.begin_put(send_a, len(payload))
                yield from hosted_a.driver.fill(msg, payload)
                yield from hosted_a.driver.end_put(send_a, msg)
                reply = yield from hosted_a.driver.begin_get(a_inbox, blocking=False)
                yield from hosted_a.driver.read(reply)
                yield from hosted_a.driver.end_get(a_inbox, reply)
                if index >= warmup:
                    recorder.record(system.now - start)
            done.succeed()

        def echo() -> Generator:
            yield from hosted_b.driver.map_cab_memory()
            while True:
                msg = yield from hosted_b.driver.begin_get(b_inbox, blocking=False)
                data = yield from hosted_b.driver.read(msg)
                yield from hosted_b.driver.end_get(b_inbox, msg)
                out = yield from hosted_b.driver.begin_put(send_b, len(data))
                yield from hosted_b.driver.fill(out, data)
                yield from hosted_b.driver.end_put(send_b, out)

        hosted_a.host.fork_process(client(), "lat-client")
        hosted_b.host.fork_process(echo(), "lat-echo")

    return _measure(system, client_gen, rounds, warmup)


def host_reqresp_rtt(
    system: NectarSystem,
    hosted_a: HostedNode,
    hosted_b: HostedNode,
    message_size: int = _DEFAULT_SIZE,
    rounds: int = 30,
    warmup: int = 5,
) -> LatencyRecorder:
    """RPC round trip between application tasks on two hosts (Sec. 6 claim:
    below 500 us)."""
    node_a, node_b = hosted_a.node, hosted_b.node
    server_mailbox = node_b.runtime.mailbox("lat-rpc-server")
    node_b.rpc.serve(31, server_mailbox)
    payload = b"\x3C" * message_size

    def client_gen(done, recorder):
        def server() -> Generator:
            # The server application task runs on host B; the transport
            # stays on the CAB (protocol-engine usage).
            yield from hosted_b.driver.map_cab_memory()
            while True:
                msg = yield from hosted_b.driver.begin_get(server_mailbox, blocking=False)
                header = NectarTransportHeader.unpack(
                    msg.read(0, NectarTransportHeader.SIZE)
                )
                body = yield from hosted_b.driver.read(msg, NectarTransportHeader.SIZE)
                yield from hosted_b.driver.end_get(server_mailbox, msg)

                def respond_on_cab(header=header, body=body) -> Generator:
                    yield from node_b.rpc.respond(header, body)

                yield from hosted_b.driver.call_cab(respond_on_cab)

        def client() -> Generator:
            yield from hosted_a.driver.map_cab_memory()
            port = node_a.rpc.allocate_client_port()
            for index in range(rounds):
                start = system.now

                def on_cab() -> Generator:
                    reply = yield from node_a.rpc.request(
                        port, node_b.node_id, 31, payload
                    )
                    return reply

                yield from hosted_a.driver.call_cab(on_cab)
                if index >= warmup:
                    recorder.record(system.now - start)
            done.succeed()

        hosted_b.host.fork_process(server(), "lat-rpc-server")
        hosted_a.host.fork_process(client(), "lat-client")

    return _measure(system, client_gen, rounds, warmup)


def host_udp_rtt(
    system: NectarSystem,
    hosted_a: HostedNode,
    hosted_b: HostedNode,
    message_size: int = _DEFAULT_SIZE,
    rounds: int = 30,
    warmup: int = 5,
) -> LatencyRecorder:
    """UDP ping-pong between two host processes (Table 1's UDP row)."""
    node_a, node_b = hosted_a.node, hosted_b.node
    a_inbox = node_a.runtime.mailbox("lat-a-inbox")
    b_inbox = node_b.runtime.mailbox("lat-b-inbox")
    node_a.udp.bind(41, a_inbox)
    node_b.udp.bind(42, b_inbox)
    send_a = install_udp_host_send(node_a)
    send_b = install_udp_host_send(node_b)
    payload = b"\x69" * message_size

    def client_gen(done, recorder):
        def client() -> Generator:
            yield from hosted_a.driver.map_cab_memory()
            request = (
                struct.pack(_UDP_SEND_FMT, 41, node_b.ip_address, 42) + payload
            )
            for index in range(rounds):
                start = system.now
                msg = yield from hosted_a.driver.begin_put(send_a, len(request))
                yield from hosted_a.driver.fill(msg, request)
                yield from hosted_a.driver.end_put(send_a, msg)
                reply = yield from hosted_a.driver.begin_get(a_inbox, blocking=False)
                yield from hosted_a.driver.read(reply)
                yield from hosted_a.driver.end_get(a_inbox, reply)
                if index >= warmup:
                    recorder.record(system.now - start)
            done.succeed()

        def echo() -> Generator:
            yield from hosted_b.driver.map_cab_memory()
            prefix = struct.pack(_UDP_SEND_FMT, 42, node_a.ip_address, 41)
            while True:
                msg = yield from hosted_b.driver.begin_get(b_inbox, blocking=False)
                data = yield from hosted_b.driver.read(msg)
                yield from hosted_b.driver.end_get(b_inbox, msg)
                out = yield from hosted_b.driver.begin_put(
                    send_b, len(prefix) + len(data)
                )
                yield from hosted_b.driver.fill(out, prefix + data)
                yield from hosted_b.driver.end_put(send_b, out)

        hosted_a.host.fork_process(client(), "lat-client")
        hosted_b.host.fork_process(echo(), "lat-echo")

    return _measure(system, client_gen, rounds, warmup)


# ================================================================ Fig. 6 breakdown


def fig6_one_way_breakdown(
    system: NectarSystem,
    hosted_a: HostedNode,
    hosted_b: HostedNode,
    message_size: int = _DEFAULT_SIZE,
) -> Dict[str, float]:
    """One-way host-to-host datagram latency, decomposed as in Figure 6.

    Returns microsecond intervals: message creation on the sending host, the
    sending host-CAB interface (interrupt + thread wakeup), CAB-to-CAB
    (protocol processing + wire), delivery to the polling receiving host,
    and the receiving host's read — plus the one-way total.
    """
    node_a, node_b = hosted_a.node, hosted_b.node
    b_inbox = node_b.runtime.mailbox("fig6-inbox")
    node_b.datagram.bind(66, b_inbox)
    payload = b"\x77" * message_size
    recorder = TraceRecorder()
    system.tracer.sink = recorder
    tracer = system.tracer
    done = system.sim.event()

    def sender() -> Generator:
        yield from hosted_a.driver.map_cab_memory()
        packet = _datagram_packet(65, node_b.node_id, 66, payload)
        tracer.emit("host-a", "host_send_start")
        msg = yield from hosted_a.driver.begin_put(
            node_a.datagram.send_mailbox, len(packet)
        )
        yield from hosted_a.driver.fill(msg, packet)
        tracer.emit("host-a", "host_message_built")
        yield from hosted_a.driver.end_put(node_a.datagram.send_mailbox, msg)
        tracer.emit("host-a", "host_end_put_done")

    def receiver() -> Generator:
        yield from hosted_b.driver.map_cab_memory()
        msg = yield from hosted_b.driver.begin_get(b_inbox, blocking=False)
        tracer.emit("host-b", "host_got_message")
        yield from hosted_b.driver.read(msg)
        yield from hosted_b.driver.end_get(b_inbox, msg)
        tracer.emit("host-b", "host_read_done")
        done.succeed()

    hosted_b.host.fork_process(receiver(), "fig6-receiver")
    hosted_a.host.fork_process(sender(), "fig6-sender")
    system.run_until(done, limit=_LIMIT)
    system.tracer.sink = None

    def us_between(a: str, b: str) -> float:
        return recorder.interval_ns(a, b) / 1000.0

    breakdown = {
        "host message creation": us_between("host_send_start", "host_end_put_done"),
        "host-CAB interface (send)": us_between("host_end_put_done", "cab_send_start"),
        "CAB-to-CAB (protocols + wire)": us_between("cab_send_start", "cab_deliver"),
        "CAB-host interface (receive)": us_between("cab_deliver", "host_got_message"),
        "host message read": us_between("host_got_message", "host_read_done"),
        "total one-way": us_between("host_send_start", "host_read_done"),
    }
    return breakdown
