"""Synthetic workload generators: background traffic and loaded probes.

The paper's evaluation uses unloaded microbenchmarks; these generators add
the other classic measurement — behaviour *under load* — which the deployed
26-host system would have seen in daily use.  All randomness is seeded, so
runs stay deterministic.
"""

from __future__ import annotations

import math
import random
from typing import Generator, Optional

from repro.model.stats import LatencyRecorder
from repro.system import NectarNode, NectarSystem
from repro.units import seconds, us

__all__ = ["BurstSource", "PoissonDatagramSource", "latency_under_load"]


class PoissonDatagramSource:
    """Sends datagrams with exponential inter-arrival times."""

    def __init__(
        self,
        node: NectarNode,
        dst_node_id: int,
        dst_port: int,
        rate_pps: float,
        payload_bytes: int = 256,
        seed: int = 1,
        src_port: int = 0x7000,
    ):
        if rate_pps <= 0:
            raise ValueError(f"rate must be positive, got {rate_pps}")
        self.node = node
        self.dst_node_id = dst_node_id
        self.dst_port = dst_port
        self.rate_pps = rate_pps
        self.payload = b"\x55" * payload_bytes
        self.src_port = src_port
        self._rng = random.Random(seed)
        self.sent = 0
        self._running = True

    def stop(self) -> None:
        """Stop after the current send completes."""
        self._running = False

    def run(self) -> Generator:
        """The source body: fork this as a CAB thread."""
        mean_gap_ns = 1e9 / self.rate_pps
        while self._running:
            gap = -mean_gap_ns * math.log(1.0 - self._rng.random())
            yield from self.node.runtime.ops.sleep(max(1_000, int(gap)))
            if not self._running:
                return
            yield from self.node.datagram.send(
                self.src_port, self.dst_node_id, self.dst_port, self.payload
            )
            self.sent += 1


class BurstSource:
    """On/off traffic: bursts of back-to-back datagrams, then silence."""

    def __init__(
        self,
        node: NectarNode,
        dst_node_id: int,
        dst_port: int,
        burst_length: int = 10,
        gap_ns: int = us(500),
        payload_bytes: int = 1024,
        src_port: int = 0x7001,
    ):
        self.node = node
        self.dst_node_id = dst_node_id
        self.dst_port = dst_port
        self.burst_length = burst_length
        self.gap_ns = gap_ns
        self.payload = b"\xAA" * payload_bytes
        self.src_port = src_port
        self.sent = 0
        self._running = True

    def stop(self) -> None:
        """Stop after the current burst completes."""
        self._running = False

    def run(self) -> Generator:
        """The source body: fork this as a CAB thread."""
        while self._running:
            for _ in range(self.burst_length):
                yield from self.node.datagram.send(
                    self.src_port, self.dst_node_id, self.dst_port, self.payload
                )
                self.sent += 1
            yield from self.node.runtime.ops.sleep(self.gap_ns)


def latency_under_load(
    system: NectarSystem,
    node_a: NectarNode,
    node_b: NectarNode,
    background_pps: float,
    rounds: int = 20,
    warmup: int = 3,
    message_size: int = 32,
    seed: int = 9,
) -> LatencyRecorder:
    """Datagram RTT while Poisson cross-traffic shares the same path.

    The background source on node A also targets node B, so probe packets
    queue behind it at A's CPU, A's output FIFO, and B's input port — the
    full contention story.
    """
    sink = node_b.runtime.mailbox("load-sink")
    node_b.datagram.bind(0x7100, sink)
    source: Optional[PoissonDatagramSource] = None
    if background_pps > 0:
        source = PoissonDatagramSource(
            node_a, node_b.node_id, 0x7100, background_pps, seed=seed
        )
        node_a.runtime.fork_application(source.run(), "bg-source")
        node_b.runtime.fork_system(_sink_drain(sink), "bg-sink")

    a_inbox = node_a.runtime.mailbox("probe-a")
    b_inbox = node_b.runtime.mailbox("probe-b")
    node_a.datagram.bind(0x7200, a_inbox)
    node_b.datagram.bind(0x7201, b_inbox)
    recorder = LatencyRecorder()
    done = system.sim.event()
    payload = b"\x11" * message_size

    def probe() -> Generator:
        for index in range(rounds):
            start = system.now
            yield from node_a.datagram.send(0x7200, node_b.node_id, 0x7201, payload)
            msg = yield from a_inbox.begin_get()
            yield from a_inbox.end_get(msg)
            if index >= warmup:
                recorder.record(system.now - start)
            # Pace probes so they sample independent congestion states.
            yield from node_a.runtime.ops.sleep(us(300))
        if source is not None:
            source.stop()
        done.succeed()

    def echo() -> Generator:
        while True:
            msg = yield from b_inbox.begin_get()
            data = msg.read()
            yield from b_inbox.end_get(msg)
            yield from node_b.datagram.send(0x7201, node_a.node_id, 0x7200, data)

    node_a.runtime.fork_application(probe(), "probe")
    node_b.runtime.fork_system(echo(), "probe-echo")
    system.run_until(done, limit=seconds(120))
    return recorder


def _sink_drain(sink) -> Generator:
    while True:
        msg = yield from sink.begin_get()
        yield from sink.end_get(msg)
