"""A remote file service over Nectar (paper Sec. 7 future work).

"Our future work will include ... porting important applications such as
NFS and the X Window System to Nectar."  This module is that NFS port in
miniature: an NFS-shaped stateless file service whose *entire* protocol
engine runs on the CAB — requests arrive, are unmarshaled, executed against
the in-memory file store, and answered without host involvement.

The wire format reuses the presentation-layer codec of
:mod:`repro.apps.marshaling` (typed, XDR-style), so this is also the
marshaling offload exercised by a real application.

Operations (all stateless, file handles carry a generation number so stale
handles after removal are detected, as in NFS):

``lookup, create, remove, getattr, read, write, readdir``
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from repro.apps.marshaling import marshal, unmarshal
from repro.errors import NectarError, ProtocolError
from repro.protocols.headers import NectarTransportHeader
from repro.system import NectarNode

__all__ = ["FileHandle", "RemoteFileClient", "RemoteFileServer"]

NFS_PORT = 0x4E46  # 'NF'

_OP_LOOKUP = 1
_OP_CREATE = 2
_OP_REMOVE = 3
_OP_GETATTR = 4
_OP_READ = 5
_OP_WRITE = 6
_OP_READDIR = 7

OK = 0
ERR_NOENT = 1
ERR_EXIST = 2
ERR_STALE = 3
ERR_BADOP = 4

_ERROR_NAMES = {
    ERR_NOENT: "no such file",
    ERR_EXIST: "file exists",
    ERR_STALE: "stale file handle",
    ERR_BADOP: "bad operation",
}


class FileHandle:
    """An opaque NFS-style handle: file id + generation."""

    __slots__ = ("fileid", "generation")

    def __init__(self, fileid: int, generation: int):
        self.fileid = fileid
        self.generation = generation

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FileHandle {self.fileid}.{self.generation}>"


class _Inode:
    __slots__ = ("fileid", "generation", "data")

    def __init__(self, fileid: int, generation: int):
        self.fileid = fileid
        self.generation = generation
        self.data = bytearray()


class RemoteFileServer:
    """The CAB-resident file service."""

    def __init__(self, node: NectarNode):
        self.node = node
        self.runtime = node.runtime
        self._by_path: Dict[bytes, _Inode] = {}
        self._by_id: Dict[int, _Inode] = {}
        self._next_fileid = 1
        self._generation = 1
        self._mailbox = node.runtime.mailbox("nfs-server")
        node.rpc.serve(NFS_PORT, self._mailbox)
        node.runtime.fork_system(self._server(), "nfs-server")
        self.stats = node.runtime.stats

    # -- the service loop ----------------------------------------------------

    def _server(self) -> Generator:
        while True:
            msg = yield from self._mailbox.begin_get()
            header = NectarTransportHeader.unpack(
                msg.read(0, NectarTransportHeader.SIZE)
            )
            body = msg.read(NectarTransportHeader.SIZE)
            yield from self._mailbox.end_get(msg)
            try:
                request = unmarshal(body)
                response = self._execute(request)
            except (ProtocolError, IndexError, TypeError):
                self.stats.add("nfs_malformed")
                response = [ERR_BADOP]
            yield from self.node.rpc.respond(header, marshal(response))
            self.stats.add("nfs_requests")

    # -- operations ---------------------------------------------------------------

    def _execute(self, request: list) -> list:
        op = request[0]
        if op == _OP_LOOKUP:
            return self._lookup(request[1])
        if op == _OP_CREATE:
            return self._create(request[1])
        if op == _OP_REMOVE:
            return self._remove(request[1])
        if op == _OP_GETATTR:
            return self._with_handle(request, lambda inode: [OK, len(inode.data)])
        if op == _OP_READ:
            return self._with_handle(
                request,
                lambda inode: [OK, bytes(inode.data[request[3] : request[3] + request[4]])],
            )
        if op == _OP_WRITE:
            return self._with_handle(request, lambda inode: self._write(inode, request))
        if op == _OP_READDIR:
            prefix = request[1]
            names = sorted(
                path for path in self._by_path if path.startswith(prefix)
            )
            return [OK, list(names)]
        return [ERR_BADOP]

    def _lookup(self, path: bytes) -> list:
        inode = self._by_path.get(path)
        if inode is None:
            return [ERR_NOENT]
        return [OK, inode.fileid, inode.generation]

    def _create(self, path: bytes) -> list:
        if path in self._by_path:
            return [ERR_EXIST]
        inode = _Inode(self._next_fileid, self._generation)
        self._next_fileid += 1
        self._by_path[path] = inode
        self._by_id[inode.fileid] = inode
        return [OK, inode.fileid, inode.generation]

    def _remove(self, path: bytes) -> list:
        inode = self._by_path.pop(path, None)
        if inode is None:
            return [ERR_NOENT]
        self._by_id.pop(inode.fileid, None)
        self._generation += 1  # old handles to this id become stale
        return [OK]

    def _with_handle(self, request: list, action) -> list:
        fileid, generation = request[1], request[2]
        inode = self._by_id.get(fileid)
        if inode is None or inode.generation != generation:
            return [ERR_STALE]
        return action(inode)

    @staticmethod
    def _write(inode: _Inode, request: list) -> list:
        offset, data = request[3], request[4]
        if offset > len(inode.data):
            inode.data.extend(b"\x00" * (offset - len(inode.data)))
        inode.data[offset : offset + len(data)] = data
        return [OK, len(data)]


class RemoteFileClient:
    """A CAB-task client of a remote file server."""

    def __init__(self, node: NectarNode, server_node_id: int):
        self.node = node
        self.server_node_id = server_node_id
        self._port = node.rpc.allocate_client_port()

    def _call(self, request: list) -> Generator:
        reply = yield from self.node.rpc.request(
            self._port, self.server_node_id, NFS_PORT, marshal(request)
        )
        response = unmarshal(reply)
        status = response[0]
        if status != OK:
            raise NectarError(
                f"remote fs error: {_ERROR_NAMES.get(status, status)}"
            )
        return response[1:]

    # -- API (thread-context generators) -----------------------------------------

    def lookup(self, path: bytes) -> Generator:
        """Resolve a path to a file handle."""
        fileid, generation = yield from self._call([_OP_LOOKUP, path])
        return FileHandle(fileid, generation)

    def create(self, path: bytes) -> Generator:
        """Create an empty file; returns its handle."""
        fileid, generation = yield from self._call([_OP_CREATE, path])
        return FileHandle(fileid, generation)

    def remove(self, path: bytes) -> Generator:
        """Delete a file (outstanding handles go stale)."""
        yield from self._call([_OP_REMOVE, path])

    def getattr(self, handle: FileHandle) -> Generator:
        """The file's current size in bytes."""
        (size,) = yield from self._call(
            [_OP_GETATTR, handle.fileid, handle.generation]
        )
        return size

    def read(self, handle: FileHandle, offset: int, count: int) -> Generator:
        """Read up to ``count`` bytes at ``offset``."""
        (data,) = yield from self._call(
            [_OP_READ, handle.fileid, handle.generation, offset, count]
        )
        return data

    def write(self, handle: FileHandle, offset: int, data: bytes) -> Generator:
        """Write ``data`` at ``offset`` (sparse gaps zero-fill)."""
        (written,) = yield from self._call(
            [_OP_WRITE, handle.fileid, handle.generation, offset, data]
        )
        return written

    def readdir(self, prefix: bytes = b"") -> Generator:
        """All paths starting with ``prefix``, sorted."""
        (names,) = yield from self._call([_OP_READDIR, prefix])
        return names
