"""Measurement applications and CAB-resident application extensions.

The latency/throughput harnesses regenerate Table 1 and Figures 6-8; the
rest of the package implements the Sec. 5.3 applications and future work:
parallel paradigms (:mod:`repro.apps.paradigms`), distributed transactions
(:mod:`repro.apps.transactions`), network shared memory
(:mod:`repro.apps.sharedmem`), presentation-layer offload
(:mod:`repro.apps.marshaling`), and synthetic load generators
(:mod:`repro.apps.workloads`).
"""

from repro.apps.services import (
    install_rmp_echo,
    install_rmp_host_send,
    install_udp_echo,
    install_udp_host_send,
)
from repro.apps.latency import (
    cab_datagram_rtt,
    cab_reqresp_rtt,
    cab_rmp_rtt,
    cab_udp_rtt,
    fig6_one_way_breakdown,
    host_datagram_rtt,
    host_reqresp_rtt,
    host_rmp_rtt,
    host_udp_rtt,
)
from repro.apps.throughput import (
    cab_rmp_throughput,
    cab_tcp_throughput,
    ethernet_throughput,
    host_rmp_throughput,
    host_tcp_throughput,
    netdev_throughput,
)

__all__ = [
    "cab_datagram_rtt",
    "cab_reqresp_rtt",
    "cab_rmp_rtt",
    "cab_rmp_throughput",
    "cab_tcp_throughput",
    "cab_udp_rtt",
    "ethernet_throughput",
    "fig6_one_way_breakdown",
    "host_datagram_rtt",
    "host_reqresp_rtt",
    "host_rmp_rtt",
    "host_rmp_throughput",
    "host_tcp_throughput",
    "host_udp_rtt",
    "install_rmp_echo",
    "install_rmp_host_send",
    "install_udp_echo",
    "install_udp_host_send",
    "netdev_throughput",
]
