"""Distributed locking and commit on the CAB (paper Sec. 5.3, future work).

"Communication is a major bottleneck in the Camelot distributed transaction
system, so experiments are being planned to offload Camelot's distributed
locking and commit protocols to the CAB."

This module implements that experiment's substrate: a distributed lock
manager and a two-phase commit protocol, both running as CAB tasks over the
request-response transport, so a host application initiates a transaction
with a single request and the entire lock/prepare/commit message exchange
happens NIC-to-NIC.

* :class:`LockManager` — one per node; grants read (shared) and write
  (exclusive) locks on named resources, with FIFO queueing.
* :class:`TransactionCoordinator` — runs two-phase commit over a set of
  :class:`Participant` nodes: PREPARE to all, then COMMIT if every vote is
  yes, ABORT otherwise.  Participants hold their updates in a pending area
  and apply them only on COMMIT (atomicity is real and tested).
"""

from __future__ import annotations

import itertools
import struct
from collections import deque
from typing import Deque, Dict, Generator, List, Optional, Sequence, Tuple

from repro.errors import NectarError, ProtocolError
from repro.protocols.headers import NectarTransportHeader
from repro.system import NectarNode

__all__ = ["LockManager", "Participant", "TransactionCoordinator"]

LOCK_PORT = 0x6B00
TXN_PORT = 0x6B01

# Lock manager opcodes.
_OP_ACQUIRE_READ = b"LR"
_OP_ACQUIRE_WRITE = b"LW"
_OP_RELEASE = b"LU"

# Two-phase-commit opcodes.
_OP_PREPARE = b"TP"
_OP_COMMIT = b"TC"
_OP_ABORT = b"TA"

_GRANTED = b"granted"
_RELEASED = b"released"
_VOTE_YES = b"yes"
_VOTE_NO = b"no"
_ACK = b"ack"


def _encode(opcode: bytes, txn_id: int, name: bytes, value: bytes = b"") -> bytes:
    return opcode + struct.pack(">IH", txn_id, len(name)) + name + value


def _decode(data: bytes) -> Tuple[bytes, int, bytes, bytes]:
    if len(data) < 8:
        raise ProtocolError("short transaction request")
    opcode = data[:2]
    txn_id, name_len = struct.unpack(">IH", data[2:8])
    name = data[8 : 8 + name_len]
    value = data[8 + name_len :]
    return opcode, txn_id, name, value


class LockManager:
    """A CAB-resident lock service for the resources homed on its node."""

    def __init__(self, node: NectarNode):
        self.node = node
        self.runtime = node.runtime
        #: resource -> (mode, holders) where mode is "read"/"write"/None.
        self._held: Dict[bytes, Tuple[Optional[str], set]] = {}
        #: resource -> queue of (txn_id, mode, wake condition)
        self._waiters: Dict[bytes, Deque] = {}
        self._mailbox = node.runtime.mailbox("lock-manager")
        node.rpc.serve(LOCK_PORT, self._mailbox)
        node.runtime.fork_system(self._server(), "lock-manager")
        self.stats = node.runtime.stats

    def _server(self) -> Generator:
        while True:
            msg = yield from self._mailbox.begin_get()
            header = NectarTransportHeader.unpack(
                msg.read(0, NectarTransportHeader.SIZE)
            )
            body = msg.read(NectarTransportHeader.SIZE)
            yield from self._mailbox.end_get(msg)
            opcode, txn_id, name, _value = _decode(body)
            if opcode in (_OP_ACQUIRE_READ, _OP_ACQUIRE_WRITE):
                mode = "read" if opcode == _OP_ACQUIRE_READ else "write"
                # Grants may have to wait: run each acquisition in its own
                # thread so the server loop keeps servicing releases.
                self.runtime.fork_system(
                    self._grant_then_respond(header, txn_id, name, mode),
                    f"lock-grant-{txn_id}",
                )
            elif opcode == _OP_RELEASE:
                self._release(txn_id, name)
                yield from self.node.rpc.respond(header, _RELEASED)
            else:
                raise ProtocolError(f"bad lock opcode {opcode!r}")

    def _grant_then_respond(self, header, txn_id: int, name: bytes, mode: str) -> Generator:
        yield from self._acquire(txn_id, name, mode)
        yield from self.node.rpc.respond(header, _GRANTED)

    # -- local lock table ---------------------------------------------------------

    def _compatible(self, name: bytes, txn_id: int, mode: str) -> bool:
        current_mode, holders = self._held.get(name, (None, set()))
        if current_mode is None or not holders:
            return True
        if txn_id in holders:
            # Re-entrant; upgrading read->write needs sole ownership.
            return mode == "read" or (current_mode != "read" or holders == {txn_id})
        return mode == "read" and current_mode == "read"

    def _acquire(self, txn_id: int, name: bytes, mode: str) -> Generator:
        ops = self.runtime.ops
        while not self._compatible(name, txn_id, mode) or self._queued_ahead(name, txn_id):
            cond = self.runtime.condition(f"lock-{txn_id}")
            self._waiters.setdefault(name, deque()).append((txn_id, cond))
            mutex = self.runtime.mutex(f"lockm-{txn_id}")
            yield from ops.lock(mutex)
            yield from ops.wait(cond, mutex)
            yield from ops.unlock(mutex)
        current_mode, holders = self._held.get(name, (None, set()))
        holders = set(holders)
        holders.add(txn_id)
        new_mode = "write" if mode == "write" else (current_mode or "read")
        if mode == "write":
            new_mode = "write"
        self._held[name] = (new_mode, holders)
        self.stats.add("locks_granted")

    def _queued_ahead(self, name: bytes, txn_id: int) -> bool:
        queue = self._waiters.get(name)
        return bool(queue) and queue[0][0] != txn_id

    def _release(self, txn_id: int, name: bytes) -> None:
        current_mode, holders = self._held.get(name, (None, set()))
        holders = set(holders)
        holders.discard(txn_id)
        if holders:
            self._held[name] = (current_mode, holders)
        else:
            self._held.pop(name, None)
        self.stats.add("locks_released")
        queue = self._waiters.get(name)
        if queue:
            _txn, cond = queue.popleft()
            self.runtime.ops.signal_nocost(cond)


class Participant:
    """A two-phase-commit participant: a CAB task owning local data."""

    def __init__(self, node: NectarNode):
        self.node = node
        self.runtime = node.runtime
        self.data: Dict[bytes, bytes] = {}
        self._pending: Dict[int, List[Tuple[bytes, bytes]]] = {}
        self.prepared: set = set()
        #: Test hook: vote no for these transaction ids.
        self.refuse: set = set()
        self._mailbox = node.runtime.mailbox("txn-participant")
        node.rpc.serve(TXN_PORT, self._mailbox)
        node.runtime.fork_system(self._server(), "txn-participant")
        self.stats = node.runtime.stats

    def stage(self, txn_id: int, name: bytes, value: bytes) -> None:
        """Buffer an update for a transaction (applied only on COMMIT)."""
        self._pending.setdefault(txn_id, []).append((name, value))

    def _server(self) -> Generator:
        while True:
            msg = yield from self._mailbox.begin_get()
            header = NectarTransportHeader.unpack(
                msg.read(0, NectarTransportHeader.SIZE)
            )
            body = msg.read(NectarTransportHeader.SIZE)
            yield from self._mailbox.end_get(msg)
            opcode, txn_id, name, value = _decode(body)
            if opcode == _OP_PREPARE:
                if name:  # update piggybacked on the prepare
                    self.stage(txn_id, name, value)
                if txn_id in self.refuse:
                    self.stats.add("txn_votes_no")
                    yield from self.node.rpc.respond(header, _VOTE_NO)
                else:
                    self.prepared.add(txn_id)
                    self.stats.add("txn_votes_yes")
                    yield from self.node.rpc.respond(header, _VOTE_YES)
            elif opcode == _OP_COMMIT:
                for update_name, update_value in self._pending.pop(txn_id, []):
                    self.data[update_name] = update_value
                self.prepared.discard(txn_id)
                self.stats.add("txn_commits")
                yield from self.node.rpc.respond(header, _ACK)
            elif opcode == _OP_ABORT:
                self._pending.pop(txn_id, None)
                self.prepared.discard(txn_id)
                self.stats.add("txn_aborts")
                yield from self.node.rpc.respond(header, _ACK)
            else:
                raise ProtocolError(f"bad transaction opcode {opcode!r}")


class TransactionCoordinator:
    """Two-phase commit plus distributed locking, driven from one CAB."""

    _txn_counter = itertools.count(1)

    def __init__(self, node: NectarNode, participants: Sequence[NectarNode]):
        if not participants:
            raise NectarError("a transaction needs at least one participant")
        self.node = node
        self.participants = list(participants)
        self.stats = node.runtime.stats

    def _call(self, target: NectarNode, port: int, payload: bytes) -> Generator:
        client_port = self.node.rpc.allocate_client_port()
        reply = yield from self.node.rpc.request(
            client_port, target.node_id, port, payload
        )
        return reply

    # -- locking -----------------------------------------------------------------

    def acquire_lock(self, home: NectarNode, txn_id: int, name: bytes, mode: str) -> Generator:
        """Acquire a named lock at its home node (blocks until granted)."""
        opcode = _OP_ACQUIRE_WRITE if mode == "write" else _OP_ACQUIRE_READ
        reply = yield from self._call(home, LOCK_PORT, _encode(opcode, txn_id, name))
        if reply != _GRANTED:
            raise ProtocolError(f"lock not granted: {reply!r}")

    def release_lock(self, home: NectarNode, txn_id: int, name: bytes) -> Generator:
        """Release a named lock at its home node."""
        yield from self._call(home, LOCK_PORT, _encode(_OP_RELEASE, txn_id, name))

    # -- two-phase commit ---------------------------------------------------------

    def run_transaction(
        self, updates: Dict[str, Tuple[bytes, bytes]]
    ) -> Generator:
        """Commit ``{participant_name: (key, value)}`` atomically.

        Returns ("committed", txn_id) or ("aborted", txn_id).
        """
        txn_id = next(TransactionCoordinator._txn_counter)
        by_name = {node.name: node for node in self.participants}

        # Phase 1: PREPARE (updates piggybacked).
        votes = []
        for participant_name, (key, value) in updates.items():
            node = by_name[participant_name]
            reply = yield from self._call(
                node, TXN_PORT, _encode(_OP_PREPARE, txn_id, key, value)
            )
            votes.append(reply)
        decision = _OP_COMMIT if all(vote == _VOTE_YES for vote in votes) else _OP_ABORT

        # Phase 2: COMMIT / ABORT to everyone that was prepared.
        for participant_name in updates:
            node = by_name[participant_name]
            yield from self._call(node, TXN_PORT, _encode(decision, txn_id, b""))
        outcome = "committed" if decision == _OP_COMMIT else "aborted"
        self.stats.add(f"txn_{outcome}")
        return outcome, txn_id
