"""CAB-resident helper services used by the host-level measurements.

Host processes drive the Nectar transports through mailboxes: a *host-send
service* is a CAB system thread that transmits whatever the host queues
(this is exactly the protocol-engine usage of Sec. 5.2), and an *echo
service* bounces messages back for round-trip measurements.
"""

from __future__ import annotations

import struct
from typing import Generator

from repro.protocols.nectar.rmp import RMPChannel
from repro.runtime.mailbox import Mailbox
from repro.system import NectarNode

__all__ = [
    "install_rmp_echo",
    "install_rmp_host_send",
    "install_udp_echo",
    "install_udp_host_send",
]

_UDP_SEND_FMT = ">HIH"  # src_port, dst_ip, dst_port


def install_udp_host_send(node: NectarNode, name: str = "udp-host-send") -> Mailbox:
    """A mailbox whose messages ([src_port][dst_ip][dst_port][payload]) a CAB
    thread sends as UDP datagrams."""
    mailbox = node.runtime.mailbox(name)
    header_size = struct.calcsize(_UDP_SEND_FMT)

    def sender() -> Generator:
        while True:
            msg = yield from mailbox.begin_get()
            src_port, dst_ip, dst_port = struct.unpack(
                _UDP_SEND_FMT, msg.read(0, header_size)
            )
            payload = msg.read(header_size)
            yield from mailbox.end_get(msg)
            yield from node.udp.send(src_port, dst_ip, dst_port, payload)

    node.runtime.fork_system(sender(), name=f"{name}-thread")
    return mailbox


def install_udp_echo(node: NectarNode, port: int, reply_port: int) -> None:
    """Echo every UDP datagram arriving on ``port`` back to its sender."""
    inbox = node.runtime.mailbox(f"udp-echo-{port}")
    node.udp.bind(port, inbox)

    # The echo needs the sender's address: UDP strips headers before
    # delivery, so this service binds at the UDP layer via a wrapper
    # mailbox fed by a thread that remembers the reply address per message.
    # For measurement purposes the peer is fixed and passed in.
    def echo() -> Generator:
        while True:
            msg = yield from inbox.begin_get()
            payload = msg.read()
            yield from inbox.end_get(msg)
            yield from node.udp.send(
                port, node.system.registry.ip_of(_peer_node(node)), reply_port, payload
            )

    node.runtime.fork_system(echo(), name=f"udp-echo-{port}")


def _peer_node(node: NectarNode) -> int:
    """The other node in a two-node measurement rig."""
    for other in node.system.nodes.values():
        if other is not node:
            return other.node_id
    raise ValueError("echo service needs a two-node system")


def install_rmp_host_send(
    node: NectarNode, channel: RMPChannel, name: str = "rmp-host-send"
) -> Mailbox:
    """A mailbox whose messages a CAB thread sends reliably over ``channel``.

    The host queues raw payloads; the service prepends transport header room
    by sending the bytes through the normal RMP path.
    """
    mailbox = node.runtime.mailbox(name)

    def sender() -> Generator:
        while True:
            msg = yield from mailbox.begin_get()
            payload = msg.read()
            yield from mailbox.end_get(msg)
            yield from node.rmp.send(channel, payload)

    node.runtime.fork_system(sender(), name=f"{name}-thread")
    return mailbox


def install_rmp_echo(node: NectarNode, channel: RMPChannel, inbox: Mailbox) -> None:
    """Echo every message delivered to ``inbox`` back over ``channel``."""

    def echo() -> Generator:
        while True:
            msg = yield from inbox.begin_get()
            payload = msg.read()
            yield from inbox.end_get(msg)
            yield from node.rmp.send(channel, payload)

    node.runtime.fork_system(echo(), name=f"rmp-echo-{channel.local_port}")
