"""Network shared memory over Nectar (paper Sec. 5.3, future work).

"Using Mach together with Nectar, we are investigating network shared
memory.  The CABs will run external pager tasks that cooperate to provide
the required consistency guarantees."

This module implements those cooperating pager tasks: a distributed shared
address space with single-writer / multiple-reader page coherence
(MSI-style invalidation), built entirely on the request-response transport.

Design:

* The address space is split into fixed pages; each page has a static
  *home* node (``page % n_nodes``) holding its directory entry (owner and
  copyset) and the authoritative copy while nobody holds it exclusively.
* Each node runs two pager services: the **fetch** service (directory
  operations — may itself issue RPCs) and the **control** service
  (invalidate/downgrade callbacks — terminal, never issues RPCs), which
  breaks the request cycle that would otherwise deadlock two pagers
  fetching from each other.
* A local access goes through the page table: ``read`` needs SHARED or
  EXCLUSIVE, ``write`` needs EXCLUSIVE; misses trigger a fetch RPC to the
  home, which invalidates or downgrades other holders as needed.

Page contents are real bytes; the coherence invariant (a write is visible
to every subsequent reader anywhere) is property-tested.
"""

from __future__ import annotations

import struct
from typing import Dict, Generator, List, Set

from repro.errors import NectarError, ProtocolError
from repro.protocols.headers import NectarTransportHeader
from repro.system import NectarNode

__all__ = ["PAGE_BYTES", "SharedMemory", "SharedPager"]

PAGE_BYTES = 1024

#: Pager service ports (well-known).
FETCH_PORT = 0x5A00
CTRL_PORT = 0x5A01

# Request opcodes.
_OP_FETCH_READ = 1
_OP_FETCH_WRITE = 2
_OP_INVALIDATE = 3
_OP_DOWNGRADE = 4

# Local page states.
INVALID = "invalid"
SHARED = "shared"
EXCLUSIVE = "exclusive"

_REQ_FMT = ">BII"  # opcode, page, requester node id


def _request(opcode: int, page: int, requester: int) -> bytes:
    return struct.pack(_REQ_FMT, opcode, page, requester)


def _parse_request(data: bytes) -> tuple[int, int, int]:
    if len(data) < struct.calcsize(_REQ_FMT):
        raise ProtocolError("short pager request")
    return struct.unpack(_REQ_FMT, data[: struct.calcsize(_REQ_FMT)])


class _Directory:
    """Home-side record for one page."""

    __slots__ = ("owner", "copyset", "data")

    def __init__(self, data: bytes):
        self.owner: int = 0  # 0 = no exclusive owner
        self.copyset: Set[int] = set()
        self.data = bytearray(data)


class SharedPager:
    """One node's external pager task."""

    def __init__(self, shared: "SharedMemory", node: NectarNode):
        self.shared = shared
        self.node = node
        self.runtime = node.runtime
        #: page -> (state, bytearray) for locally present pages.
        self.pages: Dict[int, tuple[str, bytearray]] = {}
        #: Directory entries for pages whose home is this node.
        self.directory: Dict[int, _Directory] = {}
        self._fetch_mailbox = node.runtime.mailbox("pager-fetch")
        self._ctrl_mailbox = node.runtime.mailbox("pager-ctrl")
        node.rpc.serve(FETCH_PORT, self._fetch_mailbox)
        node.rpc.serve(CTRL_PORT, self._ctrl_mailbox)
        node.runtime.fork_system(self._serve(self._fetch_mailbox, self._handle_fetch), "pager-fetch")
        node.runtime.fork_system(self._serve(self._ctrl_mailbox, self._handle_ctrl), "pager-ctrl")
        self.stats = node.runtime.stats

    # ------------------------------------------------------------ local access

    def read(self, page: int) -> Generator:
        """Thread-context: return the page's bytes (fetching if needed)."""
        self.shared._check_page(page)
        state = self.pages.get(page, (INVALID, None))[0]
        if state == INVALID:
            yield from self._fetch(page, _OP_FETCH_READ)
            self.stats.add("dsm_read_misses")
        else:
            self.stats.add("dsm_read_hits")
        return bytes(self.pages[page][1])

    def write(self, page: int, offset: int, data: bytes) -> Generator:
        """Thread-context: write into the page (acquiring exclusivity)."""
        self.shared._check_page(page)
        if offset < 0 or offset + len(data) > PAGE_BYTES:
            raise NectarError(f"write outside page: [{offset}, {offset + len(data)})")
        state = self.pages.get(page, (INVALID, None))[0]
        if state != EXCLUSIVE:
            yield from self._fetch(page, _OP_FETCH_WRITE)
            self.stats.add("dsm_write_misses")
        else:
            self.stats.add("dsm_write_hits")
        self.pages[page][1][offset : offset + len(data)] = data

    # ------------------------------------------------------------------- fetch

    def _fetch(self, page: int, opcode: int) -> Generator:
        home = self.shared.home_of(page)
        if home is self.node:
            # The home services its own miss locally (no self-RPC): run the
            # directory logic inline.
            data = yield from self._home_grant(page, opcode, self.node.node_id)
        else:
            port = self.node.rpc.allocate_client_port()
            reply = yield from self.node.rpc.request(
                port,
                home.node_id,
                FETCH_PORT,
                _request(opcode, page, self.node.node_id),
            )
            data = reply
        state = EXCLUSIVE if opcode == _OP_FETCH_WRITE else SHARED
        self.pages[page] = (state, bytearray(data))

    # ---------------------------------------------------------- service loops

    def _serve(self, mailbox, handler) -> Generator:
        while True:
            msg = yield from mailbox.begin_get()
            header = NectarTransportHeader.unpack(
                msg.read(0, NectarTransportHeader.SIZE)
            )
            body = msg.read(NectarTransportHeader.SIZE)
            yield from mailbox.end_get(msg)
            response = yield from handler(body)
            yield from self.node.rpc.respond(header, response)

    def _handle_fetch(self, body: bytes) -> Generator:
        opcode, page, requester = _parse_request(body)
        data = yield from self._home_grant(page, opcode, requester)
        return data

    def _home_grant(self, page: int, opcode: int, requester: int) -> Generator:
        """Directory logic at the page's home.  Returns the page bytes."""
        entry = self.directory.get(page)
        if entry is None:
            raise ProtocolError(f"node {self.node.name} is not home for page {page}")
        if opcode == _OP_FETCH_READ:
            if entry.owner and entry.owner != requester:
                # Downgrade the exclusive owner; it writes its copy back.
                data = yield from self._callback(entry.owner, _OP_DOWNGRADE, page)
                entry.data[:] = data
                entry.copyset.add(entry.owner)
                entry.owner = 0
            entry.copyset.add(requester)
            self.stats.add("dsm_fetch_read")
            return bytes(entry.data)
        if opcode == _OP_FETCH_WRITE:
            if entry.owner and entry.owner != requester:
                data = yield from self._callback(entry.owner, _OP_INVALIDATE, page)
                entry.data[:] = data
                entry.owner = 0
            for holder in sorted(entry.copyset):
                if holder != requester:
                    yield from self._callback(holder, _OP_INVALIDATE, page)
            entry.copyset.clear()
            entry.owner = requester
            self.stats.add("dsm_fetch_write")
            # If the home itself holds a stale copy, drop it (unless the
            # home is the requester).
            if requester != self.node.node_id:
                self.pages.pop(page, None)
            return bytes(entry.data)
        raise ProtocolError(f"bad fetch opcode {opcode}")

    def _callback(self, holder_id: int, opcode: int, page: int) -> Generator:
        """Home -> holder control RPC (invalidate or downgrade)."""
        if holder_id == self.node.node_id:
            response = yield from self._ctrl_action(opcode, page)
            return response
        holder = self.shared.node_by_id(holder_id)
        port = self.node.rpc.allocate_client_port()
        reply = yield from self.node.rpc.request(
            port, holder.node_id, CTRL_PORT, _request(opcode, page, self.node.node_id)
        )
        return reply

    def _handle_ctrl(self, body: bytes) -> Generator:
        opcode, page, _requester = _parse_request(body)
        response = yield from self._ctrl_action(opcode, page)
        return response

    def _ctrl_action(self, opcode: int, page: int) -> Generator:
        yield from self.runtime.ops.sleep(0)  # control handler scheduling
        state, data = self.pages.get(page, (INVALID, bytearray(PAGE_BYTES)))
        payload = bytes(data)
        if opcode == _OP_INVALIDATE:
            self.pages.pop(page, None)
            self.stats.add("dsm_invalidations")
        elif opcode == _OP_DOWNGRADE:
            if page in self.pages:
                self.pages[page] = (SHARED, self.pages[page][1])
            self.stats.add("dsm_downgrades")
        else:
            raise ProtocolError(f"bad control opcode {opcode}")
        return payload


class SharedMemory:
    """A distributed shared address space across a set of nodes."""

    def __init__(self, nodes: List[NectarNode], n_pages: int):
        if not nodes:
            raise NectarError("shared memory needs at least one node")
        if n_pages <= 0:
            raise NectarError("shared memory needs at least one page")
        self.nodes = list(nodes)
        self.n_pages = n_pages
        self.pagers: Dict[str, SharedPager] = {}
        self._by_id: Dict[int, NectarNode] = {node.node_id: node for node in nodes}
        for node in nodes:
            self.pagers[node.name] = SharedPager(self, node)
        # Seed directory entries at each page's home (zero-filled pages).
        for page in range(n_pages):
            home = self.home_of(page)
            self.pagers[home.name].directory[page] = _Directory(bytes(PAGE_BYTES))

    def _check_page(self, page: int) -> None:
        if not 0 <= page < self.n_pages:
            raise NectarError(f"page {page} outside space of {self.n_pages}")

    def home_of(self, page: int) -> NectarNode:
        """The node holding a page's directory entry."""
        self._check_page(page)
        return self.nodes[page % len(self.nodes)]

    def node_by_id(self, node_id: int) -> NectarNode:
        """Look a participating node up by node id."""
        if node_id not in self._by_id:
            raise NectarError(f"unknown node id {node_id}")
        return self._by_id[node_id]

    def pager(self, node: NectarNode) -> SharedPager:
        """The pager task of one participating node."""
        return self.pagers[node.name]
