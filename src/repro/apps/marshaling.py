"""Presentation-layer offload (paper Sec. 5.3, future work).

"Research is under way to use the CAB to offload presentation layer
functionality, such as the marshaling and unmarshaling of data required by
remote procedure call systems" (citing Siegel & Cooper's OSI presentation
work).  This module implements that experiment:

* a real XDR-style codec (:func:`marshal` / :func:`unmarshal`) for typed
  values — integers, byte strings, booleans, and lists;
* cost charging for running the codec on the *host* CPU vs on the *CAB*
  CPU (per-byte costs from the cost model);
* :func:`compare_marshal_placement`, a harness measuring an RPC whose
  arguments are marshaled on the host against one whose marshaling is
  offloaded to the CAB — the host ships the raw argument bytes across the
  mapped memory and the CAB does the presentation-layer work.
"""

from __future__ import annotations

import struct
from typing import Generator, List, Union

from repro.cab.cpu import Compute
from repro.errors import ProtocolError
from repro.host.machine import HostedNode
from repro.model.costs import CostModel
from repro.nectarine.api import CabNectarine
from repro.nectarine.naming import NameService
from repro.system import NectarSystem
from repro.units import seconds

__all__ = [
    "compare_marshal_placement",
    "marshal",
    "marshal_cost_ns",
    "unmarshal",
]

Value = Union[int, bytes, bool, list]

_TAG_INT = 0x01
_TAG_BYTES = 0x02
_TAG_BOOL = 0x03
_TAG_LIST = 0x04


def marshal(values: List[Value]) -> bytes:
    """Encode a list of typed values (XDR-style: tagged, 4-byte aligned)."""
    out = bytearray()
    out.extend(struct.pack(">I", len(values)))
    for value in values:
        _marshal_one(out, value)
    return bytes(out)


def _marshal_one(out: bytearray, value: Value) -> None:
    # bool before int: bool is a subclass of int in Python.
    if isinstance(value, bool):
        out.append(_TAG_BOOL)
        out.extend(struct.pack(">I", 1 if value else 0))
    elif isinstance(value, int):
        if not -(2**63) <= value < 2**63:
            raise ProtocolError(f"integer {value} exceeds 64 bits")
        out.append(_TAG_INT)
        out.extend(struct.pack(">q", value))
    elif isinstance(value, bytes):
        out.append(_TAG_BYTES)
        out.extend(struct.pack(">I", len(value)))
        out.extend(value)
        out.extend(b"\x00" * (-len(value) % 4))  # pad to 4-byte boundary
    elif isinstance(value, list):
        out.append(_TAG_LIST)
        out.extend(struct.pack(">I", len(value)))
        for item in value:
            _marshal_one(out, item)
    else:
        raise ProtocolError(f"cannot marshal {type(value).__name__}")


def unmarshal(data: bytes) -> List[Value]:
    """Decode a :func:`marshal` blob; raises ProtocolError on malformation."""
    if len(data) < 4:
        raise ProtocolError("short marshal blob")
    (count,) = struct.unpack(">I", data[:4])
    values: List[Value] = []
    offset = 4
    for _ in range(count):
        value, offset = _unmarshal_one(data, offset)
        values.append(value)
    if offset != len(data):
        raise ProtocolError(f"{len(data) - offset} trailing bytes after unmarshal")
    return values


def _unmarshal_one(data: bytes, offset: int) -> tuple[Value, int]:
    if offset >= len(data):
        raise ProtocolError("truncated marshal blob")
    tag = data[offset]
    offset += 1
    if tag == _TAG_INT:
        if offset + 8 > len(data):
            raise ProtocolError("truncated integer")
        (value,) = struct.unpack(">q", data[offset : offset + 8])
        return value, offset + 8
    if tag == _TAG_BOOL:
        if offset + 4 > len(data):
            raise ProtocolError("truncated boolean")
        (raw,) = struct.unpack(">I", data[offset : offset + 4])
        return bool(raw), offset + 4
    if tag == _TAG_BYTES:
        if offset + 4 > len(data):
            raise ProtocolError("truncated byte-string length")
        (length,) = struct.unpack(">I", data[offset : offset + 4])
        offset += 4
        padded = length + (-length % 4)
        if offset + padded > len(data):
            raise ProtocolError("truncated byte string")
        return bytes(data[offset : offset + length]), offset + padded
    if tag == _TAG_LIST:
        if offset + 4 > len(data):
            raise ProtocolError("truncated list length")
        (length,) = struct.unpack(">I", data[offset : offset + 4])
        offset += 4
        items: List[Value] = []
        for _ in range(length):
            item, offset = _unmarshal_one(data, offset)
            items.append(item)
        return items, offset
    raise ProtocolError(f"unknown marshal tag 0x{tag:02x}")


def marshal_cost_ns(nbytes: int, per_byte_ns: int) -> int:
    """Presentation-layer CPU cost: tag walking + byte shuffling."""
    return nbytes * per_byte_ns


def marshal_on_host(values: List[Value], costs: CostModel) -> Generator:
    """Host-context: run the codec on the host CPU.  Returns the blob."""
    blob = marshal(values)
    yield Compute(marshal_cost_ns(len(blob), costs.host_memcpy_ns_per_byte * 3))
    return blob


def marshal_on_cab(values: List[Value], costs: CostModel) -> Generator:
    """CAB-context: run the codec on the (slower) CAB CPU."""
    blob = marshal(values)
    yield Compute(marshal_cost_ns(len(blob), costs.cab_memcpy_ns_per_byte * 3))
    return blob


def compare_marshal_placement(
    values: List[Value], rounds: int = 10
) -> dict:
    """Measure host-marshaled vs CAB-marshaled RPC (us per call).

    Host mode: the host runs the codec, then ships the (larger) marshaled
    blob across the VME bus.  Offload mode: the host ships the raw argument
    bytes and the CAB runs the codec before transmitting.  The offload wins
    when the host is busy or the marshaled form is much bigger than the
    native one — the effect the paper's presentation-layer project was
    after; with an idle host the two are close.
    """
    results = {}
    for mode in ("host", "cab"):
        system = NectarSystem()
        hub = system.add_hub("hub0")
        node_a = system.add_node("cab-a", hub, 0)
        node_b = system.add_node("cab-b", hub, 1)
        hosted_a = HostedNode(system, node_a)
        names = NameService()
        server = CabNectarine(node_b, names)
        server.serve("echo", lambda request: request)
        done = system.sim.event()
        costs = system.costs

        def client() -> Generator:
            yield from hosted_a.driver.map_cab_memory()
            start = system.now
            for _ in range(rounds):
                if mode == "host":
                    blob = yield from marshal_on_host(values, costs)

                    def on_cab(blob=blob) -> Generator:
                        app = CabNectarine(node_a, names)
                        reply = yield from app.call("echo", blob)
                        return reply

                    reply = yield from hosted_a.driver.call_cab(on_cab)
                else:
                    def on_cab() -> Generator:
                        blob = yield from marshal_on_cab(values, costs)
                        app = CabNectarine(node_a, names)
                        reply = yield from app.call("echo", blob)
                        return reply

                    reply = yield from hosted_a.driver.call_cab(on_cab)
                assert unmarshal(reply) == values
            done.succeed((system.now - start) / rounds / 1000.0)

        hosted_a.host.fork_process(client(), "client")
        results[f"{mode}_us"] = system.run_until(done, limit=seconds(60))
    return results
