"""Throughput workloads: Figures 7 and 8.

Each harness streams ``count`` messages of ``message_size`` bytes and
returns the achieved throughput in Mbit/s, measured across the whole
transfer (first send to last delivery), after a short warmup.

* ``cab_*`` — sender and receiver are threads on the two CABs (Figure 7).
* ``host_*`` — sender and receiver are host processes; every byte crosses
  the VME bus on each side (Figure 8).
* ``netdev_throughput`` / ``ethernet_throughput`` — the Figure 8 baselines:
  the same Berkeley-style host stack over the CAB-as-network-device and
  over the on-board Ethernet.
"""

from __future__ import annotations

from typing import Generator

from repro.apps.services import install_rmp_host_send
from repro.host.ethernet import EthernetNIC, EthernetSegment
from repro.host.hoststack import HostStream
from repro.host.machine import HostedNode
from repro.host.netdev import NetdevNIC
from repro.host.sockets import SocketLibrary
from repro.system import NectarSystem, NectarNode
from repro.units import seconds, throughput_mbps

__all__ = [
    "cab_rmp_throughput",
    "cab_tcp_throughput",
    "ethernet_throughput",
    "host_rmp_throughput",
    "host_tcp_throughput",
    "netdev_throughput",
]

_LIMIT = seconds(600)


# ===================================================================== Figure 7


def cab_rmp_throughput(
    system: NectarSystem,
    node_a: NectarNode,
    node_b: NectarNode,
    message_size: int,
    count: int = 50,
    warmup: int = 3,
) -> float:
    """RMP stream between CAB threads (stop-and-wait, hardware CRC only)."""
    inbox = node_b.runtime.mailbox("tp-inbox")
    chan = node_a.rmp.open(21, node_b.node_id, 22)
    node_b.rmp.open(22, node_a.node_id, 21, deliver_mailbox=inbox)
    done = system.sim.event()
    payload = b"\xAB" * message_size
    marks = {}

    def sender() -> Generator:
        for index in range(count + warmup):
            yield from node_a.rmp.send(chan, payload, charge_copy=False)

    def receiver() -> Generator:
        for index in range(count + warmup):
            msg = yield from inbox.begin_get()
            yield from inbox.end_get(msg)
            if index == warmup - 1:
                marks["start"] = system.now
        done.succeed(system.now)

    node_a.runtime.fork_application(sender(), "tp-sender")
    node_b.runtime.fork_application(receiver(), "tp-receiver")
    end = system.run_until(done, limit=_LIMIT)
    return throughput_mbps(message_size * count, end - marks["start"])


def cab_tcp_throughput(
    system: NectarSystem,
    node_a: NectarNode,
    node_b: NectarNode,
    message_size: int,
    count: int = 50,
    warmup: int = 3,
) -> float:
    """TCP stream between CAB threads (checksums per the node's config)."""
    inbox = node_b.runtime.mailbox("tp-inbox")
    node_b.tcp.listen(7000, lambda conn: inbox)
    done = system.sim.event()
    payload = b"\xCD" * message_size
    total = message_size * count
    warm_bytes = message_size * warmup
    marks = {}

    def sender() -> Generator:
        cli_inbox = node_a.runtime.mailbox("tp-cli-inbox")
        conn = yield from node_a.tcp.connect(6000, node_b.ip_address, 7000, cli_inbox)
        for _ in range(count + warmup):
            yield from node_a.tcp.send_direct(conn, payload)

    def receiver() -> Generator:
        received = 0
        while received < total + warm_bytes:
            msg = yield from inbox.begin_get()
            received += msg.size
            yield from inbox.end_get(msg)
            if received >= warm_bytes and "start" not in marks:
                marks["start"] = system.now
                marks["base"] = received
        done.succeed((system.now, received))

    node_a.runtime.fork_application(sender(), "tp-sender")
    node_b.runtime.fork_application(receiver(), "tp-receiver")
    end, received = system.run_until(done, limit=_LIMIT)
    return throughput_mbps(received - marks["base"], end - marks["start"])


# ===================================================================== Figure 8


def host_rmp_throughput(
    system: NectarSystem,
    hosted_a: HostedNode,
    hosted_b: HostedNode,
    message_size: int,
    count: int = 40,
    warmup: int = 3,
) -> float:
    """RMP stream between host processes (each byte crosses both VME buses)."""
    node_a, node_b = hosted_a.node, hosted_b.node
    inbox = node_b.runtime.mailbox("tp-inbox")
    chan = node_a.rmp.open(21, node_b.node_id, 22)
    node_b.rmp.open(22, node_a.node_id, 21, deliver_mailbox=inbox)
    send_mailbox = install_rmp_host_send(node_a, chan)
    done = system.sim.event()
    payload = b"\xAB" * message_size
    marks = {}

    def sender() -> Generator:
        yield from hosted_a.driver.map_cab_memory()
        for _ in range(count + warmup):
            msg = yield from hosted_a.driver.begin_put(send_mailbox, message_size)
            yield from hosted_a.driver.fill(msg, payload)
            yield from hosted_a.driver.end_put(send_mailbox, msg)

    def receiver() -> Generator:
        yield from hosted_b.driver.map_cab_memory()
        for index in range(count + warmup):
            msg = yield from hosted_b.driver.begin_get(inbox, blocking=False)
            yield from hosted_b.driver.read(msg)
            yield from hosted_b.driver.end_get(inbox, msg)
            if index == warmup - 1:
                marks["start"] = system.now
        done.succeed(system.now)

    hosted_a.host.fork_process(sender(), "tp-sender")
    hosted_b.host.fork_process(receiver(), "tp-receiver")
    end = system.run_until(done, limit=_LIMIT)
    return throughput_mbps(message_size * count, end - marks["start"])


def host_tcp_throughput(
    system: NectarSystem,
    hosted_a: HostedNode,
    hosted_b: HostedNode,
    message_size: int,
    count: int = 40,
    warmup: int = 3,
) -> float:
    """TCP stream between host processes through the socket emulation."""
    lib_a = SocketLibrary(hosted_a)
    lib_b = SocketLibrary(hosted_b)
    done = system.sim.event()
    payload = b"\xCD" * message_size
    total = message_size * count
    warm_bytes = message_size * warmup
    marks = {}

    def server() -> Generator:
        yield from lib_b.init()
        sock = lib_b.socket()
        listener = yield from sock.listen(7000)
        yield from sock.accept(listener)
        yield from sock.recv(warm_bytes)
        marks["start"] = system.now
        yield from sock.recv(total)
        done.succeed(system.now)

    def client() -> Generator:
        yield from lib_a.init()
        sock = lib_a.socket()
        yield from sock.connect(hosted_b.node.ip_address, 7000, 6000)
        for _ in range(count + warmup):
            yield from sock.send(payload)

    hosted_b.host.fork_process(server(), "tp-server")
    hosted_a.host.fork_process(client(), "tp-client")
    end = system.run_until(done, limit=_LIMIT)
    return throughput_mbps(total, end - marks["start"])


def netdev_throughput(
    system: NectarSystem,
    hosted_a: HostedNode,
    hosted_b: HostedNode,
    message_size: int,
    count: int = 40,
    warmup: int = 3,
) -> float:
    """Host stack over the CAB-as-network-device (paper: ~6.4 Mbit/s)."""
    nic_a = NetdevNIC(hosted_a)
    nic_b = NetdevNIC(hosted_b)
    return _host_stack_throughput(
        system,
        hosted_a,
        hosted_b,
        nic_a,
        nic_b,
        peer_a=hosted_b.node.name,
        peer_b=hosted_a.node.name,
        message_size=message_size,
        count=count,
        warmup=warmup,
        map_memory=True,
    )


def ethernet_throughput(
    system: NectarSystem,
    hosted_a: HostedNode,
    hosted_b: HostedNode,
    message_size: int,
    count: int = 40,
    warmup: int = 3,
) -> float:
    """Host stack over the on-board Ethernet (paper: ~7.2 Mbit/s)."""
    segment = EthernetSegment(system.sim, system.costs)
    nic_a = EthernetNIC(hosted_a.host, segment)
    nic_b = EthernetNIC(hosted_b.host, segment)
    return _host_stack_throughput(
        system,
        hosted_a,
        hosted_b,
        nic_a,
        nic_b,
        peer_a=hosted_b.host.name,
        peer_b=hosted_a.host.name,
        message_size=message_size,
        count=count,
        warmup=warmup,
        map_memory=False,
    )


def _host_stack_throughput(
    system: NectarSystem,
    hosted_a: HostedNode,
    hosted_b: HostedNode,
    nic_a,
    nic_b,
    peer_a: str,
    peer_b: str,
    message_size: int,
    count: int,
    warmup: int,
    map_memory: bool,
) -> float:
    done = system.sim.event()
    total = message_size * count
    warm_bytes = message_size * warmup
    payload = b"\xEF" * message_size
    marks = {}

    def sender() -> Generator:
        if map_memory:
            yield from hosted_a.driver.map_cab_memory()
        stream = HostStream(hosted_a.host, nic_a, system.costs, peer=peer_a)
        for _ in range(count + warmup):
            yield from stream.send(payload)
        yield from stream.drain()

    def receiver() -> Generator:
        if map_memory:
            yield from hosted_b.driver.map_cab_memory()
        stream = HostStream(hosted_b.host, nic_b, system.costs, peer=peer_b)
        yield from stream.recv(warm_bytes)
        marks["start"] = system.now
        yield from stream.recv(total)
        done.succeed(system.now)

    hosted_a.host.fork_process(sender(), "tp-sender")
    hosted_b.host.fork_process(receiver(), "tp-receiver")
    end = system.run_until(done, limit=_LIMIT)
    return throughput_mbps(total, end - marks["start"])
