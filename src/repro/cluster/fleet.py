"""Declarative fleet topologies and shard-aware system construction.

A :class:`FleetSpec` is plain, picklable data: hub names, inter-HUB links,
and CAB placements, in a fixed construction order.  Every process — the
single-`Simulator` reference and each shard worker — builds its view of the
fleet from the same spec in the same order, which is what keeps node-id
assignment, route computation, and event tie-breaking identical everywhere.

A *shard build* constructs full protocol stacks only for the CABs whose HUB
belongs to the shard; every other CAB becomes a *ghost* (node id + topology
placement, no hardware), and the network's ``local_hubs`` /
``boundary_egress`` seam takes over at the cuts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.errors import ConfigurationError
from repro.model.costs import CostModel
from repro.system import NectarSystem

__all__ = [
    "FleetSpec",
    "build_fleet_system",
    "build_shard_system",
    "fat_tree_fleet",
    "line_fleet",
    "star_fleet",
]


@dataclass(frozen=True)
class FleetSpec:
    """A whole fleet's wiring as data: hubs, inter-HUB links, CABs."""

    #: Hub names, in construction order.
    hubs: tuple
    #: (hub_a, port_a, hub_b, port_b) inter-HUB fiber pairs, in order.
    links: tuple
    #: (cab_name, hub_name, port) placements, in construction order.
    cabs: tuple
    #: Crossbar size used for every hub.
    hub_ports: int = 16

    def cab_names(self) -> tuple:
        """All CAB names in construction order."""
        return tuple(name for name, _hub, _port in self.cabs)

    def cabs_on(self, hub_names: Iterable[str]) -> tuple:
        """CAB names placed on the given hubs, in construction order."""
        wanted = frozenset(hub_names)
        return tuple(
            name for name, hub, _port in self.cabs if hub in wanted
        )

    def describe(self) -> str:
        """One-line human summary of the fleet's size."""
        return (
            f"{len(self.hubs)} hubs / {len(self.links)} inter-hub links / "
            f"{len(self.cabs)} CABs"
        )


# ------------------------------------------------------------------ generators


def line_fleet(n_hubs: int, cabs_per_hub: int, hub_ports: int = 16) -> FleetSpec:
    """HUBs in a line; hop count between end CABs grows with ``n_hubs``."""
    if n_hubs < 1:
        raise ConfigurationError(f"need at least 1 hub, got {n_hubs}")
    # Interior hubs give up two ports to the line's fibers.
    if cabs_per_hub > hub_ports - 2:
        raise ConfigurationError(
            f"{cabs_per_hub} CABs per hub does not fit {hub_ports}-port hubs "
            f"in a line (2 ports reserved for inter-hub fibers)"
        )
    hubs = tuple(f"hub{i:02d}" for i in range(n_hubs))
    links = tuple(
        (hubs[i], hub_ports - 1, hubs[i + 1], hub_ports - 2)
        for i in range(n_hubs - 1)
    )
    cabs = tuple(
        (f"cab-{i:02d}-{j:02d}", hubs[i], j)
        for i in range(n_hubs)
        for j in range(cabs_per_hub)
    )
    return FleetSpec(hubs=hubs, links=links, cabs=cabs, hub_ports=hub_ports)


def star_fleet(n_leaves: int, cabs_per_hub: int, hub_ports: int = 16) -> FleetSpec:
    """One center HUB with ``n_leaves`` leaf HUBs; CABs on the leaves."""
    if n_leaves < 1:
        raise ConfigurationError(f"need at least 1 leaf, got {n_leaves}")
    if n_leaves > hub_ports:
        raise ConfigurationError(
            f"{n_leaves} leaves exceed the center hub's {hub_ports} ports"
        )
    if cabs_per_hub > hub_ports - 1:
        raise ConfigurationError(
            f"{cabs_per_hub} CABs per leaf does not fit {hub_ports}-port hubs "
            f"(1 port reserved for the uplink)"
        )
    center = "hub00"
    leaves = tuple(f"hub{i + 1:02d}" for i in range(n_leaves))
    links = tuple(
        (center, i, leaves[i], hub_ports - 1) for i in range(n_leaves)
    )
    cabs = tuple(
        (f"cab-{i + 1:02d}-{j:02d}", leaves[i], j)
        for i in range(n_leaves)
        for j in range(cabs_per_hub)
    )
    return FleetSpec(
        hubs=(center,) + leaves, links=links, cabs=cabs, hub_ports=hub_ports
    )


def fat_tree_fleet(
    n_spines: int, n_leaves: int, cabs_per_hub: int, hub_ports: int = 16
) -> FleetSpec:
    """Two-level fat tree: every leaf HUB links to every spine HUB."""
    if n_spines < 1 or n_leaves < 1:
        raise ConfigurationError(
            f"need at least 1 spine and 1 leaf, got {n_spines}/{n_leaves}"
        )
    if n_leaves > hub_ports:
        raise ConfigurationError(
            f"{n_leaves} leaves exceed the spine hubs' {hub_ports} ports"
        )
    if cabs_per_hub + n_spines > hub_ports:
        raise ConfigurationError(
            f"{cabs_per_hub} CABs + {n_spines} uplinks do not fit "
            f"{hub_ports}-port leaf hubs"
        )
    spines = tuple(f"spine{s:02d}" for s in range(n_spines))
    leaves = tuple(f"leaf{l:02d}" for l in range(n_leaves))
    links = tuple(
        (spines[s], l, leaves[l], hub_ports - 1 - s)
        for s in range(n_spines)
        for l in range(n_leaves)
    )
    cabs = tuple(
        (f"cab-{l:02d}-{j:02d}", leaves[l], j)
        for l in range(n_leaves)
        for j in range(cabs_per_hub)
    )
    return FleetSpec(
        hubs=spines + leaves, links=links, cabs=cabs, hub_ports=hub_ports
    )


_GENERATORS = {
    "line": line_fleet,
    "star": star_fleet,
    "fat-tree": fat_tree_fleet,
}


def make_fleet(shape: str, hubs: int, cabs_per_hub: int, hub_ports: int = 16) -> FleetSpec:
    """Build a spec by shape name (the CLI entry point).

    ``hubs`` is the total hub budget: a star uses one hub as the center; a
    fat tree splits off one spine per four leaves (minimum one).
    """
    if shape == "line":
        return line_fleet(hubs, cabs_per_hub, hub_ports)
    if shape == "star":
        if hubs < 2:
            raise ConfigurationError("a star needs at least 2 hubs")
        return star_fleet(hubs - 1, cabs_per_hub, hub_ports)
    if shape == "fat-tree":
        if hubs < 2:
            raise ConfigurationError("a fat tree needs at least 2 hubs")
        n_spines = max(1, hubs // 5)
        return fat_tree_fleet(n_spines, hubs - n_spines, cabs_per_hub, hub_ports)
    raise ConfigurationError(
        f"unknown fleet shape {shape!r}; choose from {', '.join(sorted(_GENERATORS))}"
    )


# ------------------------------------------------------------------ builders


def _build(
    spec: FleetSpec,
    local_hub_names,
    costs: Optional[CostModel],
    active_cabs=None,
) -> NectarSystem:
    system = NectarSystem(costs=costs)
    hubs = {}
    for hub_name in spec.hubs:
        hubs[hub_name] = system.add_hub(hub_name, ports=spec.hub_ports)
    for hub_a, port_a, hub_b, port_b in spec.links:
        system.connect_hubs(hubs[hub_a], port_a, hubs[hub_b], port_b)
    for cab_name, hub_name, port in spec.cabs:
        local = local_hub_names is None or hub_name in local_hub_names
        if local and (active_cabs is None or cab_name in active_cabs):
            system.add_node(cab_name, hubs[hub_name], port)
        else:
            system.add_remote_node(cab_name, hubs[hub_name], port)
    return system


def build_fleet_system(
    spec: FleetSpec, costs: Optional[CostModel] = None
) -> NectarSystem:
    """The single-process reference: every CAB gets a full stack."""
    return _build(spec, None, costs)


def build_shard_system(
    spec: FleetSpec,
    local_hub_names: Iterable[str],
    costs: Optional[CostModel] = None,
    active_cabs: Optional[Iterable[str]] = None,
) -> NectarSystem:
    """One shard's view: full stacks on its hubs, ghosts elsewhere.

    ``active_cabs``, when given, narrows stack construction further: a CAB
    on a local hub that is *not* in the set is built as a ghost too.  The
    cluster runner passes the workload's flow endpoints here — a CAB no
    flow touches boots a stack that then sits idle, so eliding it changes
    no observable protocol result (its retransmit counters are synthesized
    as zero, which is provably what the reference reports for it).

    The caller still has to install ``network.boundary_egress`` before
    traffic crosses a cut.
    """
    local = frozenset(local_hub_names)
    unknown = sorted(local - set(spec.hubs))
    if unknown:
        raise ConfigurationError(f"shard names unknown hubs: {unknown}")
    system = _build(spec, local, costs, active_cabs=active_cabs)
    system.network.local_hubs = local
    return system
