"""Deterministic mixed fleet traffic: RMP + RPC + TCP + multicast flows.

A :class:`WorkloadSpec` expands to a flow list as a pure function of
``(seed, fleet spec)`` — every process that holds the same spec derives the
same flows, endpoints, ports, and payloads.  :class:`Workload.install` then
wires up only the halves whose CAB is *local* to the given system: in the
single-process reference that is every half, in a shard it is just the
shard's own senders/receivers, and the two views add up to exactly the same
traffic on the wire.

Protocol-level results (the parity currency of docs/scaling.md) are
recorded at each flow's observing endpoint — the RMP receiver, the RPC
client, the TCP server — as delivered bytes, message counts, and the
simulated completion time.  Retransmission counters are per-node sums,
reported for whichever nodes are local.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

from repro.cluster.fleet import FleetSpec
from repro.errors import ConfigurationError
from repro.hub.groups import GROUP_BASE
from repro.protocols.headers import NectarTransportHeader

__all__ = ["Flow", "Workload", "WorkloadSpec"]

# Disjoint port ranges, indexed by global flow number, so one CAB can
# terminate many flows without a collision.
_RMP_SRC_PORT = 0x4000
_RMP_DST_PORT = 0x4800
_RPC_CLIENT_PORT = 0x3000
_RPC_SERVICE_PORT = 0x2000
_TCP_CLIENT_PORT = 6000
_TCP_SERVER_PORT = 7000
_NMP_PORT = 0x5000
_COLL_PORT = 0x5800


@dataclass(frozen=True)
class Flow:
    """One traffic flow between two CABs, fully determined by the spec."""

    index: int  # global flow number (port basis and group id basis)
    kind: str  # "rmp" | "rpc" | "tcp" | "mcast" | "barrier"
    src: str  # sending / client CAB name
    dst: str  # receiving / server CAB name
    messages: int  # RMP/NMP messages, RPC calls, barrier rounds, TCP payloads
    size: int  # bytes per message / call / whole TCP payload
    #: One-to-many flows only: the receiving group, in rank order.  For
    #: "mcast" the src multicasts to these members (src is never a member);
    #: for "barrier" the members *are* the flow (src/dst mirror the root
    #: and last member for display).
    members: tuple = ()

    @property
    def group_id(self) -> int:
        """The fabric-level group address of a one-to-many flow."""
        return GROUP_BASE + self.index

    @property
    def name(self) -> str:
        return f"{self.kind}-{self.index:02d}"

    def payload(self, message_index: int) -> bytes:
        """The deterministic body of one message of this flow."""
        fill = (self.index * 31 + message_index * 7 + 1) % 255 + 1
        return bytes([fill]) * self.size


@dataclass(frozen=True)
class WorkloadSpec:
    """How much of each kind of traffic to generate, and from which seed."""

    seed: int = 0
    rmp_flows: int = 8
    rpc_flows: int = 6
    tcp_flows: int = 4
    rmp_messages: int = 4
    rmp_bytes: int = 256
    rpc_calls: int = 3
    rpc_bytes: int = 128
    tcp_bytes: int = 4096
    #: One-to-many traffic (defaults off: seeded expansions predating the
    #: multicast plane are byte-identical).
    mcast_flows: int = 0
    mcast_messages: int = 4
    mcast_bytes: int = 256
    mcast_group: int = 4
    barrier_flows: int = 0
    barrier_rounds: int = 3
    #: Explicit :class:`Flow` tuple overriding the seeded expansion.  The
    #: ops lab uses this to pin incident traffic to known endpoints (the
    #: count/size fields above are ignored when set).  Flow indices must be
    #: distinct — they are the port basis.
    explicit_flows: tuple = ()

    def flows(self, fleet: FleetSpec) -> tuple:
        """Expand to concrete flows — a pure function of (self, fleet)."""
        if self.explicit_flows:
            known = set(fleet.cab_names())
            for flow in self.explicit_flows:
                if flow.src not in known or flow.dst not in known:
                    raise ConfigurationError(
                        f"explicit flow {flow.name} references a CAB outside "
                        f"the fleet ({flow.src} -> {flow.dst})"
                    )
            if len({flow.index for flow in self.explicit_flows}) != len(
                self.explicit_flows
            ):
                raise ConfigurationError("explicit flow indices must be distinct")
            return tuple(self.explicit_flows)
        cabs = fleet.cab_names()
        if len(cabs) < 2:
            raise ConfigurationError(
                f"workload needs at least 2 CABs, fleet has {len(cabs)}"
            )
        rng = random.Random(self.seed)
        flows = []
        plan = (
            [("rmp", self.rmp_messages, self.rmp_bytes)] * self.rmp_flows
            + [("rpc", self.rpc_calls, self.rpc_bytes)] * self.rpc_flows
            + [("tcp", 1, self.tcp_bytes)] * self.tcp_flows
            + [("mcast", self.mcast_messages, self.mcast_bytes)]
            * self.mcast_flows
            + [("barrier", self.barrier_rounds, 0)] * self.barrier_flows
        )
        group = max(2, min(self.mcast_group, len(cabs) - 1))
        for index, (kind, messages, size) in enumerate(plan):
            if kind == "mcast":
                src = rng.choice(cabs)
                members = tuple(
                    rng.sample([name for name in cabs if name != src], group)
                )
                flows.append(
                    Flow(
                        index=index,
                        kind=kind,
                        src=src,
                        dst=members[-1],
                        messages=messages,
                        size=size,
                        members=members,
                    )
                )
                continue
            if kind == "barrier":
                members = tuple(rng.sample(cabs, min(len(cabs), group + 1)))
                flows.append(
                    Flow(
                        index=index,
                        kind=kind,
                        src=members[0],
                        dst=members[-1],
                        messages=messages,
                        size=size,
                        members=members,
                    )
                )
                continue
            src = rng.choice(cabs)
            dst = rng.choice(cabs)
            while dst == src:
                dst = rng.choice(cabs)
            flows.append(
                Flow(
                    index=index,
                    kind=kind,
                    src=src,
                    dst=dst,
                    messages=messages,
                    size=size,
                )
            )
        return tuple(flows)


class Workload:
    """The installed half (or whole) of a spec's flows on one system.

    After the simulation quiesces, :attr:`flow_results` holds one record per
    flow whose *observing* endpoint was local, and :meth:`results` packages
    them with per-node retransmit counters.
    """

    def __init__(self, spec: WorkloadSpec, fleet: FleetSpec):
        self.spec = spec
        self.fleet = fleet
        self.flows = spec.flows(fleet)
        #: flow name -> {kind, src, dst, bytes, messages, completed_ns}
        self.flow_results: Dict[str, dict] = {}

    # -- installation ---------------------------------------------------------

    def install(self, system) -> None:
        """Wire up every flow half whose CAB has a stack on ``system``."""
        for flow in self.flows:
            if flow.kind == "mcast":
                # Group membership is fabric state: every shard registers
                # it (in the same global order) so the crossbars of *any*
                # hub a fan-out tree crosses resolve the group address.
                system.network.groups.register(flow.group_id, flow.members)
            src = system.nodes.get(flow.src)
            dst = system.nodes.get(flow.dst)
            if (
                src is None
                and dst is None
                and not any(name in system.nodes for name in flow.members)
            ):
                continue
            installer = getattr(self, f"_install_{flow.kind}")
            installer(system, flow, src, dst)

    def _record(self, system, flow: Flow, nbytes: int, messages: int) -> None:
        self.flow_results[flow.name] = {
            "kind": flow.kind,
            "src": flow.src,
            "dst": flow.dst,
            "bytes": nbytes,
            "messages": messages,
            "completed_ns": system.sim.now,
        }

    def _install_rmp(self, system, flow: Flow, src, dst) -> None:
        src_id = system.registry.node_id(flow.src)
        dst_id = system.registry.node_id(flow.dst)
        if src is not None:
            channel = src.rmp.open(
                _RMP_SRC_PORT + flow.index, dst_id, _RMP_DST_PORT + flow.index
            )

            def sender():
                for k in range(flow.messages):
                    yield from src.rmp.send(channel, flow.payload(k))

            src.runtime.fork_application(sender(), f"{flow.name}-send")
        if dst is not None:
            inbox = dst.runtime.mailbox(f"{flow.name}-inbox")
            dst.rmp.open(
                _RMP_DST_PORT + flow.index,
                src_id,
                _RMP_SRC_PORT + flow.index,
                deliver_mailbox=inbox,
            )

            def receiver():
                total = 0
                for _ in range(flow.messages):
                    msg = yield from inbox.begin_get()
                    total += msg.size
                    yield from inbox.end_get(msg)
                self._record(system, flow, total, flow.messages)

            dst.runtime.fork_application(receiver(), f"{flow.name}-recv")

    def _record_member(
        self, system, flow: Flow, member: str, nbytes: int, messages: int
    ) -> None:
        """One group member's completion record (keyed flow@member so the
        shards' result sets stay disjoint and union to the reference's)."""
        self.flow_results[f"{flow.name}@{member}"] = {
            "kind": flow.kind,
            "src": flow.src,
            "dst": member,
            "bytes": nbytes,
            "messages": messages,
            "completed_ns": system.sim.now,
        }

    def _install_mcast(self, system, flow: Flow, src, dst) -> None:
        port = _NMP_PORT + flow.index
        member_ids = tuple(
            system.registry.node_id(name) for name in flow.members
        )
        if src is not None:
            session = src.nmp.open_sender(flow.group_id, port, member_ids)

            def sender():
                for k in range(flow.messages):
                    yield from src.nmp.send(session, flow.payload(k))
                yield from src.nmp.flush(session)

            src.runtime.fork_application(sender(), f"{flow.name}-send")
        for rank, member in enumerate(flow.members):
            node = system.nodes.get(member)
            if node is None:
                continue
            inbox = node.runtime.mailbox(f"{flow.name}-inbox-{member}")
            membership = node.nmp.join(flow.group_id, port, rank, inbox)
            assert membership.rank == rank

            def receiver(member=member, inbox=inbox):
                total = 0
                for _ in range(flow.messages):
                    msg = yield from inbox.begin_get()
                    total += msg.size
                    yield from inbox.end_get(msg)
                self._record_member(system, flow, member, total, flow.messages)

            node.runtime.fork_application(
                receiver(), f"{flow.name}-recv-{member}"
            )

    def _install_barrier(self, system, flow: Flow, src, dst) -> None:
        port = _COLL_PORT + flow.index
        member_ids = tuple(
            system.registry.node_id(name) for name in flow.members
        )
        for rank, member in enumerate(flow.members):
            node = system.nodes.get(member)
            if node is None:
                continue
            group = node.coll.create(flow.group_id, port, member_ids, rank)

            def worker(member=member, node=node, group=group):
                for _ in range(flow.messages):
                    yield from node.coll.barrier(group)
                self._record_member(system, flow, member, 0, flow.messages)

            node.runtime.fork_application(
                worker(), f"{flow.name}-bar-{member}"
            )

    def _install_rpc(self, system, flow: Flow, src, dst) -> None:
        dst_id = system.registry.node_id(flow.dst)
        if dst is not None:
            service = dst.runtime.mailbox(f"{flow.name}-service")
            dst.rpc.serve(_RPC_SERVICE_PORT + flow.index, service)

            def server():
                while True:
                    msg = yield from service.begin_get()
                    header = NectarTransportHeader.unpack(
                        msg.read(0, NectarTransportHeader.SIZE)
                    )
                    body = msg.read(NectarTransportHeader.SIZE)
                    yield from service.end_get(msg)
                    yield from dst.rpc.respond(header, body)

            dst.runtime.fork_system(server(), f"{flow.name}-serve")
        if src is not None:

            def client():
                total = 0
                for k in range(flow.messages):
                    reply = yield from src.rpc.request(
                        _RPC_CLIENT_PORT + flow.index,
                        dst_id,
                        _RPC_SERVICE_PORT + flow.index,
                        flow.payload(k),
                    )
                    total += len(reply)
                self._record(system, flow, total, flow.messages)

            src.runtime.fork_application(client(), f"{flow.name}-client")

    def _install_tcp(self, system, flow: Flow, src, dst) -> None:
        # The connection is left ESTABLISHED on purpose: with nothing
        # unacked the timer thread parks on its condition and the queue
        # drains, while an active close would tick through TIME_WAIT.
        expected = flow.size
        if dst is not None:
            server_inbox = dst.runtime.mailbox(f"{flow.name}-srv")
            dst.tcp.listen(
                _TCP_SERVER_PORT + flow.index, lambda conn: server_inbox
            )

            def collector():
                total = 0
                while total < expected:
                    msg = yield from server_inbox.begin_get()
                    total += msg.size
                    yield from server_inbox.end_get(msg)
                self._record(system, flow, total, 1)

            dst.runtime.fork_application(collector(), f"{flow.name}-collect")
        if src is not None:
            dst_ip = self._node_ip(system, flow.dst)

            def client():
                inbox = src.runtime.mailbox(f"{flow.name}-cli")
                conn = yield from src.tcp.connect(
                    _TCP_CLIENT_PORT + flow.index,
                    dst_ip,
                    _TCP_SERVER_PORT + flow.index,
                    inbox,
                )
                yield from src.tcp.send_direct(conn, flow.payload(0))

            src.runtime.fork_application(client(), f"{flow.name}-client")

    @staticmethod
    def _node_ip(system, name: str) -> int:
        """A CAB's IP address, derivable even when the CAB is a ghost."""
        node = system.nodes.get(name)
        if node is not None:
            return node.ip_address
        return system.registry.ip_of_name(name)

    # -- results --------------------------------------------------------------

    def results(self, system) -> dict:
        """Protocol-level results observed on this system.

        ``flows`` covers flows whose observing endpoint is local and
        finished; ``retransmits`` covers the local nodes.  Shards' results
        are disjoint and union to the single-process reference's.
        """
        retransmits = {}
        for name in sorted(system.nodes):
            stats = system.nodes[name].runtime.stats
            retransmits[name] = {
                "rmp_retransmits": stats.value("rmp_retransmits"),
                "rpc_retries": stats.value("rpc_retries"),
                "tcp_retransmits": stats.value("tcp_retransmits"),
                "nmp_nacks": stats.value("nmp_nacks_out"),
                "nmp_repairs": stats.value("nmp_repairs_out"),
            }
        return {
            "flows": dict(sorted(self.flow_results.items())),
            "retransmits": retransmits,
        }

    def incomplete(self, system) -> tuple:
        """Names of locally-observed flow records that never completed."""
        local = []
        for flow in self.flows:
            if flow.members:
                local.extend(
                    f"{flow.name}@{member}"
                    for member in flow.members
                    if member in system.nodes
                )
            elif self._observer(flow) in system.nodes:
                local.append(flow.name)
        return tuple(
            name for name in local if name not in self.flow_results
        )

    @staticmethod
    def _observer(flow: Flow) -> str:
        """The CAB that records a one-to-one flow's completion."""
        return flow.src if flow.kind == "rpc" else flow.dst
