"""The ``python -m repro scale`` benchmark behind ``BENCH_scale.json``.

One bench run executes the unsharded reference and a sharded run per
requested worker count on the same fleet, workload, and seed, then reports
two strictly separated sections:

* ``deterministic`` — event counts, simulated time, the conductor's
  synchronization counters (barriers, epochs, elided null messages,
  fast-path windows, hand-offs, ring vs pickle transport bytes), and the
  parity verdict.  Byte-identical across repeated invocations with the
  same configuration (this is what the regression gate pins).
* ``measured`` — wall-clock, events/sec, the speedup of each worker count
  over the 1-worker sharded run, and the machine's CPU count.  Recorded,
  never gated: the numbers move with the machine.

``--check`` (see :func:`check_against_baseline`) re-runs the committed
configuration and fails when the deterministic section regresses —
parity broken, more barriers than the baseline, hand-off payloads
spilling from the shared-memory rings to pickle, or any counter drift.
``skip_reference`` drops the (serial, unsharded) reference leg for quick
sharded-only measurements; the parity verdict is then ``None``.

The JSON is rendered with sorted keys and fixed separators so a given
result always serializes to the same bytes.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from typing import List, Optional

from repro.cluster.conductor import Conductor, FleetResult, run_reference
from repro.cluster.fleet import FleetSpec, make_fleet
from repro.cluster.workload import WorkloadSpec

__all__ = [
    "check_against_baseline",
    "default_baseline_path",
    "render_bench_json",
    "run_scale_bench",
]


def _wall_ns() -> int:
    # Wall-clock is this module's whole point: the bench measures real
    # elapsed time and quarantines it in the "measured" section.
    return time.perf_counter_ns()  # nectarlint: disable=ND001


def _timed(fn) -> FleetResult:
    start = _wall_ns()
    result = fn()
    result.wall_ns = max(1, _wall_ns() - start)
    return result


def _events_per_sec(result: FleetResult) -> float:
    return round(result.events * 1e9 / result.wall_ns, 1)


def run_scale_bench(
    fleet: FleetSpec,
    workload: WorkloadSpec,
    workers: Optional[List[int]] = None,
    mode: str = "process",
    skip_reference: bool = False,
) -> dict:
    """Run reference + sharded runs and assemble the bench report."""
    workers = workers or [1, 4]
    reference = None if skip_reference else _timed(
        lambda: run_reference(fleet, workload)
    )
    runs = [
        _timed(Conductor(fleet, workload, n_workers=n, mode=mode).run)
        for n in workers
    ]
    parity = None
    if reference is not None:
        reference_digest = reference.protocol_digest()
        parity = all(
            run.protocol_digest() == reference_digest for run in runs
        )

    deterministic = {
        "parity": parity,
        "reference": None
        if reference is None
        else {"events": reference.events, "sim_ns": reference.sim_ns},
        "workers": {
            str(run.n_workers): {
                "events": run.events,
                "sim_ns": run.sim_ns,
                "barriers": run.barriers,
                "epochs": run.epochs,
                "null_elided": run.null_elided,
                "fastpath": run.fastpath,
                "handoffs": run.handoffs,
                "ring_bytes": run.ring_bytes,
                "pickle_bytes": run.pickle_bytes,
            }
            for run in runs
        },
    }
    base_wall = runs[0].wall_ns
    measured = {
        "cpus": os.cpu_count(),
        "reference": None
        if reference is None
        else {
            "wall_ns": reference.wall_ns,
            "events_per_sec": _events_per_sec(reference),
        },
        "workers": {
            str(run.n_workers): {
                "wall_ns": run.wall_ns,
                "events_per_sec": _events_per_sec(run),
                "speedup_vs_1worker": round(base_wall / run.wall_ns, 3),
            }
            for run in runs
        },
    }
    return {
        "bench": "scale",
        "config": {
            "hubs": len(fleet.hubs),
            "links": len(fleet.links),
            "cabs": len(fleet.cabs),
            "hub_ports": fleet.hub_ports,
            "mode": mode,
            "workload": {
                "seed": workload.seed,
                "rmp_flows": workload.rmp_flows,
                "rpc_flows": workload.rpc_flows,
                "tcp_flows": workload.tcp_flows,
                "rmp_messages": workload.rmp_messages,
                "rmp_bytes": workload.rmp_bytes,
                "rpc_calls": workload.rpc_calls,
                "rpc_bytes": workload.rpc_bytes,
                "tcp_bytes": workload.tcp_bytes,
            },
        },
        "deterministic": deterministic,
        "measured": measured,
    }


def render_bench_json(report: dict) -> str:
    """Byte-stable serialization (sorted keys, fixed separators, newline)."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"


def default_baseline_path() -> pathlib.Path:
    """``BENCH_scale.json`` at the repo root (next to ``BENCH_buf.json``)."""
    return pathlib.Path(__file__).resolve().parents[3] / "BENCH_scale.json"


def check_against_baseline(committed: dict, fresh: dict) -> List[str]:
    """Regression verdicts: empty means the tree holds the baseline.

    The fresh report must be run with the committed configuration (a
    config mismatch is its own error — re-baseline deliberately with
    ``--bench --json``).  Parity must hold; per worker count, the barrier
    total must not exceed the committed baseline (the window scheme got
    slower), hand-off payloads must not spill from the shared-memory
    rings to pickled pipe transport beyond the committed spill, and every
    deterministic counter must match exactly.  Wall-clock is never
    compared.
    """
    errors: List[str] = []
    if fresh["config"] != committed.get("config"):
        errors.append(
            "config diverged from the committed baseline; re-baseline "
            "deliberately with --bench --json"
        )
        return errors
    committed_det = committed.get("deterministic", {})
    fresh_det = fresh["deterministic"]
    if fresh_det.get("parity") is False:
        errors.append("parity broken: sharded runs diverged from the reference")
    if fresh_det.get("reference") != committed_det.get("reference"):
        errors.append(
            f"reference leg diverged: {fresh_det.get('reference')} != "
            f"{committed_det.get('reference')}"
        )
    committed_workers = committed_det.get("workers", {})
    for count in sorted(fresh_det["workers"], key=int):
        fresh_worker = fresh_det["workers"][count]
        committed_worker = committed_workers.get(count)
        if committed_worker is None:
            errors.append(f"workers={count} missing from the committed baseline")
            continue
        if fresh_worker["barriers"] > committed_worker["barriers"]:
            errors.append(
                f"workers={count} barriers regressed: "
                f"{fresh_worker['barriers']} > {committed_worker['barriers']}"
            )
        if fresh_worker["pickle_bytes"] > committed_worker["pickle_bytes"]:
            errors.append(
                f"workers={count} pickle_bytes regressed (hand-offs spilled "
                f"from the ring): {fresh_worker['pickle_bytes']} > "
                f"{committed_worker['pickle_bytes']}"
            )
        if fresh_worker != committed_worker:
            errors.append(
                f"workers={count} deterministic counters diverged: "
                f"{fresh_worker} != {committed_worker}"
            )
    return errors


def default_fleet(
    shape: str = "line",
    hubs: int = 4,
    cabs_per_hub: int = 16,
    hub_ports: int = 18,
) -> FleetSpec:
    """The bench's standard rig: 4 HUBs in a line, 64 CABs."""
    return make_fleet(shape, hubs, cabs_per_hub, hub_ports)
