"""The ``python -m repro scale`` benchmark behind ``BENCH_scale.json``.

One bench run executes the unsharded reference and a sharded run per
requested worker count on the same fleet, workload, and seed, then reports
two strictly separated sections:

* ``deterministic`` — event counts, simulated time, barrier counts, and the
  parity verdict.  Byte-identical across repeated invocations with the
  same configuration (this is what the regression test pins).
* ``measured`` — wall-clock and events/sec, including the speedup of each
  worker count over the 1-worker sharded run.  Recorded, never gated: the
  numbers move with the machine.

The JSON is rendered with sorted keys and fixed separators so a given
result always serializes to the same bytes.
"""

from __future__ import annotations

import json
import time
from typing import List, Optional

from repro.cluster.conductor import Conductor, FleetResult, run_reference
from repro.cluster.fleet import FleetSpec, make_fleet
from repro.cluster.workload import WorkloadSpec

__all__ = ["render_bench_json", "run_scale_bench"]


def _wall_ns() -> int:
    # Wall-clock is this module's whole point: the bench measures real
    # elapsed time and quarantines it in the "measured" section.
    return time.perf_counter_ns()  # nectarlint: disable=ND001


def _timed(fn) -> FleetResult:
    start = _wall_ns()
    result = fn()
    result.wall_ns = max(1, _wall_ns() - start)
    return result


def _events_per_sec(result: FleetResult) -> float:
    return round(result.events * 1e9 / result.wall_ns, 1)


def run_scale_bench(
    fleet: FleetSpec,
    workload: WorkloadSpec,
    workers: Optional[List[int]] = None,
    mode: str = "process",
) -> dict:
    """Run reference + sharded runs and assemble the bench report."""
    workers = workers or [1, 4]
    reference = _timed(lambda: run_reference(fleet, workload))
    runs = [
        _timed(Conductor(fleet, workload, n_workers=n, mode=mode).run)
        for n in workers
    ]
    reference_digest = reference.protocol_digest()
    parity = all(run.protocol_digest() == reference_digest for run in runs)

    deterministic = {
        "parity": parity,
        "reference": {"events": reference.events, "sim_ns": reference.sim_ns},
        "workers": {
            str(run.n_workers): {
                "events": run.events,
                "sim_ns": run.sim_ns,
                "barriers": run.barriers,
            }
            for run in runs
        },
    }
    base_wall = runs[0].wall_ns
    measured = {
        "reference": {
            "wall_ns": reference.wall_ns,
            "events_per_sec": _events_per_sec(reference),
        },
        "workers": {
            str(run.n_workers): {
                "wall_ns": run.wall_ns,
                "events_per_sec": _events_per_sec(run),
                "speedup_vs_1worker": round(base_wall / run.wall_ns, 3),
            }
            for run in runs
        },
    }
    return {
        "bench": "scale",
        "config": {
            "hubs": len(fleet.hubs),
            "links": len(fleet.links),
            "cabs": len(fleet.cabs),
            "hub_ports": fleet.hub_ports,
            "mode": mode,
            "workload": {
                "seed": workload.seed,
                "rmp_flows": workload.rmp_flows,
                "rpc_flows": workload.rpc_flows,
                "tcp_flows": workload.tcp_flows,
                "rmp_messages": workload.rmp_messages,
                "rmp_bytes": workload.rmp_bytes,
                "rpc_calls": workload.rpc_calls,
                "rpc_bytes": workload.rpc_bytes,
                "tcp_bytes": workload.tcp_bytes,
            },
        },
        "deterministic": deterministic,
        "measured": measured,
    }


def render_bench_json(report: dict) -> str:
    """Byte-stable serialization (sorted keys, fixed separators, newline)."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"


def default_fleet(
    shape: str = "line",
    hubs: int = 4,
    cabs_per_hub: int = 16,
    hub_ports: int = 18,
) -> FleetSpec:
    """The bench's standard rig: 4 HUBs in a line, 64 CABs."""
    return make_fleet(shape, hubs, cabs_per_hub, hub_ports)
