"""Sharded parallel simulation for fleet-scale Nectar networks.

The paper's deployment stops at 2 HUBs and 26 hosts (Sec. 6); this package
scales the reproduction past a single core with a conservative parallel
discrete-event simulation (PDES) layer:

* :mod:`repro.cluster.fleet` — declarative fleet topologies (line / star /
  fat-tree of HUBs, N CABs each) and shard-aware system construction.
* :mod:`repro.cluster.partition` — cuts the wiring graph at inter-HUB
  links, mapping each HUB (and its CABs) to a shard.
* :mod:`repro.cluster.workload` — deterministic mixed RMP + RPC + TCP
  fleet traffic, generated from a seed.
* :mod:`repro.cluster.runner` — one shard's :class:`~repro.sim.core.Simulator`
  plus its boundary in/out queues; doubles as the worker-process body.
* :mod:`repro.cluster.conductor` — bounded-window barrier synchronization
  with deterministic cross-shard frame exchange; inline and multi-process
  execution modes.
* :mod:`repro.cluster.merge` — per-shard telemetry (metrics / trace) merge.
* :mod:`repro.cluster.bench` — the ``python -m repro scale --bench``
  harness behind ``BENCH_scale.json``.

The correctness bar: a sharded run's protocol-level results are
bit-identical to the single-process reference on the same topology and
seed, no matter how many workers execute it (see docs/scaling.md).
"""

from repro.cluster.conductor import Conductor, FleetResult
from repro.cluster.fleet import FleetSpec, build_fleet_system, build_shard_system
from repro.cluster.partition import Partition, Partitioner
from repro.cluster.workload import WorkloadSpec

__all__ = [
    "Conductor",
    "FleetResult",
    "FleetSpec",
    "Partition",
    "Partitioner",
    "WorkloadSpec",
    "build_fleet_system",
    "build_shard_system",
]
