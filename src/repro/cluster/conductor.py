"""Adaptive conservative synchronization across shard simulators.

The original conductor advanced every shard in lock-step windows of one
global worst-case lookahead — ``CostModel.fiber_propagation_ns``, the
minimum time for anything to cross an inter-HUB fiber.  Safe, but slow:
a run that needs 2,500 such windows spends almost all of them exchanging
nothing (see docs/scaling.md for the postmortem).  This conductor keeps
the same conservative guarantee while sizing every window from what the
shards actually report:

* **Emission bounds.**  Each shard exposes
  :meth:`~repro.hub.network.NectarNetwork.next_emission_bound` — a proven
  lower bound on when it could next put a hand-off on a cut fiber
  (``None`` = never, until injected into).  Bounds come from live
  transmission intents plus an event-to-emission floor, not from the
  worst case.

* **Asymmetric horizons.**  :meth:`Partitioner.shard_distances` gives the
  minimum cut-crossing cost ``D[j][i]`` between every shard pair.  Shard
  ``i`` may safely run to ``horizon(i) = min over j != i of
  (bound(j) + D[j][i])``, exclusive: nothing another shard does from here
  on can be observed in ``i`` before that.  Adjacent shards constrain each
  other by one propagation delay; distant shards by several; idle shards
  (bound ``None``) not at all.

* **Epoch grants with null-message elision.**  Per barrier, only shards
  with work strictly before their horizon are granted an epoch
  ``[t, horizon)``; the rest are skipped — the classic CMB null message,
  elided.  When every other shard is provably quiet the grant is
  unbounded and one epoch runs the whole idle tail.

* **Emission-margin parking.**  A granted shard does not stop at its
  first boundary emission; it keeps executing while its next event is
  within the emission's causal shadow (one forwarding hop plus two
  propagation delays away), batching chatty windows into one exchange.

* **Seam fast path.**  A barrier with zero hand-offs skips the sort /
  group / inject machinery entirely.

Exchange stays deterministic by construction: hand-offs are sorted by
``(fire_ns, key)`` before injection, and the keys themselves (source hub,
output port, per-site sequence) are shard-independent, so the merged
result is a pure function of the fleet, workload, and seed — never of
worker scheduling or of the window schedule.  ``workers=1`` and
``workers=N`` runs, and the unsharded single-``Simulator`` reference, all
produce bit-identical protocol-level results, and inline and process
modes take bit-identical conductor decisions (same barriers, same
epochs) because those decisions are pure functions of the shard states.

In process mode, bulk hand-off records ride per-shard shared-memory
:class:`~repro.buf.ring.HandoffRing` pairs; the pipe carries only verbs,
counts, and overflow (see ``runner.worker_main`` for the protocol).
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from multiprocessing.sharedctypes import RawArray, RawValue
from typing import Dict, List, Optional

from repro.buf.ring import HandoffRing
from repro.cluster.fleet import FleetSpec, build_fleet_system
from repro.cluster.partition import Partition, Partitioner
from repro.cluster.runner import ShardRunner, worker_main
from repro.cluster.workload import Workload, WorkloadSpec
from repro.errors import ConfigurationError
from repro.model.costs import DEFAULT_COSTS

__all__ = ["Conductor", "FleetResult", "run_reference"]

#: Shared-memory ring size per direction per shard.  Generously above the
#: common per-window hand-off volume; overflow falls back to the pipe.
RING_CAPACITY = 1 << 16


@dataclass
class FleetResult:
    """The merged outcome of a fleet run.

    ``flows`` / ``retransmits`` / ``incomplete`` are protocol-level and
    bit-identical across worker counts; ``events`` / ``sim_ns`` and the
    conductor counters (``barriers`` through ``handoffs``) are meter
    readings that are deterministic for a given worker count and identical
    across inline/process modes; ``ring_bytes`` / ``pickle_bytes`` are
    transport meters (process mode only — inline has no seam transport);
    ``wall_ns`` is stamped by the bench harness and is the only
    non-deterministic field.
    """

    n_workers: int
    mode: str
    #: flow name -> {kind, src, dst, bytes, messages, completed_ns}
    flows: Dict[str, dict] = field(default_factory=dict)
    #: node name -> {rmp_retransmits, rpc_retries, tcp_retransmits}
    retransmits: Dict[str, dict] = field(default_factory=dict)
    #: locally-observed flows that never finished (should be empty)
    incomplete: List[str] = field(default_factory=list)
    events: int = 0
    sim_ns: int = 0
    #: synchronization rounds driven (each with at least one grant)
    barriers: int = 0
    #: per-shard windows granted across all barriers
    epochs: int = 0
    #: shard-barrier slots skipped (the elided CMB null messages)
    null_elided: int = 0
    #: barriers that exchanged nothing and skipped the seam machinery
    fastpath: int = 0
    #: hand-off records exchanged across cuts
    handoffs: int = 0
    #: payload+record bytes that rode the shared-memory rings
    ring_bytes: int = 0
    #: payload bytes that overflowed to pickled pipe transport
    pickle_bytes: int = 0
    wall_ns: int = 0
    #: merged telemetry (series snapshot / Chrome-trace events), when enabled
    metrics: Optional[dict] = None
    trace: Optional[list] = None

    def protocol_digest(self) -> dict:
        """The parity currency: everything that must match bit-for-bit."""
        return {
            "flows": {name: dict(rec) for name, rec in sorted(self.flows.items())},
            "retransmits": {
                name: dict(rec) for name, rec in sorted(self.retransmits.items())
            },
            "incomplete": sorted(self.incomplete),
        }


# ---------------------------------------------------------------- shard proxies


class _InlineShard:
    """A shard executed in-process (debuggable, zero IPC, no seam transport)."""

    def __init__(
        self, fleet, partition, shard_id, workload_spec, telemetry, fault_plan=None
    ):
        self.runner = ShardRunner(
            fleet,
            partition,
            shard_id,
            workload_spec,
            telemetry=telemetry,
            fault_plan=fault_plan,
        )
        self._pending = None
        self.seam_ring_bytes = 0
        self.seam_pickle_bytes = 0

    def initial_state(self):
        return self.runner.sync_state()

    def begin_advance(self, until: Optional[int]) -> None:
        self.runner.advance(until)
        self._pending = (self.runner.take_outbox(), self.runner.sync_state())

    def finish_advance(self):
        pending, self._pending = self._pending, None
        return pending

    def inject(self, handoffs):
        self.runner.inject(handoffs)
        return self.runner.sync_state()

    def results(self) -> dict:
        return self.runner.results()

    def stop(self) -> None:
        pass


class _ProcessShard:
    """A shard in a worker process: pipe for verbs, shared rings for bulk."""

    def __init__(
        self,
        context,
        fleet,
        partition,
        shard_id,
        workload_spec,
        telemetry,
        fault_plan=None,
    ):
        self.shard_id = shard_id
        # Ring storage and index cells live in shared anonymous memory,
        # created before the fork so both sides address the same pages.
        tx_storage = RawArray("B", RING_CAPACITY)
        tx_head, tx_tail = RawValue("Q", 0), RawValue("Q", 0)
        rx_storage = RawArray("B", RING_CAPACITY)
        rx_head, rx_tail = RawValue("Q", 0), RawValue("Q", 0)
        # Conductor's view: pops what the worker transmits, pushes what
        # the worker will receive.
        self.tx_ring = HandoffRing(
            tx_storage, tx_head, tx_tail, label=f"shard{shard_id}-tx"
        )
        self.rx_ring = HandoffRing(
            rx_storage, rx_head, rx_tail, label=f"shard{shard_id}-rx"
        )
        self.seam_pickle_bytes = 0
        self.conn, child = context.Pipe()
        self.process = context.Process(
            target=worker_main,
            args=(
                child,
                fleet,
                partition,
                shard_id,
                workload_spec,
                telemetry,
                (tx_storage, tx_head, tx_tail, rx_storage, rx_head, rx_tail),
                fault_plan,
            ),
            name=f"nectar-shard-{shard_id}",
            daemon=True,
        )
        self.process.start()
        child.close()

    @property
    def seam_ring_bytes(self) -> int:
        """Bytes this side pushed into the worker's inbound ring."""
        return self.rx_ring.pushed_bytes

    def _recv(self):
        reply = self.conn.recv()
        if reply[0] != "ok":
            raise RuntimeError(f"shard worker failed: {reply[1]}")
        return reply[1:]

    def initial_state(self):
        return self._recv()[0]

    def begin_advance(self, until: Optional[int]) -> None:
        self.conn.send(("advance", until))

    def finish_advance(self):
        ringed, overflow, state = self._recv()
        outbox = self.tx_ring.pop_many(ringed) if ringed else []
        outbox.extend(overflow)
        return outbox, state

    def inject(self, handoffs):
        ringed = 0
        overflow = []
        use_ring = True
        for handoff in handoffs:
            if use_ring and self.rx_ring.push(handoff):
                ringed += 1
            else:
                # First miss flips the whole remainder to the pipe so the
                # worker reconstructs the batch in FIFO order.
                use_ring = False
                self.seam_pickle_bytes += len(handoff.payload)
                overflow.append(handoff)
        self.conn.send(("inject", ringed, overflow))
        return self._recv()[0]

    def results(self) -> dict:
        self.conn.send(("results",))
        return self._recv()[0]

    def stop(self) -> None:
        try:
            self.conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        # OS-process join, not a simulation thread.
        self.process.join(timeout=10)  # nectarlint: disable=NS101
        if self.process.is_alive():  # pragma: no cover - defensive
            self.process.terminate()
            self.process.join(timeout=10)  # nectarlint: disable=NS101
        self.conn.close()


def _fork_context():
    """Prefer fork (cheap, Linux); fall back to spawn elsewhere."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return multiprocessing.get_context("spawn")


# -------------------------------------------------------------------- conductor


class Conductor:
    """Partition a fleet, run its shards in adaptive epochs, merge results."""

    def __init__(
        self,
        fleet: FleetSpec,
        workload_spec: WorkloadSpec,
        n_workers: int = 1,
        mode: str = "inline",
        strategy: str = "contiguous",
        limit_ns: Optional[int] = None,
        telemetry: bool = False,
        fault_plan=None,
    ):
        if mode not in ("inline", "process"):
            raise ConfigurationError(
                f"unknown conductor mode {mode!r} (choose inline or process)"
            )
        self.fleet = fleet
        self.workload_spec = workload_spec
        self.mode = mode
        self.partition = Partitioner.partition(fleet, n_workers, strategy)
        self.telemetry = telemetry
        #: Shared fault plan: every shard attaches the same plan, so each
        #: injector fires against the sites that are physically local to it.
        self.fault_plan = fault_plan
        #: One fiber's propagation delay: the per-cut unit of lookahead.
        self.lookahead_ns = DEFAULT_COSTS.fiber_propagation_ns
        #: Minimum cut-crossing cost between every shard pair, in ns.
        self.distances = Partitioner.shard_distances(
            fleet, self.partition, self.lookahead_ns
        )
        self.limit_ns = limit_ns
        self._hub_shard = {
            hub: shard_id
            for shard_id, hubs in enumerate(self.partition.shards)
            for hub in hubs
        }

    def run(self) -> FleetResult:
        """Drive every shard to quiescence; return the merged result."""
        n = self.partition.n_shards
        if self.mode == "process" and n > 1:
            context = _fork_context()
            shards = [
                _ProcessShard(
                    context,
                    self.fleet,
                    self.partition,
                    i,
                    self.workload_spec,
                    self.telemetry,
                    self.fault_plan,
                )
                for i in range(n)
            ]
        else:
            shards = [
                _InlineShard(
                    self.fleet,
                    self.partition,
                    i,
                    self.workload_spec,
                    self.telemetry,
                    self.fault_plan,
                )
                for i in range(n)
            ]
        try:
            return self._drive(shards)
        finally:
            for shard in shards:
                shard.stop()

    def _horizon(self, states, index: int) -> Optional[int]:
        """Exclusive safe-run bound for one shard, from everyone else's
        emission bounds plus the inter-shard distance matrix.  ``None``
        means unconstrained: every other shard is provably quiet."""
        horizon = None
        for j, (_t, bound) in enumerate(states):
            if j == index or bound is None:
                continue
            distance = self.distances[j][index]
            if distance is None:
                continue
            reach = bound + distance
            if horizon is None or reach < horizon:
                horizon = reach
        return horizon

    def _drive(self, shards) -> FleetResult:
        states = [shard.initial_state() for shard in shards]
        n = len(shards)
        barriers = epochs = null_elided = fastpath = total_handoffs = 0
        while True:
            pending = [t for t, _bound in states if t is not None]
            if not pending:
                break
            start = min(pending)
            if self.limit_ns is not None and start > self.limit_ns:
                raise RuntimeError(
                    f"fleet still active past limit ({start} > {self.limit_ns} ns); "
                    f"incomplete flows or a runaway timer?"
                )
            # Grant an epoch [t, horizon) to every shard whose next event
            # is strictly inside its horizon; skip the rest (their CMB
            # null message is thereby elided).  The minimum-time shard is
            # always grantable — its horizon exceeds its own next event —
            # so every barrier makes progress.
            grants = []
            for index in range(n):
                next_time = states[index][0]
                if next_time is None:
                    null_elided += 1
                    continue
                horizon = self._horizon(states, index)
                if horizon is not None and next_time >= horizon:
                    null_elided += 1
                    continue
                grants.append(
                    (index, None if horizon is None else horizon - 1)
                )
            if not grants:  # pragma: no cover - would break the progress proof
                raise RuntimeError(
                    f"conductor deadlock: no shard grantable at t={start}"
                )
            for index, until in grants:
                shards[index].begin_advance(until)
            window = []
            for index, until in grants:
                outbox, states[index] = shards[index].finish_advance()
                window.extend(outbox)
            barriers += 1
            epochs += len(grants)
            if not window:
                fastpath += 1
                continue
            total_handoffs += len(window)
            window.sort(key=lambda h: (h.fire_ns, h.key))
            by_shard = {}
            for handoff in window:
                by_shard.setdefault(
                    self._hub_shard[handoff.dst_hub], []
                ).append(handoff)
            for shard_id, batch in sorted(by_shard.items()):
                states[shard_id] = shards[shard_id].inject(batch)
        counters = {
            "barriers": barriers,
            "epochs": epochs,
            "null_elided": null_elided,
            "fastpath": fastpath,
            "handoffs": total_handoffs,
        }
        return self._merge([shard.results() for shard in shards], shards, counters)

    def _merge(self, shard_results, shards, counters) -> FleetResult:
        result = FleetResult(
            n_workers=self.partition.n_shards, mode=self.mode, **counters
        )
        for shard in shard_results:
            overlap = set(result.flows) & set(shard["flows"])
            if overlap:  # pragma: no cover - would be a partitioning bug
                raise RuntimeError(f"flows observed by two shards: {sorted(overlap)}")
            result.flows.update(shard["flows"])
            result.retransmits.update(shard["retransmits"])
            result.incomplete.extend(shard["incomplete"])
            result.events += shard["events"]
            result.sim_ns = max(result.sim_ns, shard["sim_ns"])
            seam = shard.get("seam")
            if seam:
                result.ring_bytes += seam["ring_bytes"]
                result.pickle_bytes += seam["pickle_bytes"]
        for shard in shards:
            result.ring_bytes += shard.seam_ring_bytes
            result.pickle_bytes += shard.seam_pickle_bytes
        if self.telemetry:
            from repro.cluster.merge import merge_metrics, merge_traces

            harvests = [shard.get("telemetry", {}) for shard in shard_results]
            metrics = merge_metrics([h.get("metrics", {}) for h in harvests])
            for name, value in (
                ("cluster.barriers", result.barriers),
                ("cluster.epochs", result.epochs),
                ("cluster.fastpath", result.fastpath),
                ("cluster.handoffs", result.handoffs),
                ("cluster.null_elided", result.null_elided),
                ("cluster.pickle_bytes", result.pickle_bytes),
                ("cluster.ring_bytes", result.ring_bytes),
            ):
                metrics[name] = {"type": "counter", "value": value}
            result.metrics = dict(sorted(metrics.items()))
            result.trace = merge_traces([h.get("trace", []) for h in harvests])
        result.flows = dict(sorted(result.flows.items()))
        result.retransmits = dict(sorted(result.retransmits.items()))
        result.incomplete.sort()
        return result


def run_reference(
    fleet: FleetSpec,
    workload_spec: WorkloadSpec,
    telemetry: bool = False,
    fault_plan=None,
) -> FleetResult:
    """The unsharded baseline: one Simulator runs the whole fleet."""
    system = build_fleet_system(fleet)
    if telemetry:
        system.enable_telemetry()
    if fault_plan is not None:
        system.attach_fault_plan(fault_plan)
    workload = Workload(workload_spec, fleet)
    workload.install(system)
    system.run()
    merged = FleetResult(n_workers=0, mode="reference")
    results = workload.results(system)
    merged.flows = results["flows"]
    merged.retransmits = results["retransmits"]
    merged.incomplete = sorted(workload.incomplete(system))
    merged.events = system.sim._seq
    merged.sim_ns = system.sim.now
    if telemetry:
        from repro.cluster.merge import merge_metrics, merge_traces, shard_telemetry

        harvest = shard_telemetry(system)
        merged.metrics = merge_metrics([harvest["metrics"]])
        merged.trace = merge_traces([harvest["trace"]])
    return merged
