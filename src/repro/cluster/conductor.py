"""Bounded-window conservative synchronization across shard simulators.

The conductor advances every shard in lock-step windows of at most the
fleet's *lookahead* — ``CostModel.fiber_propagation_ns``, the hard lower
bound on how soon anything emitted on one side of an inter-HUB fiber can be
observed on the other.  A hand-off emitted at time ``s`` inside the window
``[T, T + W)`` fires at ``s + lookahead >= T + W`` whenever ``W <=
lookahead``, so exchanging hand-offs only at the window barrier can never
deliver one into a shard's past.

Between barriers the window start jumps straight to the earliest pending
event across all shards (idle gaps cost one barrier, not thousands), and
the run terminates when every shard is idle with nothing in flight — all
hand-offs are drained and injected at each barrier, so "every queue empty"
is a complete termination check.

Exchange is deterministic by construction: hand-offs are sorted by
``(fire_ns, key)`` before injection, and the keys themselves (source hub,
output port, per-site sequence) are shard-independent, so the merged result
is a pure function of the fleet, workload, and seed — never of worker
scheduling.  ``workers=1`` and ``workers=N`` runs, and the unsharded
single-``Simulator`` reference, all produce bit-identical protocol-level
results (see docs/scaling.md for the argument).
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.fleet import FleetSpec, build_fleet_system
from repro.cluster.partition import Partition, Partitioner
from repro.cluster.runner import ShardRunner, worker_main
from repro.cluster.workload import Workload, WorkloadSpec
from repro.errors import ConfigurationError
from repro.model.costs import DEFAULT_COSTS

__all__ = ["Conductor", "FleetResult", "run_reference"]


@dataclass
class FleetResult:
    """The merged outcome of a fleet run.

    ``flows`` / ``retransmits`` / ``incomplete`` are protocol-level and
    bit-identical across worker counts; ``events`` / ``sim_ns`` /
    ``barriers`` are meter readings that are deterministic for a given
    worker count; ``wall_ns`` is stamped by the bench harness and is the
    only non-deterministic field.
    """

    n_workers: int
    mode: str
    #: flow name -> {kind, src, dst, bytes, messages, completed_ns}
    flows: Dict[str, dict] = field(default_factory=dict)
    #: node name -> {rmp_retransmits, rpc_retries, tcp_retransmits}
    retransmits: Dict[str, dict] = field(default_factory=dict)
    #: locally-observed flows that never finished (should be empty)
    incomplete: List[str] = field(default_factory=list)
    events: int = 0
    sim_ns: int = 0
    barriers: int = 0
    wall_ns: int = 0
    #: merged telemetry (series snapshot / Chrome-trace events), when enabled
    metrics: Optional[dict] = None
    trace: Optional[list] = None

    def protocol_digest(self) -> dict:
        """The parity currency: everything that must match bit-for-bit."""
        return {
            "flows": {name: dict(rec) for name, rec in sorted(self.flows.items())},
            "retransmits": {
                name: dict(rec) for name, rec in sorted(self.retransmits.items())
            },
            "incomplete": sorted(self.incomplete),
        }


# ---------------------------------------------------------------- shard proxies


class _InlineShard:
    """A shard executed in-process (debuggable, zero IPC)."""

    def __init__(self, fleet, partition, shard_id, workload_spec, telemetry):
        self.runner = ShardRunner(
            fleet, partition, shard_id, workload_spec, telemetry=telemetry
        )
        self._pending = None

    def initial_time(self):
        return self.runner.next_time()

    def begin_advance(self, until: int) -> None:
        self.runner.advance(until)
        self._pending = (self.runner.take_outbox(), self.runner.next_time())

    def finish_advance(self):
        pending, self._pending = self._pending, None
        return pending

    def inject(self, handoffs):
        self.runner.inject(handoffs)
        return self.runner.next_time()

    def results(self) -> dict:
        return self.runner.results()

    def stop(self) -> None:
        pass


class _ProcessShard:
    """A shard executed in a worker process, driven over a pipe."""

    def __init__(self, context, fleet, partition, shard_id, workload_spec, telemetry):
        self.shard_id = shard_id
        self.conn, child = context.Pipe()
        self.process = context.Process(
            target=worker_main,
            args=(child, fleet, partition, shard_id, workload_spec, telemetry),
            name=f"nectar-shard-{shard_id}",
            daemon=True,
        )
        self.process.start()
        child.close()

    def _recv(self):
        reply = self.conn.recv()
        if reply[0] != "ok":
            raise RuntimeError(f"shard worker failed: {reply[1]}")
        return reply[1:]

    def initial_time(self):
        return self._recv()[0]

    def begin_advance(self, until: int) -> None:
        self.conn.send(("advance", until))

    def finish_advance(self):
        outbox, next_time = self._recv()
        return outbox, next_time

    def inject(self, handoffs):
        self.conn.send(("inject", handoffs))
        return self._recv()[0]

    def results(self) -> dict:
        self.conn.send(("results",))
        return self._recv()[0]

    def stop(self) -> None:
        try:
            self.conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        # OS-process join, not a simulation thread.
        self.process.join(timeout=10)  # nectarlint: disable=NS101
        if self.process.is_alive():  # pragma: no cover - defensive
            self.process.terminate()
            self.process.join(timeout=10)  # nectarlint: disable=NS101
        self.conn.close()


def _fork_context():
    """Prefer fork (cheap, Linux); fall back to spawn elsewhere."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return multiprocessing.get_context("spawn")


# -------------------------------------------------------------------- conductor


class Conductor:
    """Partition a fleet, run its shards in lock-step, merge the results."""

    def __init__(
        self,
        fleet: FleetSpec,
        workload_spec: WorkloadSpec,
        n_workers: int = 1,
        mode: str = "inline",
        strategy: str = "contiguous",
        limit_ns: Optional[int] = None,
        telemetry: bool = False,
    ):
        if mode not in ("inline", "process"):
            raise ConfigurationError(
                f"unknown conductor mode {mode!r} (choose inline or process)"
            )
        self.fleet = fleet
        self.workload_spec = workload_spec
        self.mode = mode
        self.partition = Partitioner.partition(fleet, n_workers, strategy)
        self.telemetry = telemetry
        self.lookahead_ns = DEFAULT_COSTS.fiber_propagation_ns
        self.limit_ns = limit_ns
        self._hub_shard = {
            hub: shard_id
            for shard_id, hubs in enumerate(self.partition.shards)
            for hub in hubs
        }

    def run(self) -> FleetResult:
        """Drive every shard to quiescence; return the merged result."""
        n = self.partition.n_shards
        if self.mode == "process" and n > 1:
            context = _fork_context()
            shards = [
                _ProcessShard(
                    context,
                    self.fleet,
                    self.partition,
                    i,
                    self.workload_spec,
                    self.telemetry,
                )
                for i in range(n)
            ]
        else:
            shards = [
                _InlineShard(
                    self.fleet, self.partition, i, self.workload_spec, self.telemetry
                )
                for i in range(n)
            ]
        try:
            return self._drive(shards)
        finally:
            for shard in shards:
                shard.stop()

    def _drive(self, shards) -> FleetResult:
        times = [shard.initial_time() for shard in shards]
        barriers = 0
        while True:
            pending = [t for t in times if t is not None]
            if not pending:
                break
            start = min(pending)
            if self.limit_ns is not None and start > self.limit_ns:
                raise RuntimeError(
                    f"fleet still active past limit ({start} > {self.limit_ns} ns); "
                    f"incomplete flows or a runaway timer?"
                )
            # Inclusive window [start, start + lookahead): a hand-off emitted
            # at time s >= start fires at s + lookahead >= the next window.
            until = start + self.lookahead_ns - 1
            for shard in shards:
                shard.begin_advance(until)
            handoffs = []
            for index, shard in enumerate(shards):
                outbox, times[index] = shard.finish_advance()
                handoffs.extend(outbox)
            barriers += 1
            if not handoffs:
                continue
            handoffs.sort(key=lambda h: (h.fire_ns, h.key))
            by_shard = {}
            for handoff in handoffs:
                by_shard.setdefault(
                    self._hub_shard[handoff.dst_hub], []
                ).append(handoff)
            for shard_id, batch in sorted(by_shard.items()):
                times[shard_id] = shards[shard_id].inject(batch)
        return self._merge([shard.results() for shard in shards], barriers)

    def _merge(self, shard_results, barriers: int) -> FleetResult:
        result = FleetResult(
            n_workers=self.partition.n_shards, mode=self.mode, barriers=barriers
        )
        for shard in shard_results:
            overlap = set(result.flows) & set(shard["flows"])
            if overlap:  # pragma: no cover - would be a partitioning bug
                raise RuntimeError(f"flows observed by two shards: {sorted(overlap)}")
            result.flows.update(shard["flows"])
            result.retransmits.update(shard["retransmits"])
            result.incomplete.extend(shard["incomplete"])
            result.events += shard["events"]
            result.sim_ns = max(result.sim_ns, shard["sim_ns"])
        if self.telemetry:
            from repro.cluster.merge import merge_metrics, merge_traces

            harvests = [shard.get("telemetry", {}) for shard in shard_results]
            result.metrics = merge_metrics(
                [h.get("metrics", {}) for h in harvests]
            )
            result.trace = merge_traces([h.get("trace", []) for h in harvests])
        result.flows = dict(sorted(result.flows.items()))
        result.retransmits = dict(sorted(result.retransmits.items()))
        result.incomplete.sort()
        return result


def run_reference(
    fleet: FleetSpec, workload_spec: WorkloadSpec, telemetry: bool = False
) -> FleetResult:
    """The unsharded baseline: one Simulator runs the whole fleet."""
    system = build_fleet_system(fleet)
    if telemetry:
        system.enable_telemetry()
    workload = Workload(workload_spec, fleet)
    workload.install(system)
    system.run()
    merged = FleetResult(n_workers=0, mode="reference")
    results = workload.results(system)
    merged.flows = results["flows"]
    merged.retransmits = results["retransmits"]
    merged.incomplete = sorted(workload.incomplete(system))
    merged.events = system.sim._seq
    merged.sim_ns = system.sim.now
    if telemetry:
        from repro.cluster.merge import merge_metrics, merge_traces, shard_telemetry

        harvest = shard_telemetry(system)
        merged.metrics = merge_metrics([harvest["metrics"]])
        merged.trace = merge_traces([harvest["trace"]])
    return merged
