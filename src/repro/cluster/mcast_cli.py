"""``python -m repro mcast`` — multicast/collective benchmark driver.

Examples::

    python -m repro mcast                      # run all three legs, summarize
    python -m repro mcast --json BENCH_mcast.json
    python -m repro mcast --mode inline        # no worker processes
    python -m repro mcast --check              # gate vs committed baseline
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from repro.cluster.mcast import render_bench_json, run_mcast_bench

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro mcast",
        description="NMP multicast fan-out and CAB-collective benchmark.",
    )
    parser.add_argument("--seed", type=int, default=0, help="parity-leg seed")
    parser.add_argument(
        "--messages", type=int, default=8, help="fan-out leg messages"
    )
    parser.add_argument(
        "--rounds", type=int, default=3, help="barrier leg rounds"
    )
    parser.add_argument(
        "--workers", default="1,4", help="comma list of parity worker counts"
    )
    parser.add_argument("--mode", default="process", choices=["inline", "process"])
    parser.add_argument(
        "--json", default=None, metavar="PATH", help="write bench report to PATH"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="re-run the committed BENCH_mcast.json configuration and fail "
        "on any deterministic regression",
    )
    return parser


def _summarize(report: dict) -> None:
    fanout = report["deterministic"]["fanout"]
    barrier = report["deterministic"]["barrier"]
    parity = report["deterministic"]["parity"]
    print(
        f"fanout: {fanout['frames_sent']} frames to {fanout['members']} members, "
        f"{fanout['mcast_crossings']} inter-HUB crossings vs "
        f"{fanout['unicast_equivalent_crossings']} unicast-equivalent "
        f"(ratio {fanout['crossing_ratio']})"
    )
    print(
        f"barrier: {barrier['members']} CABs x {barrier['rounds']} rounds, "
        f"tree depth {barrier['tree_depth']}, "
        f"{barrier['arrivals']} ARRIVEs, {barrier['releases']} RELEASEs"
    )
    verdict = "identical" if parity["verdict"] else "DIVERGED"
    print(
        f"parity: {parity['reference']['flows']} flow records, "
        f"workers {sorted(parity['workers'], key=int)}: {verdict}"
    )


def _run_check(args) -> int:
    # Deprecation shim: the unified scenario gate owns this check now.
    from repro.scenario.gate import run_gate
    from repro.scenario.model import load_scenario

    print(
        "note: `mcast --check` delegates to the unified gate; prefer "
        "`python -m repro bench mcast --check`",
        file=sys.stderr,
    )
    try:
        scenario = load_scenario("mcast")
    except FileNotFoundError:
        print("no committed scenarios/mcast.toml", file=sys.stderr)
        return 1
    result = run_gate(scenario)
    for line in result.verdict_lines():
        print(line, file=sys.stdout if result.ok else sys.stderr)
    return 0 if result.ok else 1


def main(argv: List[str]) -> int:
    """Entry point for ``python -m repro mcast``; returns the exit code."""
    args = _build_parser().parse_args(argv)
    if args.check:
        return _run_check(args)
    workers = [int(part) for part in args.workers.split(",") if part]
    report = run_mcast_bench(
        seed=args.seed,
        messages=args.messages,
        rounds=args.rounds,
        workers=workers,
        mode=args.mode,
    )
    rendered = render_bench_json(report)
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(rendered)
        _summarize(report)
        print(f"wrote {args.json}")
    else:
        sys.stdout.write(rendered)
        _summarize(report)
    return 0 if report["deterministic"]["parity"]["verdict"] else 1


if __name__ == "__main__":  # pragma: no cover - module entry
    raise SystemExit(main(sys.argv[1:]))
