"""Partitioning a fleet's wiring graph into shards at inter-HUB links.

The only legal cut is an inter-HUB fiber: a CAB and its HUB always land in
the same shard, so every FIFO interaction (the HUB's low-level flow
control) stays shard-local and only :class:`~repro.hub.network.Handoff`
records cross shard boundaries — with the 250 ns fiber propagation delay
as guaranteed lookahead.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.cluster.fleet import FleetSpec
from repro.errors import ConfigurationError

__all__ = ["Partition", "Partitioner"]


@dataclass(frozen=True)
class Partition:
    """An assignment of every HUB (and its CABs) to a shard."""

    #: shard id -> tuple of hub names (spec construction order preserved).
    shards: tuple

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def shard_of(self, hub_name: str) -> int:
        """The shard owning a hub."""
        for shard_id, hub_names in enumerate(self.shards):
            if hub_name in hub_names:
                return shard_id
        raise ConfigurationError(f"hub {hub_name!r} not in any shard")

    def describe(self) -> str:
        """One-line human summary of the hub-to-shard assignment."""
        return " | ".join(
            f"shard{shard_id}={','.join(hub_names)}"
            for shard_id, hub_names in enumerate(self.shards)
        )


class Partitioner:
    """Cuts a :class:`FleetSpec` into shards along inter-HUB links."""

    @staticmethod
    def partition(spec: FleetSpec, n_shards: int, strategy: str = "contiguous") -> Partition:
        """Assign hubs to ``n_shards`` shards.

        ``contiguous`` keeps runs of consecutively-constructed hubs together
        (fewest cuts on a line); ``round-robin`` deals hubs out in turn
        (best CAB balance on a star or fat tree).  Both are deterministic
        functions of the spec, and — because results are sharding-invariant
        — the choice only affects speed, never output.
        """
        if n_shards < 1:
            raise ConfigurationError(f"need at least 1 shard, got {n_shards}")
        if n_shards > len(spec.hubs):
            raise ConfigurationError(
                f"{n_shards} shards exceed the fleet's {len(spec.hubs)} hubs"
            )
        buckets = [[] for _ in range(n_shards)]
        if strategy == "round-robin":
            for index, hub_name in enumerate(spec.hubs):
                buckets[index % n_shards].append(hub_name)
        elif strategy == "contiguous":
            base, extra = divmod(len(spec.hubs), n_shards)
            cursor = 0
            for shard_id in range(n_shards):
                take = base + (1 if shard_id < extra else 0)
                buckets[shard_id] = list(spec.hubs[cursor : cursor + take])
                cursor += take
        else:
            raise ConfigurationError(
                f"unknown partition strategy {strategy!r} "
                f"(choose contiguous or round-robin)"
            )
        return Partition(shards=tuple(tuple(bucket) for bucket in buckets))

    @staticmethod
    def cut_links(spec: FleetSpec, partition: Partition) -> tuple:
        """The inter-HUB links severed by a partition (for reporting)."""
        return tuple(
            link
            for link in spec.links
            if partition.shard_of(link[0]) != partition.shard_of(link[2])
        )

    @staticmethod
    def shard_distances(
        spec: FleetSpec, partition: Partition, link_ns: int
    ) -> tuple:
        """All-pairs minimum cut-crossing cost between shards, in ns.

        ``D[a][b]`` lower-bounds how much simulated time any causal chain
        leaving shard ``a`` needs before it can *arrive* in shard ``b``:
        every path crosses at least ``hops(a, b)`` severed fibers, each
        costing at least one ``link_ns`` propagation delay (forwarding time
        inside intermediate shards only adds to that, so BFS hop count is a
        safe under-approximation).  This is the *asymmetric lookahead*
        matrix the conductor's per-shard horizons are built from: adjacent
        shards constrain each other by one propagation delay, distant
        shards by several.  ``D[a][a] == 0``; unreachable pairs (a severed
        fleet) are ``None`` — no constraint at all.
        """
        n = partition.n_shards
        adjacency = [set() for _ in range(n)]
        for hub_a, _pa, hub_b, _pb in spec.links:
            a, b = partition.shard_of(hub_a), partition.shard_of(hub_b)
            if a != b:
                adjacency[a].add(b)
                adjacency[b].add(a)
        rows = []
        for source in range(n):
            hops = {source: 0}
            frontier = deque([source])
            while frontier:
                here = frontier.popleft()
                for neighbor in sorted(adjacency[here]):
                    if neighbor not in hops:
                        hops[neighbor] = hops[here] + 1
                        frontier.append(neighbor)
            rows.append(
                tuple(
                    hops[dest] * link_ns if dest in hops else None
                    for dest in range(n)
                )
            )
        return tuple(rows)
