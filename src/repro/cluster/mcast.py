"""``python -m repro mcast`` — the multicast/collective benchmark.

Three legs, all pinned by the committed ``BENCH_mcast.json``:

* **fanout** — a pub/sub flow on a fat tree: one sender multicasts to an
  8-member group on a *different* leaf HUB.  The crossbars replicate the
  frame (one replica per branch, shared payload storage), so the number of
  inter-HUB frames is the tree's cut width — ``crossings_per_frame`` — not
  the member count.  The leg also computes the *unicast equivalent* (the
  same traffic as N independent sends, from the members' actual routes)
  and reports the ratio, which is ~``1/len(members)`` when the group sits
  behind a shared subtree.
* **barrier** — a fleet-wide barrier over all 64 CABs of the scale rig:
  each round costs every non-root member one ARRIVE and every non-leaf
  member its children's RELEASEs, and completes in ``tree_depth(64) == 6``
  CAB-local rounds (O(log N), see :func:`~repro.protocols.nectar.collective.tree_depth`).
* **parity** — seeded mcast + barrier workloads at 64-CAB scale, run
  unsharded and sharded (1 and 4 workers, process mode): the protocol
  digests must be bit-identical, the same guarantee the scale bench pins
  for unicast traffic.

Sections follow the scale bench's contract: ``deterministic`` is
byte-identical across repeated runs of the same configuration (the
regression gate), ``measured`` (wall-clock) is recorded but never gated.
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import List, Optional

from repro.cluster.conductor import Conductor, run_reference
from repro.cluster.fleet import (
    FleetSpec,
    build_fleet_system,
    fat_tree_fleet,
    line_fleet,
)
from repro.cluster.workload import Flow, Workload, WorkloadSpec
from repro.protocols.nectar.collective import tree_depth

__all__ = [
    "check_against_baseline",
    "default_baseline_path",
    "render_bench_json",
    "run_mcast_bench",
]

#: The fan-out rig: 2 spines x 2 leaves, 10 CABs per leaf.
_FANOUT_FLEET = ("fat-tree", 2, 2, 10, 12)
#: The barrier/parity rig: the scale bench's 4-HUB line, 64 CABs.
_SCALE_FLEET = ("line", 4, 16, 18)


def _wall_ns() -> int:
    # Wall-clock belongs to the "measured" section only.
    return time.perf_counter_ns()  # nectarlint: disable=ND001


def _nmp_totals(system) -> dict:
    """NMP/collective counters summed over every local node."""
    totals: dict = {}
    for name in sorted(system.nodes):
        for key, value in system.nodes[name].runtime.stats.snapshot().items():
            if key.startswith(("nmp_", "coll_")):
                totals[key] = totals.get(key, 0) + value
    return totals


def _run_workload(fleet: FleetSpec, spec: WorkloadSpec):
    """One unsharded system running ``spec`` to quiescence."""
    system = build_fleet_system(fleet)
    workload = Workload(spec, fleet)
    workload.install(system)
    system.run()
    return system, workload


def run_fanout_leg(messages: int = 8, size: int = 256) -> dict:
    """The crossbar fan-out accounting: multicast vs unicast equivalent."""
    fleet = fat_tree_fleet(*_FANOUT_FLEET[1:4], hub_ports=_FANOUT_FLEET[4])
    sender = "cab-00-00"
    members = tuple(f"cab-01-{j:02d}" for j in range(8))
    flow = Flow(
        index=0,
        kind="mcast",
        src=sender,
        dst=members[-1],
        messages=messages,
        size=size,
        members=members,
    )
    spec = WorkloadSpec(seed=0, explicit_flows=(flow,))
    system, workload = _run_workload(fleet, spec)
    net = system.network.stats
    sender_stats = system.nodes[sender].runtime.stats
    frames_sent = sender_stats.value("nmp_data_out") + sender_stats.value(
        "nmp_syncs_out"
    )
    # The unicast equivalent: the same frames as N independent sends, each
    # crossing every inter-HUB hop of that member's actual source route.
    unicast_crossings = frames_sent * sum(
        len(system.network.route_for(sender, member)) - 1 for member in members
    )
    mcast_crossings = net.value("mcast_crossings")
    return {
        "members": len(members),
        "messages": messages,
        "bytes_per_message": size,
        "frames_sent": frames_sent,
        "mcast_crossings": mcast_crossings,
        "unicast_equivalent_crossings": unicast_crossings,
        "crossing_ratio": round(mcast_crossings / unicast_crossings, 6),
        "replicas": net.value("mcast_replicas"),
        "delivered": {
            name: record["bytes"]
            for name, record in sorted(workload.flow_results.items())
        },
        "incomplete": list(workload.incomplete(system)),
        "live_buffers": system.copy_meter.live_buffers,
        "sim_ns": system.sim.now,
        "protocol": _nmp_totals(system),
    }


def run_barrier_leg(rounds: int = 3) -> dict:
    """A fleet-wide 64-CAB barrier: O(log N) CAB-local rounds."""
    fleet = line_fleet(*_SCALE_FLEET[1:3], hub_ports=_SCALE_FLEET[3])
    members = fleet.cab_names()
    flow = Flow(
        index=0,
        kind="barrier",
        src=members[0],
        dst=members[-1],
        messages=rounds,
        size=0,
        members=members,
    )
    spec = WorkloadSpec(seed=0, explicit_flows=(flow,))
    system, workload = _run_workload(fleet, spec)
    totals = _nmp_totals(system)
    return {
        "members": len(members),
        "rounds": rounds,
        "tree_depth": tree_depth(len(members)),
        "barriers_completed": totals.get("coll_barriers", 0),
        "arrivals": totals.get("coll_arrivals_out", 0),
        "releases": totals.get("coll_releases_out", 0),
        "incomplete": list(workload.incomplete(system)),
        "live_buffers": system.copy_meter.live_buffers,
        "sim_ns": system.sim.now,
    }


def run_parity_leg(
    seed: int, workers: Optional[List[int]] = None, mode: str = "process"
) -> dict:
    """Sharded mcast/barrier runs must match the reference bit for bit."""
    workers = workers or [1, 4]
    fleet = line_fleet(*_SCALE_FLEET[1:3], hub_ports=_SCALE_FLEET[3])
    spec = WorkloadSpec(
        seed=seed,
        rmp_flows=2,
        rpc_flows=0,
        tcp_flows=0,
        mcast_flows=3,
        mcast_group=8,
        barrier_flows=1,
    )
    reference = run_reference(fleet, spec)
    digest = reference.protocol_digest()
    runs = [
        Conductor(fleet, spec, n_workers=n, mode=mode).run() for n in workers
    ]
    return {
        "verdict": all(run.protocol_digest() == digest for run in runs),
        "reference": {
            "events": reference.events,
            "sim_ns": reference.sim_ns,
            "flows": len(reference.flows),
            "incomplete": reference.incomplete,
        },
        "workers": {
            str(run.n_workers): {
                "events": run.events,
                "sim_ns": run.sim_ns,
                "barriers": run.barriers,
                "handoffs": run.handoffs,
            }
            for run in runs
        },
    }


def run_mcast_bench(
    seed: int = 0,
    messages: int = 8,
    rounds: int = 3,
    workers: Optional[List[int]] = None,
    mode: str = "process",
) -> dict:
    """All three legs, assembled into the bench report."""
    legs = {}
    walls = {}
    for name, runner in (
        ("fanout", lambda: run_fanout_leg(messages=messages)),
        ("barrier", lambda: run_barrier_leg(rounds=rounds)),
        ("parity", lambda: run_parity_leg(seed, workers=workers, mode=mode)),
    ):
        start = _wall_ns()
        legs[name] = runner()
        walls[name] = max(1, _wall_ns() - start)
    return {
        "bench": "mcast",
        "config": {
            "fanout_fleet": list(_FANOUT_FLEET),
            "scale_fleet": list(_SCALE_FLEET),
            "seed": seed,
            "messages": messages,
            "rounds": rounds,
            "mode": mode,
            "workers": workers or [1, 4],
        },
        "deterministic": legs,
        "measured": {"wall_ns": walls},
    }


def render_bench_json(report: dict) -> str:
    """Byte-stable serialization (sorted keys, fixed separators, newline)."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"


def default_baseline_path() -> pathlib.Path:
    """``BENCH_mcast.json`` at the repo root, next to the other gates."""
    return pathlib.Path(__file__).resolve().parents[3] / "BENCH_mcast.json"


def check_against_baseline(committed: dict, fresh: dict) -> List[str]:
    """Regression verdicts: empty means the tree holds the baseline.

    Parity must hold, fan-out must stay as cheap as committed (the
    crossing ratio is the tentpole number), and every deterministic
    counter must match exactly.  Wall-clock is never compared.
    """
    errors: List[str] = []
    if fresh["config"] != committed.get("config"):
        errors.append(
            "config diverged from the committed baseline; re-baseline "
            "deliberately with --bench --json"
        )
        return errors
    committed_det = committed.get("deterministic", {})
    fresh_det = fresh["deterministic"]
    if not fresh_det["parity"]["verdict"]:
        errors.append("parity broken: sharded runs diverged from the reference")
    fresh_ratio = fresh_det["fanout"]["crossing_ratio"]
    committed_ratio = committed_det.get("fanout", {}).get("crossing_ratio")
    if committed_ratio is not None and fresh_ratio > committed_ratio:
        errors.append(
            f"fan-out regressed: crossing ratio {fresh_ratio} > "
            f"{committed_ratio} (multicast fell back toward unicast)"
        )
    for leg in ("fanout", "barrier", "parity"):
        if fresh_det.get(leg) != committed_det.get(leg):
            errors.append(
                f"{leg} leg deterministic counters diverged: "
                f"{fresh_det.get(leg)} != {committed_det.get(leg)}"
            )
    return errors
