"""One shard of a partitioned fleet: a Simulator plus its boundary queues.

A :class:`ShardRunner` owns the shard's :class:`~repro.system.NectarSystem`
(full stacks on its hubs, ghosts elsewhere), collects outbound
:class:`~repro.hub.network.Handoff` records from the network's boundary
seam, and re-injects inbound ones under their original fire time and sort
key.  The conductor drives it through *epochs* — windows sized from every
shard's live emission bounds rather than one global worst case — and the
runner contributes the two local ingredients:

* :meth:`sync_state` — the earliest pending event plus the network's
  conservative :meth:`~repro.hub.network.NectarNetwork.next_emission_bound`,
  the raw material of the conductor's per-pair adaptive lookahead.
* an *emission-margin park* inside :meth:`advance` — once a hand-off has
  left the shard, the runner keeps executing only while the next event is
  provably unaffected by anything that hand-off could cause (its own echo
  needs a propagation delay out, a forwarding hop, and a propagation delay
  back), then parks so the conductor can exchange.  This batches chatty
  windows without ever outrunning causality.

Two further speed levers live here: CABs no flow touches are built as
ghosts (their stacks would boot and then idle forever; their retransmit
counters are synthesized as zero, which is exactly what the reference
reports for them), and worker processes disable the cyclic garbage
collector (the simulation's object graph is acyclic-by-design reference
counting work; the collector only adds pauses).  Both are off when
telemetry is enabled so the observability plane sees every CAB.

The same class also serves as the body of a worker process
(:func:`worker_main`), speaking a command protocol over a pipe while bulk
hand-off payloads ride a pair of shared-memory
:class:`~repro.buf.ring.HandoffRing` buffers.
"""

from __future__ import annotations

import gc
from typing import Iterable, List, Optional, Tuple

from repro.buf.ring import HandoffRing
from repro.cluster.fleet import FleetSpec, build_shard_system
from repro.cluster.partition import Partition
from repro.cluster.workload import Workload, WorkloadSpec
from repro.hub.network import Handoff

__all__ = ["ShardRunner", "worker_main"]

_ZERO_RETRANSMITS = {
    "rmp_retransmits": 0,
    "rpc_retries": 0,
    "tcp_retransmits": 0,
    "nmp_nacks": 0,
    "nmp_repairs": 0,
}


class ShardRunner:
    """Build and drive one shard's simulation."""

    def __init__(
        self,
        fleet: FleetSpec,
        partition: Partition,
        shard_id: int,
        workload_spec: WorkloadSpec,
        costs=None,
        telemetry: bool = False,
        elide_idle: bool = True,
        fault_plan=None,
    ):
        self.shard_id = shard_id
        self.hub_names = partition.shards[shard_id]
        self.workload = Workload(workload_spec, fleet)
        active_cabs = None
        self._elided_cabs: tuple = ()
        # A fault plan may name any CAB's FIFOs or mailboxes as a site, so
        # idle-CAB elision is off whenever one is attached: every CAB must
        # exist for the shard's injector to see the same sites the
        # single-process reference does.
        if elide_idle and not telemetry and fault_plan is None:
            endpoints = {flow.src for flow in self.workload.flows} | {
                flow.dst for flow in self.workload.flows
            }
            for flow in self.workload.flows:
                endpoints.update(flow.members)
            active_cabs = frozenset(endpoints)
            self._elided_cabs = tuple(
                name
                for name in fleet.cabs_on(self.hub_names)
                if name not in active_cabs
            )
        self.system = build_shard_system(
            fleet, self.hub_names, costs=costs, active_cabs=active_cabs
        )
        if telemetry:
            self.system.enable_telemetry()
        if fault_plan is not None:
            self.system.attach_fault_plan(fault_plan)
        self.workload.install(self.system)
        self.outbox: List[Handoff] = []
        network = self.system.network
        network.boundary_egress = self.outbox.append
        # Events up to (first emission's fire time + this margin) are safe
        # to run before exchanging: the emitted frame needs at least a
        # forwarding hop and a propagation delay on the far side before
        # anything can come back across.
        self._emit_margin_ns = (
            network.min_emission_delta_ns()
            + network.costs.fiber_propagation_ns
            - 1
        )

    # -- the conductor-facing surface ----------------------------------------

    def advance(self, until: Optional[int]) -> None:
        """Run every event with ``time <= until`` (inclusive; None = no bound),
        parking once a boundary emission's safety margin is exhausted."""
        outbox = self.outbox
        sim = self.system.sim
        margin = self._emit_margin_ns
        peek = sim.peek_next_time

        def parked() -> bool:
            if not outbox:
                return False
            horizon = outbox[0].fire_ns + margin
            when = peek()
            return when is None or when > horizon

        sim.run(until=until, stop=parked)

    def take_outbox(self) -> List[Handoff]:
        """Drain hand-offs that left the shard since the last call."""
        # Copy-and-clear in place: boundary_egress holds a bound append on
        # this exact list, so rebinding the attribute would orphan it.
        out = list(self.outbox)
        self.outbox.clear()
        return out

    def inject(self, handoffs: Iterable[Handoff]) -> None:
        """Deliver hand-offs from other shards (fire times are in our future)."""
        for handoff in handoffs:
            self.system.network.inject_handoff(handoff)

    def next_time(self) -> Optional[int]:
        """Earliest pending local event (None when the shard is idle)."""
        return self.system.sim.peek_next_time()

    def sync_state(self) -> Tuple[Optional[int], Optional[int]]:
        """(earliest pending event, conservative next-emission bound).

        The pair the conductor's epoch planner consumes: the first element
        says whether (and when) this shard has work, the second
        lower-bounds when it could next put a hand-off on a cut fiber —
        ``None`` meaning *provably never before the next injection*.
        """
        return (
            self.system.sim.peek_next_time(),
            self.system.network.next_emission_bound(),
        )

    def results(self) -> dict:
        """Protocol-level results plus this shard's meter readings."""
        results = self.workload.results(self.system)
        for name in self._elided_cabs:
            results["retransmits"][name] = dict(_ZERO_RETRANSMITS)
        results["retransmits"] = dict(sorted(results["retransmits"].items()))
        results["events"] = self.system.sim._seq
        results["sim_ns"] = self.system.sim.now
        results["incomplete"] = list(self.workload.incomplete(self.system))
        if self.system.telemetry is not None:
            from repro.cluster.merge import shard_telemetry

            results["telemetry"] = shard_telemetry(self.system)
        return results


def worker_main(
    conn,
    fleet: FleetSpec,
    partition: Partition,
    shard_id: int,
    workload_spec: WorkloadSpec,
    telemetry: bool = False,
    rings=None,
    fault_plan=None,
) -> None:
    """Worker-process body: serve conductor commands over ``conn``.

    ``rings`` is ``(tx_storage, tx_head, tx_tail, rx_storage, rx_head,
    rx_tail)`` — the shared-memory buffers and index cells of this shard's
    outbound and inbound :class:`~repro.buf.ring.HandoffRing`.  Hand-off
    records ride the rings; the pipe carries only the command verbs, the
    per-window record counts, and any overflow records that did not fit
    (pickled via :meth:`Handoff.to_wire`, the legacy path).
    ``fault_plan``, when given, is attached to the shard's system before
    the workload installs — every shard evaluates the same plan against
    its local links, FIFOs, and mailboxes.

    Protocol (request -> response):

    * handshake -> ``("ok", sync_state)``
    * ``("advance", until)`` -> ``("ok", n_ringed, overflow, sync_state)``
    * ``("inject", n_ringed, overflow)`` -> ``("ok", sync_state)``
    * ``("results",)`` -> ``("ok", results_dict)``
    * ``("stop",)`` -> process exits

    Any exception is reported as ``("error", repr)`` and the worker exits.
    """
    try:
        runner = ShardRunner(
            fleet,
            partition,
            shard_id,
            workload_spec,
            telemetry=telemetry,
            fault_plan=fault_plan,
        )
        if not telemetry:
            # The worker is a short-lived batch process with an
            # acyclic-by-design object graph; cyclic collection only adds
            # pauses to every window.
            gc.disable()
        tx_ring = rx_ring = None
        if rings is not None:
            tx_storage, tx_head, tx_tail, rx_storage, rx_head, rx_tail = rings
            tx_ring = HandoffRing(
                tx_storage, tx_head, tx_tail, label=f"shard{shard_id}-tx"
            )
            rx_ring = HandoffRing(
                rx_storage, rx_head, rx_tail, label=f"shard{shard_id}-rx"
            )
        pickle_bytes = 0
        conn.send(("ok", runner.sync_state()))
        while True:
            command = conn.recv()
            verb = command[0]
            if verb == "advance":
                runner.advance(command[1])
                ringed = 0
                overflow = []
                use_ring = tx_ring is not None
                for handoff in runner.take_outbox():
                    if use_ring and tx_ring.push(handoff):
                        ringed += 1
                    else:
                        # Once one record misses, the rest follow the pipe
                        # too: FIFO order across the seam is part of the
                        # determinism contract.
                        use_ring = False
                        wired = handoff.to_wire()
                        pickle_bytes += len(wired.payload)
                        overflow.append(wired)
                conn.send(("ok", ringed, overflow, runner.sync_state()))
            elif verb == "inject":
                count = command[1]
                batch = rx_ring.pop_many(count) if count else []
                batch.extend(command[2])
                runner.inject(batch)
                conn.send(("ok", runner.sync_state()))
            elif verb == "results":
                results = runner.results()
                results["seam"] = {
                    "ring_bytes": tx_ring.pushed_bytes if tx_ring else 0,
                    "ring_records": tx_ring.pushed_records if tx_ring else 0,
                    "pickle_bytes": pickle_bytes,
                }
                conn.send(("ok", results))
            elif verb == "stop":
                return
            else:
                conn.send(("error", f"unknown command {verb!r}"))
                return
    except EOFError:
        return
    except BaseException as exc:  # surface, don't hang the barrier
        try:
            conn.send(("error", f"shard {shard_id}: {exc!r}"))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()
