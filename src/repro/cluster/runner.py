"""One shard of a partitioned fleet: a Simulator plus its boundary queues.

A :class:`ShardRunner` owns the shard's :class:`~repro.system.NectarSystem`
(full stacks on its hubs, ghosts elsewhere), collects outbound
:class:`~repro.hub.network.Handoff` records from the network's boundary
seam, and re-injects inbound ones under their original fire time and sort
key.  The conductor drives it through bounded windows; the same class also
serves as the body of a worker process (:func:`worker_main`), speaking a
tiny command protocol over a pipe.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.cluster.fleet import FleetSpec, build_shard_system
from repro.cluster.partition import Partition
from repro.cluster.workload import Workload, WorkloadSpec
from repro.hub.network import Handoff

__all__ = ["ShardRunner", "worker_main"]


class ShardRunner:
    """Build and drive one shard's simulation."""

    def __init__(
        self,
        fleet: FleetSpec,
        partition: Partition,
        shard_id: int,
        workload_spec: WorkloadSpec,
        costs=None,
        telemetry: bool = False,
    ):
        self.shard_id = shard_id
        self.hub_names = partition.shards[shard_id]
        self.system = build_shard_system(fleet, self.hub_names, costs=costs)
        if telemetry:
            self.system.enable_telemetry()
        self.workload = Workload(workload_spec, fleet)
        self.workload.install(self.system)
        self.outbox: List[Handoff] = []
        self.system.network.boundary_egress = self.outbox.append

    # -- the conductor-facing surface ----------------------------------------

    def advance(self, until: int) -> None:
        """Run every event with ``time <= until`` (the window is inclusive)."""
        self.system.sim.run(until=until)

    def take_outbox(self) -> List[Handoff]:
        """Drain hand-offs that left the shard since the last call."""
        # Copy-and-clear in place: boundary_egress holds a bound append on
        # this exact list, so rebinding the attribute would orphan it.
        out = list(self.outbox)
        self.outbox.clear()
        return out

    def inject(self, handoffs: Iterable[Handoff]) -> None:
        """Deliver hand-offs from other shards (fire times are in our future)."""
        for handoff in handoffs:
            self.system.network.inject_handoff(handoff)

    def next_time(self) -> Optional[int]:
        """Earliest pending local event (None when the shard is idle)."""
        return self.system.sim.peek_next_time()

    def results(self) -> dict:
        """Protocol-level results plus this shard's meter readings."""
        results = self.workload.results(self.system)
        results["events"] = self.system.sim._seq
        results["sim_ns"] = self.system.sim.now
        results["incomplete"] = list(self.workload.incomplete(self.system))
        if self.system.telemetry is not None:
            from repro.cluster.merge import shard_telemetry

            results["telemetry"] = shard_telemetry(self.system)
        return results


def worker_main(
    conn,
    fleet: FleetSpec,
    partition: Partition,
    shard_id: int,
    workload_spec: WorkloadSpec,
    telemetry: bool = False,
) -> None:
    """Worker-process body: serve conductor commands over ``conn``.

    Protocol (request -> response):

    * ``("advance", until)`` -> ``("ok", outbox, next_time)``
    * ``("inject", handoffs)`` -> ``("ok", next_time)``
    * ``("results",)`` -> ``("ok", results_dict)``
    * ``("stop",)`` -> process exits

    Any exception is reported as ``("error", repr)`` and the worker exits.
    """
    try:
        runner = ShardRunner(
            fleet, partition, shard_id, workload_spec, telemetry=telemetry
        )
        conn.send(("ok", runner.next_time()))
        while True:
            command = conn.recv()
            verb = command[0]
            if verb == "advance":
                runner.advance(command[1])
                # Serialize hand-off payloads only here, at the true process
                # boundary (the pipe): in-process they stay zero-copy views.
                outbox = [handoff.to_wire() for handoff in runner.take_outbox()]
                conn.send(("ok", outbox, runner.next_time()))
            elif verb == "inject":
                runner.inject(command[1])
                conn.send(("ok", runner.next_time()))
            elif verb == "results":
                conn.send(("ok", runner.results()))
            elif verb == "stop":
                return
            else:
                conn.send(("error", f"unknown command {verb!r}"))
                return
    except EOFError:
        return
    except BaseException as exc:  # surface, don't hang the barrier
        try:
            conn.send(("error", f"shard {shard_id}: {exc!r}"))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()
