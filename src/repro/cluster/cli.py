"""``python -m repro scale`` — fleet-scale sharded simulation driver.

Examples::

    python -m repro scale                          # 4-hub line, 4 workers
    python -m repro scale --shape star --hubs 5 --workers 2
    python -m repro scale --parity --seeds 1,2,3   # reference vs sharded
    python -m repro scale --bench --json BENCH_scale.json
    python -m repro scale --bench --skip-reference # sharded legs only
    python -m repro scale --check                  # gate vs committed baseline
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from repro.cluster.bench import render_bench_json, run_scale_bench
from repro.cluster.conductor import Conductor, run_reference
from repro.cluster.fleet import make_fleet
from repro.cluster.partition import Partitioner
from repro.cluster.workload import WorkloadSpec

__all__ = ["main"]


def _parse_int_list(text: str) -> List[int]:
    return [int(part) for part in text.split(",") if part]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro scale",
        description="Sharded parallel simulation of a fleet-scale Nectar network.",
    )
    parser.add_argument("--shape", default="line", choices=["line", "star", "fat-tree"])
    parser.add_argument("--hubs", type=int, default=4, help="total HUB budget")
    parser.add_argument("--cabs-per-hub", type=int, default=16)
    parser.add_argument("--hub-ports", type=int, default=18)
    parser.add_argument("--workers", default="4", help="comma list of worker counts")
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    parser.add_argument(
        "--seeds", default=None, help="comma list of seeds (parity mode)"
    )
    parser.add_argument("--mode", default="process", choices=["inline", "process"])
    parser.add_argument(
        "--strategy", default="contiguous", choices=["contiguous", "round-robin"]
    )
    parser.add_argument(
        "--parity",
        action="store_true",
        help="check sharded runs against the unsharded reference, bit for bit",
    )
    parser.add_argument(
        "--bench", action="store_true", help="measure events/sec and speedup"
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH", help="write bench report to PATH"
    )
    parser.add_argument(
        "--skip-reference",
        action="store_true",
        help="bench the sharded runs only (no serial reference, no parity verdict)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="re-run the committed BENCH_scale.json configuration and fail "
        "on any deterministic regression",
    )
    return parser


def _workload(seed: int) -> WorkloadSpec:
    return WorkloadSpec(seed=seed)


def _describe(fleet, partition) -> None:
    print(f"fleet: {fleet.describe()}")
    print(f"partition: {partition.describe()}")
    cuts = Partitioner.cut_links(fleet, partition)
    print(f"cut links: {len(cuts)}")


def _run_parity(args, fleet) -> int:
    seeds = _parse_int_list(args.seeds) if args.seeds else [args.seed]
    workers = _parse_int_list(args.workers)
    failures = 0
    for seed in seeds:
        workload = _workload(seed)
        reference = run_reference(fleet, workload)
        digest = reference.protocol_digest()
        for n_workers in workers:
            result = Conductor(
                fleet,
                workload,
                n_workers=n_workers,
                mode=args.mode,
                strategy=args.strategy,
            ).run()
            ok = result.protocol_digest() == digest
            verdict = "identical" if ok else "DIVERGED"
            print(
                f"seed={seed} workers={n_workers}: {len(result.flows)} flows, "
                f"{result.barriers} barriers, {verdict}"
            )
            failures += 0 if ok else 1
    print("parity: PASS" if failures == 0 else f"parity: FAIL ({failures})")
    return 0 if failures == 0 else 1


def _run_bench(args, fleet) -> int:
    report = run_scale_bench(
        fleet,
        _workload(args.seed),
        workers=_parse_int_list(args.workers),
        mode=args.mode,
        skip_reference=args.skip_reference,
    )
    rendered = render_bench_json(report)
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(rendered)
        measured = report["measured"]["workers"]
        for count, stats in sorted(measured.items(), key=lambda kv: int(kv[0])):
            print(
                f"workers={count}: {stats['events_per_sec']:.0f} events/sec, "
                f"speedup {stats['speedup_vs_1worker']:.2f}x vs 1 worker"
            )
        print(f"wrote {args.json}")
    else:
        sys.stdout.write(rendered)
    # parity is None when the reference leg was skipped: no verdict, no failure.
    return 1 if report["deterministic"]["parity"] is False else 0


def _run_check(args, fleet) -> int:
    # Deprecation shim: the unified scenario gate owns this check now.
    from repro.scenario.gate import run_gate
    from repro.scenario.model import load_scenario

    print(
        "note: `scale --check` delegates to the unified gate; prefer "
        "`python -m repro bench scale --check`",
        file=sys.stderr,
    )
    try:
        scenario = load_scenario("scale")
    except FileNotFoundError:
        print("no committed scenarios/scale.toml", file=sys.stderr)
        return 1
    result = run_gate(scenario)
    for line in result.verdict_lines():
        print(line, file=sys.stdout if result.ok else sys.stderr)
    return 0 if result.ok else 1


def main(argv: List[str]) -> int:
    """Entry point for ``python -m repro scale``; returns the exit code."""
    args = _build_parser().parse_args(argv)
    fleet = make_fleet(args.shape, args.hubs, args.cabs_per_hub, args.hub_ports)
    if args.check:
        return _run_check(args, fleet)
    if args.parity:
        _describe(fleet, Partitioner.partition(fleet, max(_parse_int_list(args.workers)), args.strategy))
        return _run_parity(args, fleet)
    if args.bench:
        return _run_bench(args, fleet)
    workers = max(_parse_int_list(args.workers))
    conductor = Conductor(
        fleet,
        _workload(args.seed),
        n_workers=workers,
        mode=args.mode,
        strategy=args.strategy,
    )
    _describe(fleet, conductor.partition)
    result = conductor.run()
    print(
        f"workers={workers} mode={args.mode}: {len(result.flows)} flows "
        f"complete, {result.events} events, {result.sim_ns} ns simulated, "
        f"{result.barriers} barriers"
    )
    if result.incomplete:
        print(f"INCOMPLETE flows: {', '.join(result.incomplete)}")
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - module entry
    raise SystemExit(main(sys.argv[1:]))
