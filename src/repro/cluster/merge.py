"""Merging per-shard telemetry into one fleet-wide view.

Each shard harvests its own :class:`~repro.telemetry.session.Telemetry`
snapshot — a metrics-series dict and a Chrome-trace event list — as plain
JSON-shaped data that crosses the worker pipe untouched.  The merge is
deterministic: series collide only for fleet-global scopes (``net.*``,
``sim.*``, ``span.*``, ``cycles.*``) and are combined by fixed rules
(counters and histograms add, gauges take the max, so ``sim.elapsed_ns``
reads as fleet completion time), while trace tracks are namespaced by
shard so two shards' process ids never alias.
"""

from __future__ import annotations

import json
from typing import Dict, List

__all__ = [
    "merge_metrics",
    "merge_traces",
    "merged_metrics_json",
    "merged_trace_json",
    "shard_telemetry",
]

#: Per-shard pid namespace width in merged traces (shard i owns
#: [i * stride, (i+1) * stride)).
_PID_STRIDE = 10000


def shard_telemetry(system) -> dict:
    """Harvest one system's telemetry as plain, pipe-safe data."""
    telemetry = system.telemetry
    if telemetry is None:
        return {"metrics": {}, "trace": []}
    registry = telemetry.collect()
    trace = json.loads(telemetry.export_trace())
    return {
        "metrics": registry.snapshot(),
        "trace": trace.get("traceEvents", []),
    }


def _merge_values(kind: str, left, right):
    if kind == "counter":
        return left + right
    if kind == "gauge":
        return max(left, right)
    if kind == "histogram":
        merged = {}
        for field in left:
            if isinstance(left[field], list):
                merged[field] = [a + b for a, b in zip(left[field], right[field])]
            else:
                merged[field] = left[field] + right[field]
        return merged
    raise ValueError(f"unknown metric kind {kind!r}")


def merge_metrics(snapshots: List[Dict[str, dict]]) -> Dict[str, dict]:
    """Union per-shard series snapshots under the fixed collision rules."""
    merged: Dict[str, dict] = {}
    for snapshot in snapshots:
        for name, series in snapshot.items():
            existing = merged.get(name)
            if existing is None:
                merged[name] = {"type": series["type"], "value": series["value"]}
            else:
                if existing["type"] != series["type"]:
                    raise ValueError(
                        f"series {name}: kind mismatch "
                        f"({existing['type']} vs {series['type']})"
                    )
                existing["value"] = _merge_values(
                    series["type"], existing["value"], series["value"]
                )
    return dict(sorted(merged.items()))


def merge_traces(traces: List[List[dict]]) -> List[dict]:
    """Concatenate per-shard Chrome-trace events into one timeline.

    Each shard's pids move into their own namespace, then events sort by
    timestamp (with the record shape as tie-break) so the output is a
    deterministic function of the inputs, not of arrival order.
    """
    merged: List[dict] = []
    for shard_id, events in enumerate(traces):
        base = shard_id * _PID_STRIDE
        for event in events:
            record = dict(event)
            if "pid" in record:
                record["pid"] = base + record["pid"]
            merged.append(record)
    merged.sort(
        key=lambda r: (
            r.get("ts", 0.0),
            r.get("pid", 0),
            r.get("tid", 0),
            r.get("ph", ""),
            r.get("name", ""),
        )
    )
    return merged


def merged_metrics_json(snapshots: List[Dict[str, dict]]) -> str:
    """Byte-stable JSON exposition of the merged metrics."""
    return json.dumps(
        {"series": merge_metrics(snapshots)},
        sort_keys=True,
        separators=(",", ":"),
    )


def merged_trace_json(traces: List[List[dict]]) -> str:
    """Byte-stable Chrome-trace JSON of the merged timeline."""
    return json.dumps(
        {"displayTimeUnit": "ns", "traceEvents": merge_traces(traces)},
        sort_keys=True,
        separators=(",", ":"),
    )
