"""repro.ops: the scored operations lab over the telemetry stack.

The packages below this one *build* the system; this package practices
*operating* it.  An :mod:`~repro.ops.incidents` registry defines
reproducible production-style problems (a flapping CAB, a lossy
inter-HUB fiber, a FIFO overload cascade, ...), each with a seeded fault
plan, a pinned workload, and ground-truth labels.  An
:mod:`~repro.ops.observer` flight recorder samples the live system at a
fixed simulated-time cadence into a byte-stable journal — the *only*
evidence the operator side may read.  :mod:`~repro.ops.detect` holds the
baseline detectors and localizers that consume the journal, and
:mod:`~repro.ops.lab` runs incidents end to end, scores
detect/localize/mitigate against the ground truth, and renders the
deterministic report that ``python -m repro ops`` gates on.
"""

from repro.ops.incidents import INCIDENTS, GroundTruth, Incident
from repro.ops.lab import run_incident, run_lab
from repro.ops.observer import FlightRecorder, Journal

__all__ = [
    "FlightRecorder",
    "GroundTruth",
    "INCIDENTS",
    "Incident",
    "Journal",
    "run_incident",
    "run_lab",
]
