"""Run incidents end to end and score detect / localize / mitigate.

For each incident the lab:

1. builds a fresh fleet, attaches the flight recorder *and then* the
   fault plan, installs the pinned workload, and runs to the horizon;
2. re-runs the whole thing and checks the journal bytes and the behavior
   signature are identical (determinism is an invariant, not a hope);
3. feeds the journal — and only the journal — to the baseline detectors
   and localizers from :mod:`repro.ops.detect`;
4. verifies the *ground truth* itself: the plan really fired near the
   labelled onset, and every blast-radius flow really was exposed;
5. *mitigates*: clips every fault window at the first alert time (the
   moment an on-call operator could have acted) and re-runs without the
   observer — mitigation is verified when every flow completes and no
   fault fires after the clip point;
6. for ``shard_check`` incidents, re-runs the same fleet + workload +
   plan under a 2-worker :class:`~repro.cluster.conductor.Conductor` and
   compares protocol digests with the observed run.

Scores are integers out of 100: detection 40, time-to-detect up to 20,
localization up to 25, verified mitigation 15.  The rendered report is
built only from simulated quantities, so two invocations with the same
seed print byte-identical text — ``python -m repro ops --check`` gates
on the committed ``OPS_baseline.txt`` exactly like the chaos report.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cluster.conductor import Conductor
from repro.cluster.fleet import build_fleet_system
from repro.cluster.workload import Workload
from repro.faults.plan import FaultPlan
from repro.ops.detect import Alert, localize, run_detectors
from repro.ops.incidents import INCIDENTS, Incident, build
from repro.ops.observer import FlightRecorder, Journal
from repro.units import seconds

__all__ = [
    "IncidentResult",
    "LabReport",
    "baseline_signature",
    "behavior_signature",
    "run_incident",
    "run_lab",
]

#: Extra simulated time the mitigation re-run gets beyond the horizon —
#: protocols recovering from a clipped fault may still be in RTO backoff
#: at the horizon (TCP's maximum RTO is 2 simulated seconds).
MITIGATION_GRACE_NS = seconds(2)

#: Ground-truth sanity: the plan's first firing must land within this
#: many cadences after the labelled onset.
ONSET_SLACK_CADENCES = 10

# Score weights (total 100).
SCORE_DETECTED = 40
SCORE_TTD_FAST = 20  # time-to-detect within 2 cadences
SCORE_TTD_OK = 10  # within 5 cadences
SCORE_TOP1 = 25  # best localization candidate is a true site
SCORE_TOP3 = 15  # a true site appears in the top 3
SCORE_MITIGATED = 15


# ------------------------------------------------------------------ running


def behavior_signature(system, workload, injector=None) -> Tuple:
    """Everything the simulation *did*, independent of observation.

    Deliberately excludes the event sequence counter: the observer's
    timer events consume sequence numbers without reordering anyone
    else's, so ``sim._seq`` differs between observed and unobserved runs
    of identical behavior.
    """
    nodes = tuple(
        (
            name,
            tuple(sorted(system.nodes[name].runtime.stats.snapshot().items())),
            tuple(sorted(system.nodes[name].cab.stats.snapshot().items())),
        )
        for name in sorted(system.nodes)
    )
    net = tuple(sorted(system.network.stats.snapshot().items()))
    fired = tuple(injector.fired) if injector is not None else ()
    flows = tuple(
        (name, tuple(sorted(record.items())))
        for name, record in sorted(workload.flow_results.items())
    )
    return (system.sim.now, nodes, net, fired, flows)


def _meta(incident: Incident, seed: int) -> dict:
    links = sorted(
        f"{low}<->{high}"
        for low, high in (
            sorted((hub_a, hub_b))
            for hub_a, _port_a, hub_b, _port_b in incident.fleet.links
        )
    )
    return {
        "incident": incident.name,
        "seed": seed,
        "summary": incident.summary,
        "topology": {
            "cabs": {name: hub for name, hub, _port in incident.fleet.cabs},
            "links": links,
            # Filled in from the built hardware before the recorder runs.
            "fifo_capacity": 0,
        },
    }


def _observed_run(incident: Incident, seed: int):
    """One fully-observed run: journal + behavior + protocol artefacts."""
    system = build_fleet_system(incident.fleet)
    meta = _meta(incident, seed)
    first_cab = incident.fleet.cab_names()[0]
    meta["topology"]["fifo_capacity"] = system.nodes[
        first_cab
    ].cab.fiber_in.fifo.capacity
    recorder = FlightRecorder(meta, incident.cadence_ns, incident.horizon_ns)
    system.attach_observer(recorder)
    injector = system.attach_fault_plan(incident.plan)
    workload = Workload(incident.workload, incident.fleet)
    workload.install(system)
    system.run(until=incident.horizon_ns)
    journal = recorder.journal()
    signature = behavior_signature(system, workload, injector)
    return journal, signature, workload, system, injector


def baseline_signature(incident: Incident) -> Tuple:
    """The same run with *no observer attached* (the invariance baseline)."""
    system = build_fleet_system(incident.fleet)
    injector = system.attach_fault_plan(incident.plan)
    workload = Workload(incident.workload, incident.fleet)
    workload.install(system)
    system.run(until=incident.horizon_ns)
    return behavior_signature(system, workload, injector)


# --------------------------------------------------------------- mitigation


def _clip_plan(plan: FaultPlan, clip_ns: int) -> FaultPlan:
    """The operator's fix: every fault window ends at the first alert.

    Specs that would only start at or after the clip point are removed
    outright; running ones keep their start but end early.  This models
    "the faulty component was pulled at detection time" while keeping
    the pre-detection history identical.
    """
    specs = []
    for spec in plan.specs:
        start, end = spec.window_ns if spec.window_ns is not None else (0, None)
        if start >= clip_ns:
            continue
        clipped = clip_ns if end is None else min(end, clip_ns)
        specs.append(dataclasses.replace(spec, window_ns=(start, clipped)))
    return FaultPlan(seed=plan.seed, specs=tuple(specs))


def _mitigate(incident: Incident, clip_ns: int) -> Tuple[bool, str]:
    """Re-run with the clipped plan; verify full recovery."""
    plan = _clip_plan(incident.plan, clip_ns)
    system = build_fleet_system(incident.fleet)
    injector = system.attach_fault_plan(plan)
    workload = Workload(incident.workload, incident.fleet)
    workload.install(system)
    system.run(until=incident.horizon_ns + MITIGATION_GRACE_NS)
    incomplete = workload.incomplete(system)
    late_fires = sum(1 for time_ns, _kind, _site in injector.fired if time_ns >= clip_ns)
    ok = not incomplete and late_fires == 0
    note = (
        f"clipped fault windows at {clip_ns} ns: "
        f"{len(plan.specs)}/{len(incident.plan.specs)} specs kept, "
        f"fires_after_clip={late_fires}, "
        f"incomplete={','.join(incomplete) if incomplete else 'none'}"
    )
    return ok, note


# ------------------------------------------------------------- verification


def _verify_truth(
    incident: Incident, journal: Journal, workload: Workload, injector
) -> Tuple[bool, List[str]]:
    """Check the answer key against what actually happened."""
    notes: List[str] = []
    truth = incident.truth
    if not injector.fired:
        notes.append("plan never fired")
    else:
        first_fire = injector.fired[0][0]
        latest = truth.onset_ns + ONSET_SLACK_CADENCES * incident.cadence_ns
        if first_fire < truth.onset_ns or first_fire > latest:
            notes.append(
                f"first fire at {first_fire} ns is outside "
                f"[{truth.onset_ns}, {latest}] ns"
            )
    known_sites = set(journal.cabs()) | set(journal.links())
    for cab in journal.cabs():
        known_sites.add(f"{cab}.fiber-in")
        known_sites.add(f"{cab}.fiber-out")
    for site in truth.sites:
        if site not in known_sites:
            notes.append(f"truth site {site!r} is not in the journal vocabulary")
    for flow_name in truth.blast_radius:
        record = workload.flow_results.get(flow_name)
        if record is not None and record["completed_ns"] <= truth.onset_ns:
            notes.append(
                f"blast-radius flow {flow_name} completed at "
                f"{record['completed_ns']} ns, before the fault onset"
            )
    return (not notes), notes


def _shard_parity(incident: Incident, workload: Workload, system) -> bool:
    """Does a 2-worker sharded run reproduce the observed protocol digest?"""
    results = workload.results(system)
    reference = {
        "flows": results["flows"],
        "retransmits": results["retransmits"],
        "incomplete": sorted(workload.incomplete(system)),
    }
    sharded = Conductor(
        incident.fleet,
        incident.workload,
        n_workers=2,
        mode="inline",
        # The observed run stops at the incident horizon; the sharded one
        # must be cut at the same simulated instant or their "incomplete"
        # sets (and late retransmit counters) would legitimately differ.
        limit_ns=incident.horizon_ns,
        fault_plan=incident.plan,
    ).run()
    return sharded.protocol_digest() == reference


# ---------------------------------------------------------------- results


@dataclass
class IncidentResult:
    """Everything one scored incident run produced."""

    incident: Incident
    seed: int
    journal: Journal
    alerts: List[Alert]
    candidates: List[str]
    deterministic: bool
    detected: bool
    time_to_detect_ns: Optional[int]
    truth_ok: bool
    truth_notes: List[str]
    mitigation_ok: bool
    mitigation_note: str
    shard_parity: Optional[bool]  # None when the incident does not claim it
    incomplete: Tuple[str, ...]
    fires_text: str
    score: int

    @property
    def passed(self) -> bool:
        return (
            self.deterministic
            and self.detected
            and self.truth_ok
            and self.mitigation_ok
            and self.shard_parity is not False
        )

    def render(self) -> str:
        """The incident's scorecard block of the lab report (byte-stable)."""
        incident = self.incident
        lines = [
            f"incident: {incident.name} (seed {self.seed})",
            f"  summary: {incident.summary}",
            f"  fleet: {incident.fleet.describe()}, "
            f"{len(incident.workload.explicit_flows)} flows, "
            f"horizon={incident.horizon_ns} ns, cadence={incident.cadence_ns} ns",
            "  fault specs:",
        ]
        lines.extend(f"  {line}" for line in self.fires_text.splitlines())
        lines.append(
            f"  journal: samples={self.journal.n_samples} "
            f"events={len(self.journal.events)} "
            f"events_dropped={self.journal.events_dropped} "
            f"bytes={len(self.journal.render())} "
            f"sha256={self.journal.sha256()[:16]}"
        )
        if self.alerts:
            first = self.alerts[0]
            lines.append(
                f"  alerts: {len(self.alerts)} "
                f"(first at {first.time_ns} ns: {first.detector}/{first.signal})"
            )
        else:
            lines.append("  alerts: 0")
        if self.detected:
            lines.append(
                f"  detection: DETECTED time_to_detect={self.time_to_detect_ns} ns"
            )
        else:
            lines.append("  detection: MISSED")
        if self.candidates:
            top1 = self.candidates[0]
            hit = "HIT" if top1 in incident.truth.sites else "miss"
            shown = ",".join(self.candidates[:5])
            lines.append(f"  localization: top1={top1} [{hit}] candidates={shown}")
        else:
            lines.append("  localization: (no candidates)")
        lines.append(
            f"  mitigation: {'VERIFIED' if self.mitigation_ok else 'FAILED'} "
            f"({self.mitigation_note})"
        )
        truth_text = "OK" if self.truth_ok else "; ".join(self.truth_notes)
        lines.append(f"  ground truth: {truth_text}")
        if self.shard_parity is not None:
            lines.append(
                f"  shard parity (2 workers): "
                f"{'OK' if self.shard_parity else 'VIOLATED'}"
            )
        lines.append(
            f"  determinism (two identical runs): "
            f"{'OK' if self.deterministic else 'VIOLATED'}"
        )
        if self.incomplete:
            lines.append(f"  incomplete flows: {','.join(self.incomplete)}")
        lines.append(f"  score: {self.score}/100")
        return "\n".join(lines)


@dataclass
class LabReport:
    """All incidents, scored, with the overall verdict."""

    seed: int
    results: List[IncidentResult]

    @property
    def passed(self) -> bool:
        return all(result.passed for result in self.results)

    @property
    def total_score(self) -> int:
        return sum(result.score for result in self.results)

    def render(self) -> str:
        """The full report text gated against ``OPS_baseline.txt``."""
        lines = [f"ops lab: {len(self.results)} incidents (seed {self.seed})"]
        for result in self.results:
            lines.append("")
            lines.append(result.render())
        lines.append("")
        lines.append(
            f"total score: {self.total_score}/{100 * len(self.results)}"
        )
        lines.append(f"verdict: {'PASS' if self.passed else 'FAIL'}")
        return "\n".join(lines)


# ---------------------------------------------------------------- scoring


def _score(
    incident: Incident,
    detected: bool,
    time_to_detect_ns: Optional[int],
    candidates: List[str],
    mitigation_ok: bool,
) -> int:
    score = 0
    if detected:
        score += SCORE_DETECTED
        if time_to_detect_ns <= 2 * incident.cadence_ns:
            score += SCORE_TTD_FAST
        elif time_to_detect_ns <= 5 * incident.cadence_ns:
            score += SCORE_TTD_OK
    if candidates and candidates[0] in incident.truth.sites:
        score += SCORE_TOP1
    elif any(site in incident.truth.sites for site in candidates[:3]):
        score += SCORE_TOP3
    if mitigation_ok:
        score += SCORE_MITIGATED
    return score


# ------------------------------------------------------------ entry points


def run_incident(name: str, seed: int = 7) -> IncidentResult:
    """Run one incident end to end: observe, double-run, score, mitigate."""
    incident = build(name, seed)
    journal, signature, workload, system, injector = _observed_run(incident, seed)
    second_journal, second_signature, _, _, _ = _observed_run(incident, seed)
    deterministic = (
        journal.render() == second_journal.render()
        and signature == second_signature
    )

    alerts = run_detectors(journal)
    candidates = localize(journal, alerts)
    onset = incident.truth.onset_ns
    detected = bool(alerts) and alerts[0].time_ns >= onset
    time_to_detect = alerts[0].time_ns - onset if detected else None

    truth_ok, truth_notes = _verify_truth(incident, journal, workload, injector)

    if alerts:
        mitigation_ok, mitigation_note = _mitigate(incident, alerts[0].time_ns)
    else:
        mitigation_ok, mitigation_note = False, "no alert to mitigate from"

    shard_parity = (
        _shard_parity(incident, workload, system) if incident.shard_check else None
    )

    return IncidentResult(
        incident=incident,
        seed=seed,
        journal=journal,
        alerts=alerts,
        candidates=candidates,
        deterministic=deterministic,
        detected=detected,
        time_to_detect_ns=time_to_detect,
        truth_ok=truth_ok,
        truth_notes=truth_notes,
        mitigation_ok=mitigation_ok,
        mitigation_note=mitigation_note,
        shard_parity=shard_parity,
        incomplete=workload.incomplete(system),
        fires_text=injector.describe_fires(),
        score=_score(incident, detected, time_to_detect, candidates, mitigation_ok),
    )


def run_lab(seed: int = 7) -> LabReport:
    """Run and score every registered incident."""
    results = [run_incident(name, seed) for name in sorted(INCIDENTS)]
    return LabReport(seed=seed, results=results)
