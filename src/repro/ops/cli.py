"""CLI for the ops lab: ``python -m repro ops``.

* ``--list`` — one line per registered incident (name + summary).
* ``--incident NAME`` — run and score a single incident.
* ``--seed N`` — incident seed (default 7, same as the chaos campaign).
* ``--json FILE`` — dump the single incident's journal as JSON.
* ``--check`` — run the whole lab and compare the rendered report
  byte-for-byte against the committed ``OPS_baseline.txt`` golden.

With no selection flags the whole lab runs and prints the full report.
Exit status: 0 on PASS (and golden match under ``--check``), 1 on FAIL
or mismatch, 2 on usage errors.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import List, Optional

from repro.ops.incidents import INCIDENTS

__all__ = ["main"]

#: The committed golden report, at the repository root.
BASELINE_PATH = Path(__file__).resolve().parents[3] / "OPS_baseline.txt"


def main(argv: List[str]) -> int:
    """Entry point for ``python -m repro ops`` (see the module docstring)."""
    from repro.ops import lab

    incident: Optional[str] = None
    seed = 7
    json_path: Optional[str] = None
    check = False
    arguments = list(argv)
    while arguments:
        arg = arguments.pop(0)
        if arg == "--list":
            for name in sorted(INCIDENTS):
                built = INCIDENTS[name](seed)
                print(f"{name:18s} {built.summary}")
            return 0
        elif arg == "--incident":
            if not arguments:
                print("--incident requires a name", file=sys.stderr)
                return 2
            incident = arguments.pop(0)
        elif arg == "--seed":
            if not arguments or not arguments[0].lstrip("-").isdigit():
                print("--seed requires an integer", file=sys.stderr)
                return 2
            seed = int(arguments.pop(0))
        elif arg == "--json":
            if not arguments:
                print("--json requires a file path", file=sys.stderr)
                return 2
            json_path = arguments.pop(0)
        elif arg == "--check":
            check = True
        else:
            print(f"unknown option {arg!r}", file=sys.stderr)
            return 2

    if incident is not None and incident not in INCIDENTS:
        print(
            f"unknown incident {incident!r}; choose from {sorted(INCIDENTS)}",
            file=sys.stderr,
        )
        return 2
    if json_path is not None and incident is None:
        print("--json needs --incident (one journal per file)", file=sys.stderr)
        return 2

    if check and seed == 7:
        # Deprecation shim: the unified scenario gate owns this check now.
        from repro.scenario.gate import run_gate
        from repro.scenario.model import load_scenario

        print(
            "note: `ops --check` delegates to the unified gate; prefer "
            "`python -m repro bench ops --check`",
            file=sys.stderr,
        )
        try:
            scenario = load_scenario("ops")
        except FileNotFoundError:
            print("no committed scenarios/ops.toml", file=sys.stderr)
            return 1
        result = run_gate(scenario)
        if not result.report:
            for error in result.errors:
                print(error, file=sys.stderr)
            return 1
        deterministic = result.report["deterministic"]
        sys.stdout.write(deterministic["report"])
        if any("golden" in error for error in result.errors):
            print("ops report DIFFERS from OPS_baseline.txt", file=sys.stderr)
            return 1
        print("ops report matches OPS_baseline.txt")
        return 0 if deterministic["passed"] else 1

    if check:
        report = lab.run_lab(seed)
        text = report.render() + "\n"
        if not BASELINE_PATH.exists():
            print(f"golden missing: {BASELINE_PATH}", file=sys.stderr)
            return 1
        expected = BASELINE_PATH.read_text()
        if text != expected:
            sys.stdout.write(text)
            print("ops report DIFFERS from OPS_baseline.txt", file=sys.stderr)
            return 1
        sys.stdout.write(text)
        print("ops report matches OPS_baseline.txt")
        return 0 if report.passed else 1

    if incident is not None:
        result = lab.run_incident(incident, seed)
        print(result.render())
        if json_path is not None:
            Path(json_path).write_text(result.journal.render() + "\n")
            print(f"journal written to {json_path}")
        return 0 if result.passed else 1

    report = lab.run_lab(seed)
    print(report.render())
    return 0 if report.passed else 1
