"""The incident registry: reproducible production-style problems.

Each incident is a frozen bundle of everything needed to reproduce one
operational failure mode on demand: a fleet topology, a pinned workload
(explicit flows, so the traffic matrix is part of the incident's
definition rather than a seed accident), a seeded
:class:`~repro.faults.plan.FaultPlan`, an observation cadence/horizon,
and :class:`GroundTruth` labels — the faulty site(s), the onset time,
and the blast radius — that the evaluators in :mod:`repro.ops.lab`
score against.

The six incidents cover the classic diagnosis shapes:

* a CAB that goes *silent* (``flapping-cab``, ``zombie-tcp``),
* a *link* that corrupts/eats frames between two HUBs (``lossy-fiber``),
* *congestion* that is a symptom two hops away from its cause
  (``fifo-cascade``),
* a component that *errors visibly* (``rmp-fanout-loss``), and
* a *straggler* that is slow without erroring at all (``slow-cab``).

Workload sizing note: flows must still be in flight when the fault
window opens, so message counts are chosen from the cost model's time
scales (one RMP stop-and-wait message round-trips in roughly 150 us on
an idle fabric) rather than from the defaults in
:class:`~repro.cluster.workload.WorkloadSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.cluster.fleet import FleetSpec, line_fleet
from repro.cluster.workload import Flow, WorkloadSpec
from repro.errors import ConfigurationError
from repro.faults.plan import (
    CORRUPT,
    CRASH,
    DROP,
    MBOX_LOSE,
    RX_DROP,
    SQUEEZE,
    STALL,
    FaultPlan,
    FaultSpec,
)
from repro.units import ms, us

__all__ = ["GroundTruth", "INCIDENTS", "Incident", "build"]


@dataclass(frozen=True)
class GroundTruth:
    """The answer key the evaluators score against."""

    #: Acceptable localization answers (first entry is the canonical one):
    #: a CAB name, a ``"cab.fiber-in"``-style FIFO site, or a
    #: ``"hubA<->hubB"`` link label.
    sites: tuple
    #: Simulated time (ns) at which the fault first becomes active.
    onset_ns: int
    #: Names of the flows directly exposed to the fault (they traverse a
    #: faulty site while it is active).
    blast_radius: tuple


@dataclass(frozen=True)
class Incident:
    """One reproducible operational problem, fully specified."""

    name: str
    summary: str
    fleet: FleetSpec
    workload: WorkloadSpec
    plan: FaultPlan
    horizon_ns: int
    cadence_ns: int
    truth: GroundTruth
    #: When true the lab also checks that a 2-worker sharded run of the
    #: same fleet + workload + plan reproduces the single-process
    #: protocol digest (only meaningful for occurrence-independent
    #: plans; see docs/faults.md).
    shard_check: bool = False


def _flows(*specs) -> tuple:
    """Build a Flow tuple from (kind, src, dst, messages, size) rows."""
    return tuple(
        Flow(index=index, kind=kind, src=src, dst=dst, messages=messages, size=size)
        for index, (kind, src, dst, messages, size) in enumerate(specs)
    )


def flapping_cab(seed: int) -> Incident:
    """A CAB blacks out twice; its peers see drops and silence."""
    flows = _flows(
        ("rmp", "cab-00-00", "cab-00-01", 60, 256),
        ("rmp", "cab-00-02", "cab-00-01", 60, 256),
        ("rmp", "cab-00-00", "cab-00-02", 60, 256),
        ("rmp", "cab-00-03", "cab-00-00", 60, 256),
        ("rmp", "cab-00-00", "cab-00-03", 60, 256),
    )
    plan = FaultPlan(
        seed=seed,
        specs=(
            FaultSpec(kind=CRASH, where="cab-00-01", window_ns=(ms(2), ms(3))),
            FaultSpec(kind=CRASH, where="cab-00-01", window_ns=(ms(6), ms(7))),
        ),
    )
    return Incident(
        name="flapping-cab",
        summary="CAB cab-00-01 blacks out twice; peers retransmit through it",
        fleet=line_fleet(1, 4, hub_ports=8),
        workload=WorkloadSpec(seed=seed, explicit_flows=flows),
        plan=plan,
        horizon_ns=ms(20),
        cadence_ns=us(250),
        truth=GroundTruth(
            sites=("cab-00-01",),
            onset_ns=ms(2),
            blast_radius=("rmp-00", "rmp-01"),
        ),
    )


def lossy_fiber(seed: int) -> Incident:
    """The inter-HUB fiber corrupts and eats cross-traffic in one window."""
    # Every flow crosses the damaged fiber, each CAB sending exactly one,
    # so the per-flow 2 ms retransmission pauses a loss causes never
    # starve the window of occurrences.  Corruption dominates on purpose:
    # a damaged fiber mostly mangles frames — CRC-rejected at the
    # *receiving* CAB, which plants error counters on both HUBs' CABs,
    # the triangulation signal the link-inference localizer needs.
    flows = _flows(
        ("rmp", "cab-00-00", "cab-01-00", 70, 256),
        ("rmp", "cab-01-01", "cab-00-01", 70, 256),
        ("rmp", "cab-00-01", "cab-01-01", 70, 256),
        ("rmp", "cab-01-00", "cab-00-00", 70, 256),
    )
    window = (ms(1), ms(8))
    pairs = (
        "cab-00-00->cab-01-00",
        "cab-00-01->cab-01-01",
        "cab-01-00->cab-00-00",
        "cab-01-01->cab-00-01",
    )
    specs = tuple(
        FaultSpec(kind=CORRUPT, where=pair, probability=0.3, window_ns=window)
        for pair in pairs
    ) + tuple(
        FaultSpec(kind=DROP, where=pair, probability=0.15, window_ns=window)
        for pair in pairs
    )
    return Incident(
        name="lossy-fiber",
        summary="the hub00<->hub01 fiber drops and corrupts cross-traffic",
        fleet=line_fleet(2, 2, hub_ports=8),
        workload=WorkloadSpec(seed=seed, explicit_flows=flows),
        plan=FaultPlan(seed=seed, specs=specs),
        horizon_ns=ms(16),
        cadence_ns=us(250),
        truth=GroundTruth(
            sites=("hub00<->hub01",),
            onset_ns=ms(1),
            blast_radius=("rmp-00", "rmp-01", "rmp-02", "rmp-03"),
        ),
    )


def fifo_cascade(seed: int) -> Incident:
    """A squeezed input FIFO back-pressures every flow aimed at it."""
    flows = _flows(
        ("rmp", "cab-00-00", "cab-00-01", 50, 512),
        ("rmp", "cab-00-02", "cab-00-01", 50, 512),
        ("rmp", "cab-00-01", "cab-00-00", 40, 128),
        ("rmp", "cab-00-02", "cab-00-00", 40, 128),
    )
    plan = FaultPlan(
        seed=seed,
        specs=(
            FaultSpec(
                kind=SQUEEZE,
                where="cab-00-01.fiber-in",
                squeeze_bytes=7 * 1024,
                window_ns=(ms(2), ms(8)),
            ),
        ),
    )
    return Incident(
        name="fifo-cascade",
        summary="cab-00-01's input FIFO loses most of its capacity under load",
        fleet=line_fleet(1, 3, hub_ports=8),
        workload=WorkloadSpec(seed=seed, explicit_flows=flows),
        plan=plan,
        horizon_ns=ms(18),
        cadence_ns=us(250),
        truth=GroundTruth(
            sites=("cab-00-01.fiber-in", "cab-00-01"),
            onset_ns=ms(2),
            blast_radius=("rmp-00", "rmp-01"),
        ),
    )


def zombie_tcp(seed: int) -> Incident:
    """A long blackout turns TCP flows into retransmit-storm zombies."""
    flows = _flows(
        ("tcp", "cab-00-00", "cab-00-01", 1, 24576),
        ("tcp", "cab-00-02", "cab-00-01", 1, 24576),
        ("rmp", "cab-00-00", "cab-00-02", 500, 256),
        ("tcp", "cab-00-03", "cab-00-02", 1, 4096),
    )
    plan = FaultPlan(
        seed=seed,
        specs=(
            FaultSpec(kind=CRASH, where="cab-00-01", window_ns=(us(500), ms(120))),
            FaultSpec(
                kind=MBOX_LOSE,
                where="cab-00-01:tcp-input",
                probability=0.25,
                window_ns=(ms(120), ms(300)),
            ),
        ),
    )
    return Incident(
        name="zombie-tcp",
        summary="a long cab-00-01 blackout leaves TCP flows retrying into it",
        fleet=line_fleet(1, 4, hub_ports=8),
        workload=WorkloadSpec(seed=seed, explicit_flows=flows),
        plan=plan,
        horizon_ns=ms(400),
        cadence_ns=ms(5),
        truth=GroundTruth(
            sites=("cab-00-01",),
            onset_ns=us(500),
            blast_radius=("tcp-00", "tcp-01"),
        ),
    )


def rmp_fanout_loss(seed: int) -> Incident:
    """One fan-out leg silently drops every third received frame."""
    flows = _flows(
        ("rmp", "cab-00-00", "cab-00-01", 40, 256),
        ("rmp", "cab-00-00", "cab-00-02", 40, 256),
        ("rmp", "cab-00-00", "cab-00-03", 40, 256),
        ("rmp", "cab-00-00", "cab-00-04", 40, 256),
        ("rmp", "cab-00-01", "cab-00-00", 30, 128),
        # A second, faster feed into the victim so the every-3rd drop
        # schedule reaches its first firing within a cadence of onset.
        ("rmp", "cab-00-03", "cab-00-02", 40, 256),
    )
    plan = FaultPlan(
        seed=seed,
        specs=(
            FaultSpec(
                kind=RX_DROP,
                where="cab-00-02",
                every_nth=3,
                window_ns=(ms(2), ms(8)),
            ),
        ),
    )
    return Incident(
        name="rmp-fanout-loss",
        summary="cab-00-02 silently discards every third received frame",
        fleet=line_fleet(1, 5, hub_ports=8),
        workload=WorkloadSpec(seed=seed, explicit_flows=flows),
        plan=plan,
        horizon_ns=ms(24),
        cadence_ns=us(500),
        truth=GroundTruth(
            sites=("cab-00-02",),
            onset_ns=ms(2),
            blast_radius=("rmp-01", "rmp-05"),
        ),
    )


def slow_cab(seed: int) -> Incident:
    """A straggler CAB stalls on every egress frame without erroring."""
    # Every CAB that acks a stalled flow also carries healthy traffic for
    # the whole stall window, so only the victim's send rate collapses
    # (the straggler localizer compares pre-alert vs flagged-window rates).
    flows = _flows(
        ("rmp", "cab-01-00", "cab-00-00", 45, 512),
        ("rmp", "cab-01-00", "cab-01-01", 40, 256),
        ("rmp", "cab-00-01", "cab-00-00", 75, 256),
        ("rmp", "cab-01-02", "cab-01-01", 75, 256),
        ("rmp", "cab-00-01", "cab-00-02", 75, 256),
    )
    plan = FaultPlan(
        seed=seed,
        specs=(
            FaultSpec(
                kind=STALL,
                where="cab-01-00",
                stall_ns=us(400),
                probability=1.0,
                window_ns=(ms(2), ms(12)),
            ),
        ),
    )
    return Incident(
        name="slow-cab",
        summary="cab-01-00 stalls on every egress frame, no errors anywhere",
        fleet=line_fleet(2, 3, hub_ports=8),
        workload=WorkloadSpec(seed=seed, explicit_flows=flows),
        plan=plan,
        horizon_ns=ms(24),
        cadence_ns=us(500),
        truth=GroundTruth(
            sites=("cab-01-00",),
            onset_ns=ms(2),
            blast_radius=("rmp-00", "rmp-01"),
        ),
        # probability=1.0 makes every decision occurrence-independent, so
        # the sharded run must reproduce the reference protocol digest.
        shard_check=True,
    )


#: Incident name -> builder.  Names are CLI-visible.
INCIDENTS: Dict[str, Callable[[int], Incident]] = {
    "flapping-cab": flapping_cab,
    "lossy-fiber": lossy_fiber,
    "fifo-cascade": fifo_cascade,
    "zombie-tcp": zombie_tcp,
    "rmp-fanout-loss": rmp_fanout_loss,
    "slow-cab": slow_cab,
}


def build(name: str, seed: int) -> Incident:
    """Build the named incident for ``seed`` (raises on unknown name)."""
    if name not in INCIDENTS:
        raise ConfigurationError(
            f"unknown incident {name!r}; choose from {sorted(INCIDENTS)}"
        )
    return INCIDENTS[name](seed)
