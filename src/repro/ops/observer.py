"""The observer plane: a flight recorder sampling the live system.

Everything the operator side of the ops lab knows comes through here.  A
:class:`FlightRecorder` attaches to a running :class:`~repro.system.NectarSystem`
and samples *operator-visible* state at a fixed simulated-time cadence:
per-CAB runtime and hardware counters, FIFO occupancy (including bytes
made ungrantable by back-pressure), CPU busy time, and the fabric's
``net.*`` counters.  It also records the shared tracer's span stream and
distills the slow spans into an event log.  The harvest is a
:class:`Journal` — plain data with a byte-stable JSON rendering — and the
detectors in :mod:`repro.ops.detect` consume *only* the journal, never
the live objects.

Two disciplines keep the lab honest:

* **Operator visibility.**  The injector's own ``fault.*`` scope and the
  runtime's ``fault_*`` bookkeeping counters are *excluded* — a real NOC
  does not get a counter that says "a fault was injected here".  The
  datalink's ``hw.dl_fault_drops`` stays visible: it is this simulation's
  analog of an interface's ``rx_dropped``, which real systems do export
  without knowing the cause.

* **Zero perturbation.**  The sampling process only *reads* state; it
  adds timer events to the queue but never touches a FIFO, mailbox, or
  protocol machine, so the simulated behavior with the recorder attached
  is bit-identical to the behavior without it (the tests assert this per
  incident).
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Generator, List, Optional

from repro.sim.trace import TraceRecorder
from repro.units import us

__all__ = ["FlightRecorder", "Journal"]

#: Spans at least this long (ns) are promoted into the journal's event log.
SLOW_SPAN_NS = us(200)

#: Hard cap on event-log entries; the overflow count is recorded so a
#: truncated log never silently reads as a quiet system.
MAX_EVENTS = 256


class Journal:
    """The flight recorder's harvest: metadata, samples, and an event log.

    ``samples`` is a list of ``{"time_ns": t, "metrics": {name: int}}``
    records on the fixed cadence grid; zero-valued series are omitted per
    sample (absence reads as zero through :meth:`value`).  ``events`` is
    the slow-span log.  :meth:`render` is canonical JSON — byte-stable
    for a deterministic run, which is what the lab's double-run check and
    the committed golden report rely on.
    """

    def __init__(
        self,
        meta: dict,
        samples: List[dict],
        events: List[dict],
        events_dropped: int = 0,
    ):
        self.meta = meta
        self.samples = samples
        self.events = events
        self.events_dropped = events_dropped

    # -- rendering -----------------------------------------------------------

    def render(self) -> str:
        """Canonical (byte-stable) JSON of the whole journal."""
        return json.dumps(
            {
                "meta": self.meta,
                "samples": self.samples,
                "events": self.events,
                "events_dropped": self.events_dropped,
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    def sha256(self) -> str:
        """Digest of the rendered journal (the report's journal fingerprint)."""
        return hashlib.sha256(self.render().encode("ascii")).hexdigest()

    # -- operator queries ----------------------------------------------------

    @property
    def n_samples(self) -> int:
        return len(self.samples)

    def time(self, index: int) -> int:
        """Simulated time (ns) of sample ``index``."""
        return self.samples[index]["time_ns"]

    def value(self, name: str, index: int) -> int:
        """Series value at sample ``index`` (0 when the series is absent)."""
        return self.samples[index]["metrics"].get(name, 0)

    def delta(self, name: str, index: int) -> int:
        """Change of a series over the interval ending at sample ``index``."""
        return self.value(name, index) - self.value(name, index - 1)

    def cabs(self) -> List[str]:
        """All CAB names, sorted (from the topology metadata)."""
        return sorted(self.meta["topology"]["cabs"])

    def hub_of(self, cab: str) -> str:
        """The HUB a CAB is attached to."""
        return self.meta["topology"]["cabs"][cab]

    def links(self) -> List[str]:
        """Inter-HUB links as sorted ``"hubA<->hubB"`` labels."""
        return list(self.meta["topology"]["links"])

    @property
    def fifo_capacity(self) -> int:
        return self.meta["topology"]["fifo_capacity"]

    @property
    def cadence_ns(self) -> int:
        return self.meta["cadence_ns"]


class FlightRecorder:
    """Samples a live system into a :class:`Journal` on a fixed cadence.

    Attach *before* the run starts; the sampling process takes a sample
    at t=0, then every ``cadence_ns`` up to and including ``horizon_ns``.
    The recorder also becomes the system tracer's sink so the journal's
    event log can be distilled from spans after the run.
    """

    def __init__(self, meta: dict, cadence_ns: int, horizon_ns: int):
        self.meta = dict(meta)
        self.meta["cadence_ns"] = cadence_ns
        self.meta["horizon_ns"] = horizon_ns
        self.cadence_ns = cadence_ns
        self.horizon_ns = horizon_ns
        self.samples: List[dict] = []
        self.recorder = TraceRecorder()
        self._system = None

    def attach(self, system) -> None:
        """Wire into a system: tracer sink plus the sampling process."""
        self._system = system
        system.tracer.sink = self.recorder
        system.sim.process(self._sample_loop(), name="ops-observer")

    # -- sampling ------------------------------------------------------------

    def _sample_loop(self) -> Generator:
        system = self._system
        while True:
            self._take_sample()
            if system.sim.now + self.cadence_ns > self.horizon_ns:
                return
            yield system.sim.timeout(self.cadence_ns)

    def _take_sample(self) -> None:
        system = self._system
        metrics: Dict[str, int] = {}

        def put(name: str, value: int) -> None:
            if value:
                metrics[name] = value

        for name in sorted(system.nodes):
            node = system.nodes[name]
            for stat, value in node.runtime.stats.snapshot().items():
                # Operator-visibility discipline: the runtime's fault_*
                # counters are injector bookkeeping, not NOC telemetry.
                if "fault" in stat:
                    continue
                put(f"{name}.{stat}", value)
            for stat, value in node.cab.stats.snapshot().items():
                put(f"{name}.hw.{stat}", value)
            for direction, port in (
                ("fiber-in", node.cab.fiber_in),
                ("fiber-out", node.cab.fiber_out),
            ):
                fifo = port.fifo
                put(f"{name}.fifo.{direction}.level", fifo.level)
                # Committed = buffered + reserved-by-back-pressure bytes:
                # capacity minus what a producer could be granted right
                # now.  This is the occupancy figure a real board exports.
                put(
                    f"{name}.fifo.{direction}.committed",
                    fifo.level + fifo.squeeze_reserve,
                )
            put(f"{name}.cpu.busy_ns", node.cab.cpu.busy_ns)

        for stat, value in system.network.stats.snapshot().items():
            put(f"net.{stat}", value)

        self.samples.append({"time_ns": system.sim.now, "metrics": metrics})

    # -- harvest -------------------------------------------------------------

    def journal(self) -> Journal:
        """Distill the recording into a :class:`Journal` (call after the run)."""
        events, dropped = _slow_spans(self.recorder.events)
        return Journal(
            meta=self.meta,
            samples=list(self.samples),
            events=events,
            events_dropped=dropped,
        )


def _slow_spans(trace_events, slow_ns: int = SLOW_SPAN_NS, cap: int = MAX_EVENTS):
    """Match synchronous B/E span pairs; keep those at least ``slow_ns`` long.

    Spans nest like a call stack per track (that is the tracer's
    contract), so a per-track stack recovers the pairs in one pass.
    Unbalanced ends and spans still open at harvest are ignored — the
    event log is a best-effort operator view, not an invariant.
    """
    stacks: Dict[str, list] = {}
    slow: List[dict] = []
    dropped = 0
    for event in trace_events:
        if event.phase not in ("B", "E"):
            continue
        track = event.track if event.track is not None else event.component
        stack = stacks.setdefault(track, [])
        if event.phase == "B":
            stack.append(event)
            continue
        if not stack:
            continue
        begin = stack.pop()
        duration = event.time_ns - begin.time_ns
        if duration < slow_ns:
            continue
        if len(slow) >= cap:
            dropped += 1
            continue
        slow.append(
            {
                "time_ns": event.time_ns,
                "component": begin.component,
                "label": begin.label,
                "track": track,
                "duration_ns": duration,
            }
        )
    return slow, dropped
