"""Baseline detectors and localizers over the flight-recorder journal.

Everything here consumes a :class:`~repro.ops.observer.Journal` and
nothing else — no live system objects, no injector state, no ground
truth.  That is the point of the lab: these are the rules an operator
could actually run against exported counters, and the evaluators in
:mod:`repro.ops.lab` score how far such rules get on each incident.

Two detector families walk the sample grid:

* **threshold** — any error-counter movement (fabric drops, CRC
  rejects, datalink software drops), any injected-stall movement, and
  FIFO occupancy crossing 3/4 of capacity.
* **rate** — a retransmit-sum spike: the per-interval delta must be at
  least :data:`RETRANS_MIN_DELTA` *and* at least 4x the mean of all
  earlier intervals (protocols retransmit occasionally when healthy;
  only the storm is anomalous).

Localization then ranks candidate sites from the flagged intervals,
most-specific evidence first: a CAB everyone else can hear but that has
gone silent; an inter-HUB link implied by error counters on CABs of two
directly-linked HUBs; individually erroring CABs; congested FIFOs; send
-rate stragglers; and finally the retransmitting peers (who are usually
the *victims*, which is why they rank last).

All arithmetic is integer — ratios are compared in scaled form — so the
verdicts are exactly reproducible across platforms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.ops.observer import Journal

__all__ = ["Alert", "localize", "run_detectors"]

#: Per-CAB hardware error counters (journal names are ``{cab}.{stat}``).
ERROR_STATS = ("hw.crc_errors", "hw.dl_crc_drops", "hw.dl_fault_drops")

#: Per-CAB retransmission counters summed by the rate detector.
RETRANS_STATS = (
    "rmp_retransmits",
    "rpc_retries",
    "tcp_retransmits",
    "tcp_window_probes",
)

#: Congestion when ``4 * committed >= 3 * capacity``.
CONGESTION_NUM = 3
CONGESTION_DEN = 4

#: Minimum retransmit delta per interval before the rate rule may fire.
RETRANS_MIN_DELTA = 4

#: Straggler when the pre-alert send rate is at least 2x the flagged-window
#: rate (ratios are compared scaled by 4: ``8`` means ``2.0``).
STRAGGLER_SCALE = 4
STRAGGLER_MIN_SCALED = 8

_FIFO_DIRECTIONS = ("fiber-in", "fiber-out")


@dataclass(frozen=True)
class Alert:
    """One detector firing: at which sample, by which rule, on what signal."""

    time_ns: int
    detector: str  # "threshold" | "rate"
    signal: str
    value: int


def _cab_error_delta(journal: Journal, cab: str, index: int) -> int:
    return sum(journal.delta(f"{cab}.{stat}", index) for stat in ERROR_STATS)


def run_detectors(journal: Journal) -> List[Alert]:
    """Walk the sample grid and return every alert, in time order."""
    alerts: List[Alert] = []
    cabs = journal.cabs()
    capacity = journal.fifo_capacity
    retrans_history: List[int] = []
    for index in range(1, journal.n_samples):
        now = journal.time(index)
        errors = journal.delta("net.frames_dropped", index) + sum(
            _cab_error_delta(journal, cab, index) for cab in cabs
        )
        if errors >= 1:
            alerts.append(Alert(now, "threshold", "errors", errors))
        stalls = journal.delta("net.frames_stalled", index)
        if stalls >= 1:
            alerts.append(Alert(now, "threshold", "stalls", stalls))
        for cab in cabs:
            for direction in _FIFO_DIRECTIONS:
                committed = journal.value(
                    f"{cab}.fifo.{direction}.committed", index
                )
                if CONGESTION_DEN * committed >= CONGESTION_NUM * capacity:
                    alerts.append(
                        Alert(
                            now,
                            "threshold",
                            f"congestion:{cab}.{direction}",
                            committed,
                        )
                    )
        retrans = sum(
            journal.delta(f"{cab}.{stat}", index)
            for cab in cabs
            for stat in RETRANS_STATS
        )
        # The rate rule needs at least two prior intervals of history, and
        # compares delta * n_prior >= 4 * sum_prior — i.e. 4x the mean —
        # entirely in integers.
        if (
            len(retrans_history) >= 2
            and retrans >= RETRANS_MIN_DELTA
            and retrans * len(retrans_history) >= 4 * sum(retrans_history)
        ):
            alerts.append(Alert(now, "rate", "retransmits", retrans))
        retrans_history.append(retrans)
    return alerts


def localize(journal: Journal, alerts: List[Alert]) -> List[str]:
    """Rank candidate fault sites from the journal's flagged intervals.

    Returns a deduplicated list, most likely site first.  Sites are CAB
    names, ``"{cab}.fiber-in"``-style FIFO sites, or ``"hubA<->hubB"``
    link labels — the same vocabulary incident ground truth uses.
    """
    if not alerts:
        return []
    index_of = {journal.time(i): i for i in range(journal.n_samples)}
    flagged = sorted({index_of[alert.time_ns] for alert in alerts})
    first = flagged[0]
    cabs = journal.cabs()
    candidates: List[str] = []

    # 1. Silence: a CAB that was receiving before the first alert but
    # receives nothing across the flagged intervals while others still do.
    # The first flagged interval is excluded when there is more than one:
    # it usually straddles the onset, so the victim's last healthy frames
    # land inside it and would mask the silence.
    silence_window = flagged[1:] if len(flagged) >= 2 else flagged
    received = {
        cab: sum(
            journal.delta(f"{cab}.hw.frames_received", i)
            for i in silence_window
        )
        for cab in cabs
    }
    if any(total > 0 for total in received.values()):
        candidates.extend(
            cab
            for cab in cabs
            if received[cab] == 0
            and journal.value(f"{cab}.hw.frames_received", first - 1) > 0
        )

    # 2. Link inference: error counters moving on CABs of exactly two
    # directly-linked HUBs indict the fiber between them (each direction
    # of a lossy link damages frames arriving at the *other* side).
    errors = {
        cab: sum(_cab_error_delta(journal, cab, i) for i in flagged)
        for cab in cabs
    }
    error_cabs = [cab for cab in cabs if errors[cab] > 0]
    if len(error_cabs) >= 2:
        hubs = sorted({journal.hub_of(cab) for cab in error_cabs})
        if len(hubs) == 2:
            link = f"{hubs[0]}<->{hubs[1]}"
            if link in journal.links():
                candidates.append(link)

    # 3. Individually erroring CABs, worst first.
    candidates.extend(sorted(error_cabs, key=lambda cab: (-errors[cab], cab)))

    # 4. Congestion: FIFO sites whose peak committed bytes crossed the
    # threshold during the flagged window.  A single congested fiber-in
    # outranks everything else in this rule — inbound pressure points at
    # the consumer, outbound at the fabric beyond it.
    peak: Dict[str, int] = {}
    for cab in cabs:
        for direction in _FIFO_DIRECTIONS:
            level = max(
                journal.value(f"{cab}.fifo.{direction}.committed", i)
                for i in flagged
            )
            if CONGESTION_DEN * level >= CONGESTION_NUM * journal.fifo_capacity:
                peak[f"{cab}.{direction}"] = level
    ordered = sorted(peak, key=lambda site: (-peak[site], site))
    fiber_in = [site for site in ordered if site.endswith(".fiber-in")]
    if len(fiber_in) == 1:
        ordered.remove(fiber_in[0])
        ordered.insert(0, fiber_in[0])
    for site in ordered:
        candidates.append(site)
        candidates.append(site.rsplit(".", 1)[0])

    # 5. Stragglers: a CAB whose send rate over the flagged window
    # collapsed to half (or less) of its pre-alert rate, with no errors
    # anywhere to explain it.  Rates are compared as scaled integers.
    pre_intervals = first - 1
    if pre_intervals >= 1:
        ratio_scaled: Dict[str, int] = {}
        for cab in cabs:
            sent_pre = journal.value(f"{cab}.hw.frames_sent", first - 1)
            if sent_pre == 0:
                continue
            sent_flagged = sum(
                journal.delta(f"{cab}.hw.frames_sent", i) for i in flagged
            )
            scaled = (sent_pre * len(flagged) * STRAGGLER_SCALE) // max(
                1, sent_flagged * pre_intervals
            )
            if scaled >= STRAGGLER_MIN_SCALED:
                ratio_scaled[cab] = scaled
        candidates.extend(
            sorted(ratio_scaled, key=lambda cab: (-ratio_scaled[cab], cab))
        )

    # 6. Retransmitting peers — usually victims, so they rank last.
    retrans = {
        cab: sum(
            journal.delta(f"{cab}.{stat}", i)
            for stat in RETRANS_STATS
            for i in flagged
        )
        for cab in cabs
    }
    candidates.extend(
        cab
        for cab in sorted(retrans, key=lambda cab: (-retrans[cab], cab))
        if retrans[cab] > 0
    )

    deduped: List[str] = []
    seen = set()
    for site in candidates:
        if site not in seen:
            seen.add(site)
            deduped.append(site)
    return deduped
