"""The CPU execution engine: preemptive threads plus interrupt handlers.

This module models a single processor (the CAB's SPARC, or a host CPU)
executing two kinds of activity, exactly as the paper's runtime does
(Sec. 3.1):

* **Threads** — generator coroutines scheduled by a preemptive,
  priority-based scheduler.  System threads (protocol processing) run at a
  higher priority than application threads.  A context switch costs the
  SPARC register-window save/restore time (~20 us on the CAB).
* **Interrupt handlers** — generators that preempt any thread, run to
  completion with further interrupts masked (the paper's CAB does not use
  nested interrupts), and may only perform non-blocking operations.

Thread bodies *yield operation objects*:

* ``Compute(ns)`` — consume CPU time; preemptible by interrupts (the engine
  slices the computation when an interrupt arrives mid-burst).
* ``Block(token)`` — block until :meth:`CPU.wake` is called with the token;
  resumes with the value passed to ``wake``.
* ``YieldCPU()`` — relinquish the processor (round-robin within priority).
* ``SetMask(True/False)`` — mask/unmask interrupts (critical sections shared
  with interrupt handlers; see the sync implementation, paper Sec. 3.4).

Higher-level synchronization (mutexes, condition variables, mailboxes) is
built from these in :mod:`repro.runtime`.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Deque, Generator, Optional

from repro.errors import CABError
from repro.model.stats import StatsRegistry
from repro.sim.core import Event, Simulator
from repro.sim.primitives import Signal

__all__ = [
    "CPU",
    "Block",
    "Compute",
    "PRIORITY_APPLICATION",
    "PRIORITY_SYSTEM",
    "SetMask",
    "TCB",
    "WaitToken",
    "YieldCPU",
]

#: Scheduling priorities (paper Sec. 3.1: "system threads running at a higher
#: priority than application threads").  Larger number wins.
PRIORITY_SYSTEM = 10
PRIORITY_APPLICATION = 1

# Thread states.
_READY = "ready"
_RUNNING = "running"
_BLOCKED = "blocked"
_DONE = "done"
_NEW = "new"


class _Op:
    """Base class for operations a thread may yield to the engine."""

    __slots__ = ()


class Compute(_Op):
    """Consume ``ns`` of CPU time (interruptible)."""

    __slots__ = ("ns",)

    def __init__(self, ns: int):
        if ns < 0:
            raise CABError(f"negative compute time {ns}")
        self.ns = int(ns)


class Block(_Op):
    """Block until the engine's wake() is called with this token."""

    __slots__ = ("token",)

    def __init__(self, token: "WaitToken"):
        self.token = token


class YieldCPU(_Op):
    """Voluntarily relinquish the processor."""

    __slots__ = ()


class SetMask(_Op):
    """Mask (True) or unmask (False) interrupts for the current thread."""

    __slots__ = ("masked",)

    def __init__(self, masked: bool):
        self.masked = masked


class WaitToken:
    """A one-shot rendezvous between a blocking thread and its waker."""

    __slots__ = ("name", "tcb", "fired", "value", "cancelled")

    def __init__(self, name: str = "token"):
        self.name = name
        self.tcb: Optional["TCB"] = None
        self.fired = False
        self.value: Any = None
        self.cancelled = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<WaitToken {self.name} fired={self.fired}>"


class TCB:
    """Thread control block."""

    __slots__ = (
        "name",
        "priority",
        "gen",
        "state",
        "resume_value",
        "resume_exc",
        "pending_compute_ns",
        "join_tokens",
        "result",
        "cpu",
        "seq",
    )

    def __init__(self, name: str, priority: int, gen: Generator, cpu: "CPU", seq: int):
        self.name = name
        self.priority = priority
        self.gen = gen
        # Scheduler bookkeeping label, not a guarded FSM: the kernel exits
        # _NEW by direct assignment when it first runs the thread.
        self.state = _NEW  # nectarlint: disable=NP302
        self.resume_value: Any = None
        self.resume_exc: Optional[BaseException] = None
        self.pending_compute_ns = 0
        self.join_tokens: list[WaitToken] = []
        self.result: Any = None
        self.cpu = cpu
        self.seq = seq

    @property
    def alive(self) -> bool:
        return self.state != _DONE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TCB {self.name} prio={self.priority} state={self.state}>"


def wait_sim_event(cpu: "CPU", event: Event) -> Generator:
    """Thread-context helper: block the current thread on a raw sim event.

    Bridges the two worlds — hardware/device processes complete sim events;
    threads block on wait tokens.  Returns the event's value.
    """
    token = WaitToken(name=f"sim-event:{event.name}")
    if event.fired:
        return event.value
    event.callbacks.append(lambda ev: cpu.wake(token, ev.value))
    value = yield Block(token)
    return value


class CPU:
    """One simulated processor executing threads and interrupt handlers."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "cpu",
        context_switch_ns: int = 20_000,
        dispatch_ns: int = 3_000,
        interrupt_entry_ns: int = 4_000,
        interrupt_exit_ns: int = 2_000,
    ):
        self.sim = sim
        self.name = name
        self.context_switch_ns = context_switch_ns
        self.dispatch_ns = dispatch_ns
        self.interrupt_entry_ns = interrupt_entry_ns
        self.interrupt_exit_ns = interrupt_exit_ns
        self.stats = StatsRegistry()

        self.current: Optional[TCB] = None
        #: Optional repro.analysis.sanitizers.Sanitizer; one attribute test
        #: on the hot path when detached.
        self.sanitizer = None
        #: Optional repro.sim.trace.Tracer for kernel spans (interrupt
        #: service, context switches); one attribute test when detached.
        self.tracer = None
        #: Optional repro.telemetry.profiler.CycleProfiler attributing every
        #: busy nanosecond; one attribute test when detached.
        self.profiler = None
        self._active_handler: Optional[str] = None
        self._ready: list[tuple[int, int, TCB]] = []  # (-priority, seq, tcb)
        self._seq = 0
        self._pending_irqs: Deque[tuple[str, Callable[[], Optional[Generator]]]] = deque()
        self._mask_depth = 0
        self._work = Signal(sim, name=f"{name}.work")
        self._irq_arrival: Optional[Event] = None
        self._last_ran: Optional[TCB] = None
        self.busy_ns = 0
        self._engine = sim.process(self._engine_loop(), name=f"{name}.engine")

    # ------------------------------------------------------------ public API

    def add_thread(
        self, gen: Generator, priority: int = PRIORITY_APPLICATION, name: str = "thread"
    ) -> TCB:
        """Create a thread from a generator and make it runnable."""
        self._seq += 1
        tcb = TCB(name, priority, gen, self, self._seq)
        self._make_ready(tcb)
        return tcb

    def wake(self, token: WaitToken, value: Any = None) -> bool:
        """Fire a wait token, unblocking the thread parked on it (if any).

        May be called from interrupt handlers, other threads' operations, or
        device callbacks.  Returns False if the token was cancelled.
        """
        if token.cancelled:
            return False
        if token.fired:
            raise CABError(f"{self.name}: token {token.name} woken twice")
        token.fired = True
        token.value = value
        tcb = token.tcb
        if tcb is not None:
            if tcb.state != _BLOCKED:
                raise CABError(
                    f"{self.name}: token {token.name} bound to non-blocked "
                    f"thread {tcb.name} ({tcb.state})"
                )
            tcb.resume_value = value
            self._make_ready(tcb)
        return True

    def wake_after(self, token: WaitToken, delay_ns: int, value: Any = None) -> None:
        """Schedule a timer interrupt that wakes ``token`` after ``delay_ns``.

        Modelled as a real (tiny) interrupt so that a sleeping high-priority
        thread preempts a computing low-priority one when its timer fires.
        """
        timer = self.sim.event(name=f"{self.name}.timer")

        def deliver(_ev: Event) -> None:
            if not token.cancelled and not token.fired:
                self.post_interrupt(self._timer_handler(token, value), name="timer")

        timer.callbacks.append(deliver)
        timer.succeed(delay=delay_ns)

    def _timer_handler(self, token: WaitToken, value: Any) -> Generator:
        yield Compute(500)  # timer handler body
        if not token.cancelled and not token.fired:
            self.wake(token, value)

    def post_interrupt(self, handler: Any, name: str = "irq") -> None:
        """Queue an interrupt.

        ``handler`` is a generator (run with interrupts masked; may yield
        only ``Compute``) or a plain callable (invoked with no arguments).
        """
        self._pending_irqs.append((name, handler))
        self.stats.add("interrupts_posted")
        # Kick the engine if it is idle or mid-compute.
        if self._irq_arrival is not None and not self._irq_arrival.triggered:
            self._irq_arrival.succeed()
        self._work.fire()

    def interrupts_pending(self) -> int:
        """Number of queued, unserviced interrupts."""
        return len(self._pending_irqs)

    @property
    def context_label(self) -> Optional[str]:
        """The logical execution context: an interrupt handler, the current
        thread, or None (device/engine context).  Used by the sanitizers to
        attribute memory accesses and synchronization edges."""
        if self._active_handler is not None:
            return f"{self.name}/irq:{self._active_handler}"
        if self.current is not None:
            return f"{self.name}/thread:{self.current.name}"
        return None

    @property
    def utilization_window_ns(self) -> int:
        return self.sim.now

    # ------------------------------------------------------------- scheduling

    def _make_ready(self, tcb: TCB) -> None:
        tcb.state = _READY
        self._seq += 1
        heapq.heappush(self._ready, (-tcb.priority, self._seq, tcb))
        self._work.fire()

    def _pop_ready(self) -> Optional[TCB]:
        while self._ready:
            _neg, _seq, tcb = heapq.heappop(self._ready)
            if tcb.state == _READY:
                return tcb
        return None

    def _top_ready_priority(self) -> Optional[int]:
        while self._ready and self._ready[0][2].state != _READY:
            heapq.heappop(self._ready)
        if self._ready:
            return self._ready[0][2].priority
        return None

    def _should_preempt(self, tcb: TCB) -> bool:
        top = self._top_ready_priority()
        return top is not None and top > tcb.priority

    # ----------------------------------------------------------------- engine

    def _engine_loop(self) -> Generator:
        while True:
            if self._pending_irqs and self._mask_depth == 0:
                yield from self._service_one_irq()
                continue
            tcb = self._pop_ready()
            if tcb is None:
                yield self._work.wait()
                continue
            yield from self._run_thread(tcb)

    def _charge(self, ns: int) -> Generator:
        """Advance time with the CPU busy (non-preemptible)."""
        if ns > 0:
            self.busy_ns += ns
            yield self.sim.timeout(ns)

    def _service_one_irq(self) -> Generator:
        name, handler = self._pending_irqs.popleft()
        self.stats.add("interrupts_serviced")
        track = f"{self.name}/irq:{name}"
        if self.tracer is not None:
            self.tracer.begin("kernel", f"irq:{name}", track=track)
        yield from self._charge(self.interrupt_entry_ns)
        if self.profiler is not None:
            self.profiler.account(
                self.name, "irq-overhead", "entry", self.interrupt_entry_ns
            )
        self._active_handler = name
        try:
            if hasattr(handler, "send"):
                yield from self._run_handler(name, handler)
            else:
                handler()
        finally:
            self._active_handler = None
        yield from self._charge(self.interrupt_exit_ns)
        if self.profiler is not None:
            self.profiler.account(
                self.name, "irq-overhead", "exit", self.interrupt_exit_ns
            )
        if self.tracer is not None:
            self.tracer.end("kernel", f"irq:{name}", track=track)

    def _run_handler(self, name: str, gen: Generator) -> Generator:
        """Run an interrupt handler generator to completion, masked."""
        value: Any = None
        while True:
            try:
                op = gen.send(value)
            except StopIteration:
                return
            value = None
            if isinstance(op, Compute):
                yield from self._charge(op.ns)
                if self.profiler is not None:
                    self.profiler.account(self.name, "irq", name, op.ns)
            else:
                gen.close()
                raise CABError(
                    f"{self.name}: interrupt handler {name!r} attempted a "
                    f"blocking operation ({type(op).__name__}); handlers may "
                    f"only Compute"
                )

    def _run_thread(self, tcb: TCB) -> Generator:
        if self._last_ran is not tcb:
            switch_ns = self.dispatch_ns + self.context_switch_ns
            if self.tracer is not None:
                self.tracer.begin(
                    "kernel",
                    "context-switch",
                    {"to": tcb.name},
                    track=f"{self.name}/sched",
                )
            yield from self._charge(switch_ns)
            if self.tracer is not None:
                self.tracer.end("kernel", "context-switch", track=f"{self.name}/sched")
            if self.profiler is not None:
                self.profiler.account(self.name, "sched", "context-switch", switch_ns)
            self.stats.add("context_switches")
            self._last_ran = tcb
        # Bookkeeping label: the dispatcher leaves _RUNNING by assigning the
        # next state directly (blocked/ready/done), never by testing it.
        tcb.state = _RUNNING  # nectarlint: disable=NP302
        self.current = tcb

        while True:
            # Finish an interrupted compute burst before stepping the thread.
            if tcb.pending_compute_ns > 0:
                finished = yield from self._compute(tcb)
                if not finished:
                    self.current = None
                    return  # preempted; tcb was re-queued by _compute

            if self._pending_irqs and self._mask_depth == 0:
                yield from self._service_one_irq()
                if self._should_preempt(tcb):
                    self._make_ready(tcb)
                    self.current = None
                    return
                continue

            if self._should_preempt(tcb):
                self._make_ready(tcb)
                self.current = None
                return

            # Step the thread generator.
            try:
                if tcb.resume_exc is not None:
                    exc, tcb.resume_exc = tcb.resume_exc, None
                    op = tcb.gen.throw(exc)
                else:
                    value, tcb.resume_value = tcb.resume_value, None
                    op = tcb.gen.send(value)
            except StopIteration as stop:
                self._finish_thread(tcb, stop.value)
                self.current = None
                return
            except BaseException:
                tcb.state = _DONE
                self.current = None
                raise

            if isinstance(op, Compute):
                tcb.pending_compute_ns = op.ns
            elif isinstance(op, Block):
                if self._mask_depth > 0:
                    raise CABError(
                        f"{self.name}: thread {tcb.name} blocked with "
                        f"interrupts masked"
                    )
                token = op.token
                if token.cancelled:
                    raise CABError(
                        f"{self.name}: thread {tcb.name} blocked on "
                        f"cancelled token {token.name}"
                    )
                if token.fired:
                    # wake() beat us to it: consume the value, keep running.
                    tcb.resume_value = token.value
                else:
                    if self.sanitizer is not None:
                        self.sanitizer.on_thread_block(self, tcb, token)
                    token.tcb = tcb
                    tcb.state = _BLOCKED
                    self.current = None
                    return
            elif isinstance(op, YieldCPU):
                self._make_ready(tcb)
                self.current = None
                return
            elif isinstance(op, SetMask):
                if op.masked:
                    self._mask_depth += 1
                else:
                    if self._mask_depth <= 0:
                        raise CABError(
                            f"{self.name}: unbalanced interrupt unmask in "
                            f"thread {tcb.name}"
                        )
                    self._mask_depth -= 1
            else:
                raise CABError(
                    f"{self.name}: thread {tcb.name} yielded unknown op "
                    f"{op!r}"
                )

    def _compute(self, tcb: TCB) -> Generator:
        """Charge tcb.pending_compute_ns, slicing on interrupt arrival.

        Returns True if the burst completed, False if the thread was
        preempted (in which case it has been re-queued with the remainder).
        """
        while tcb.pending_compute_ns > 0:
            if self._pending_irqs and self._mask_depth == 0:
                yield from self._service_one_irq()
                if self._should_preempt(tcb):
                    self._make_ready(tcb)
                    return False
                continue
            start = self.sim.now
            remaining = tcb.pending_compute_ns
            if self._mask_depth > 0:
                # Masked: interrupts cannot slice the burst.
                yield from self._charge(remaining)
                if self.profiler is not None:
                    self.profiler.account(self.name, "thread", tcb.name, remaining)
                tcb.pending_compute_ns = 0
                break
            self._irq_arrival = self.sim.event(name=f"{self.name}.irq_arrival")
            winner_index, _event = yield self.sim.any_of(
                [self.sim.timeout(remaining), self._irq_arrival]
            )
            self._irq_arrival = None
            elapsed = self.sim.now - start
            self.busy_ns += elapsed
            if self.profiler is not None:
                self.profiler.account(self.name, "thread", tcb.name, elapsed)
            tcb.pending_compute_ns = max(0, remaining - elapsed)
            if winner_index == 0:
                tcb.pending_compute_ns = 0
        return True

    def _finish_thread(self, tcb: TCB, result: Any) -> None:
        tcb.state = _DONE
        tcb.result = result
        self.stats.add("threads_finished")
        tokens, tcb.join_tokens = tcb.join_tokens, []
        for token in tokens:
            self.wake(token, result)
