"""The CAB (Communication Accelerator Board) and its CPU execution engine."""

from repro.cab.cpu import (
    CPU,
    Compute,
    Block,
    SetMask,
    WaitToken,
    YieldCPU,
    PRIORITY_APPLICATION,
    PRIORITY_SYSTEM,
)
from repro.cab.board import CAB

__all__ = [
    "CAB",
    "CPU",
    "Block",
    "Compute",
    "PRIORITY_APPLICATION",
    "PRIORITY_SYSTEM",
    "SetMask",
    "WaitToken",
    "YieldCPU",
]
