"""The CAB board: CPU, memories, FIFOs, DMA engines, fiber endpoints.

Mirrors the block diagram of paper Sec. 2.2:

* a general-purpose RISC CPU (16.5 MHz SPARC) — :class:`repro.cab.cpu.CPU`;
* program memory (128 KB PROM + 512 KB RAM) and data memory (1 MB), with
  1 KB-page protection domains;
* input/output FIFOs buffering the fibers;
* a DMA controller managing simultaneous fiber<->memory transfers with
  low-level flow control, leaving the CPU free for protocol work;
* hardware CRC for incoming and outgoing data (checked at end of frame);
* a VME interface to the host (attached later by the host model).

The receive path reproduces the paper's pipeline (Sec. 4.1): when a packet
starts arriving, the board posts a *start-of-packet* interrupt; the datalink
handler (installed via :attr:`CAB.rx_dispatch`) inspects the header and
programs the receive DMA toward a mailbox buffer; the DMA issues a
*start-of-data* upcall once the protocol header is in memory (useful work
overlaps the arrival of the body) and an *end-of-packet* interrupt when the
whole frame has landed and the CRC has been checked.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from repro.cab.cpu import CPU, Compute, PRIORITY_SYSTEM
from repro.errors import CABError
from repro.hw.fiber import FiberIn, FiberOut, Frame
from repro.hw.memory import MemoryRegion
from repro.model.costs import CostModel
from repro.model.stats import StatsRegistry
from repro.sim.core import Simulator
from repro.sim.primitives import Store
from repro.units import KB, MB

__all__ = ["CAB"]

PROGRAM_MEMORY_BYTES = 640 * KB  # 128 KB PROM + 512 KB RAM [paper Sec. 2.2]
DATA_MEMORY_BYTES = 1 * MB  # [paper Sec. 2.2]


class CAB:
    """One Communication Accelerator Board."""

    def __init__(self, sim: Simulator, costs: CostModel, name: str):
        self.sim = sim
        self.costs = costs
        self.name = name
        self.stats = StatsRegistry()
        #: Optional repro.sim.trace.Tracer for DMA spans (wired by Runtime);
        #: one attribute test per frame when detached.
        self.tracer = None
        #: Optional repro.telemetry.profiler.CycleProfiler for DMA engine
        #: time; one attribute test per frame when detached.
        self.profiler = None
        #: Optional repro.buf.accounting.CopyMeter (wired by NectarSystem):
        #: counts host-level byte copies on this node's data path.
        self.copy_meter = None

        self.cpu = CPU(
            sim,
            name=f"{name}.cpu",
            context_switch_ns=costs.cab_context_switch_ns,
            dispatch_ns=costs.cab_dispatch_ns,
            interrupt_entry_ns=costs.cab_interrupt_entry_ns,
            interrupt_exit_ns=costs.cab_interrupt_exit_ns,
        )
        self.program_mem = MemoryRegion(f"{name}.pmem", PROGRAM_MEMORY_BYTES)
        self.data_mem = MemoryRegion(f"{name}.dmem", DATA_MEMORY_BYTES)

        self.fiber_in = FiberIn(sim, costs.cab_fifo_bytes, name=f"{name}.fiber-in")
        self.fiber_out = FiberOut(sim, costs.cab_fifo_bytes, name=f"{name}.fiber-out")

        #: Installed by the datalink layer: an interrupt-handler generator
        #: factory invoked at start-of-packet with the arriving frame.  It
        #: must start a receive DMA (or discard the frame) before returning.
        self.rx_dispatch: Optional[Callable[[Frame], Generator]] = None

        self._tx_queue: Store = Store(sim, name=f"{name}.txq")
        self._rx_done = None
        self._rx_started = False
        sim.process(self._tx_dma_loop(), name=f"{name}.tx-dma")
        sim.process(self._rx_loop(), name=f"{name}.rx-ctl")

    # ------------------------------------------------------------- transmit

    def send_frame(self, frame: Frame) -> Generator:
        """Thread-context generator: seal the frame and hand it to TX DMA.

        Returns immediately after programming the DMA descriptor; the DMA
        streams the frame out while the CPU goes on to other work.  If the
        frame has ``on_dma_done``, a TX-complete interrupt invokes it once
        the frame has fully left CAB memory.
        """
        frame.created_ns = frame.created_ns or self.sim.now
        frame.seal()
        yield Compute(self.costs.cab_dma_setup_ns)
        self._tx_queue.put(frame)
        self.stats.add("frames_sent")
        self.stats.add("bytes_sent", frame.size)

    def _tx_dma_loop(self) -> Generator:
        fifo = self.fiber_out.fifo
        dma_ns = self.costs.cab_dma_ns_per_byte
        while True:
            frame: Frame = yield self._tx_queue.get()
            if self.tracer is not None:
                self.tracer.begin(
                    "dma", "tx-frame", {"bytes": frame.size}, track=f"{self.name}.dma-tx"
                )
            for chunk in frame.chunks():
                yield fifo.wait_space(chunk.length)
                yield self.sim.timeout(chunk.length * dma_ns)
                fifo.push(chunk)
            if self.tracer is not None:
                self.tracer.end("dma", "tx-frame", track=f"{self.name}.dma-tx")
            if self.profiler is not None:
                self.profiler.account(
                    f"{self.name}.dma", "dma", "tx", frame.size * dma_ns
                )
            if frame.on_dma_done is not None:
                self.cpu.post_interrupt(
                    self._tx_done_irq(frame), name="tx-complete"
                )

    def _tx_done_irq(self, frame: Frame) -> Generator:
        yield Compute(1_000)  # handler body: acknowledge the DMA channel
        callback = frame.on_dma_done
        if callback is not None:
            frame.on_dma_done = None
            callback(frame)

    # -------------------------------------------------------------- receive

    def _rx_loop(self) -> Generator:
        """Serialize frame receptions: one start-of-packet interrupt each."""
        fifo = self.fiber_in.fifo
        while True:
            yield fifo.wait_data()
            frame: Frame = fifo.peek().frame
            done = self.sim.event(name=f"{self.name}.rx-done")
            self._rx_done = done
            self._rx_started = False
            self.cpu.post_interrupt(self._sop_irq(frame), name="start-of-packet")
            yield done

    def _sop_irq(self, frame: Frame) -> Generator:
        self.stats.add("frames_received")
        dispatch = self.rx_dispatch
        if dispatch is None:
            self.discard_rx(frame)
            return
            yield  # pragma: no cover - makes this a generator
        yield from dispatch(frame)
        if not self._rx_started:
            raise CABError(
                f"{self.name}: rx dispatch finished without starting a "
                f"receive DMA or discarding frame #{frame.seqno}"
            )

    def start_rx_dma(
        self,
        frame: Frame,
        region: MemoryRegion,
        addr: int,
        header_bytes: int = 0,
        on_header: Optional[Callable[[Frame], Generator]] = None,
        on_complete: Optional[Callable[[Frame, bool], Generator]] = None,
    ) -> None:
        """Program the receive DMA to land ``frame`` at ``region[addr:]``.

        ``on_header`` is posted as an interrupt once ``header_bytes`` of the
        frame are in memory (the start-of-data upcall); ``on_complete`` is
        posted when the whole frame has landed, with the hardware CRC verdict.
        Callable from interrupt or thread context (it only starts a process).
        """
        if self._rx_started:
            raise CABError(f"{self.name}: receive DMA already active")
        self._rx_started = True
        self.sim.process(
            self._rx_dma(frame, region, addr, header_bytes, on_header, on_complete),
            name=f"{self.name}.rx-dma",
        )

    def discard_rx(self, frame: Frame) -> None:
        """Sink an unwanted frame (no buffer available, unknown type...)."""
        if self._rx_started:
            raise CABError(f"{self.name}: receive DMA already active")
        self._rx_started = True
        self.stats.add("frames_discarded")
        self.sim.process(self._rx_sink(frame), name=f"{self.name}.rx-sink")

    def _rx_dma(
        self,
        frame: Frame,
        region: MemoryRegion,
        addr: int,
        header_bytes: int,
        on_header,
        on_complete,
    ) -> Generator:
        fifo = self.fiber_in.fifo
        dma_ns = self.costs.cab_dma_ns_per_byte
        consumed = 0
        header_posted = header_bytes <= 0
        if self.tracer is not None:
            self.tracer.begin(
                "dma", "rx-frame", {"bytes": frame.size}, track=f"{self.name}.dma-rx"
            )
        while True:
            yield fifo.wait_data()
            chunk = fifo.pop()
            if chunk.frame is not frame:
                raise CABError(
                    f"{self.name}: rx DMA frame interleave (expected "
                    f"#{frame.seqno}, got #{chunk.frame.seqno})"
                )
            yield self.sim.timeout(chunk.length * dma_ns)
            region.write(addr + chunk.offset, frame.chunk_bytes(chunk))
            consumed += chunk.length
            if not header_posted and consumed >= header_bytes:
                header_posted = True
                if on_header is not None:
                    self.cpu.post_interrupt(on_header(frame), name="start-of-data")
            if chunk.is_last:
                break
        if self.tracer is not None:
            self.tracer.end("dma", "rx-frame", track=f"{self.name}.dma-rx")
        if self.profiler is not None:
            self.profiler.account(f"{self.name}.dma", "dma", "rx", consumed * dma_ns)
        crc_ok = frame.crc_ok()
        if not crc_ok:
            self.stats.add("crc_errors")
        if on_complete is not None:
            self.cpu.post_interrupt(on_complete(frame, crc_ok), name="end-of-packet")
        # The frame has fully landed in CAB memory: this receive terminates
        # its journey, so drop the payload buffer's last reference.
        frame.release()
        self._finish_rx()

    def _rx_sink(self, frame: Frame) -> Generator:
        fifo = self.fiber_in.fifo
        while True:
            yield fifo.wait_data()
            chunk = fifo.pop()
            if chunk.frame is not frame:
                raise CABError(f"{self.name}: rx sink frame interleave")
            if chunk.is_last:
                break
        frame.release()
        self._finish_rx()

    def _finish_rx(self) -> None:
        done, self._rx_done = self._rx_done, None
        self._rx_started = False
        if done is not None:
            done.succeed()

    # ----------------------------------------------------------------- misc

    def fork_system_thread(self, gen: Generator, name: str):
        """Spawn a system-priority thread (protocol threads)."""
        return self.cpu.add_thread(gen, priority=PRIORITY_SYSTEM, name=name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CAB {self.name}>"
